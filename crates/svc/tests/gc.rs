//! Disk-cache GC correctness: quarantined entries stay dead, eviction
//! under concurrent readers is full-or-miss, and a post-GC warm run
//! reproduces the cold run byte for byte.

use nck_appgen::CorpusStream;
use nck_obs::Obs;
use nck_svc::{AnalysisService, AnalysisStore, ServiceOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nck-gc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn service(cache_dir: &Path) -> AnalysisService {
    AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(cache_dir.to_path_buf()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    )
}

/// The one-shot `--json` byte form of a report.
fn render(report: &nchecker::AppReport) -> String {
    let mut text = serde_json::to_string_pretty(&nchecker::app_report_to_json(report))
        .expect("report serializes");
    text.push('\n');
    text
}

fn corpus_bundles(seed: u64, n: usize) -> Vec<(String, Vec<u8>)> {
    let stream = CorpusStream::new(seed, n);
    (0..n)
        .map(|i| {
            let spec = stream.spec_at(i);
            (spec.package.clone(), nck_appgen::generate(&spec).to_bytes())
        })
        .collect()
}

/// A corrupt entry is quarantined on first read; GC neither counts the
/// `.quarantine` file against the budget nor resurrects it, and a
/// later run re-analyzes rather than serving the poisoned bytes.
#[test]
fn quarantined_entries_are_invisible_to_gc_and_stay_dead() {
    let cache = temp_dir("quarantine");
    let bundles = corpus_bundles(11, 1);

    let cold = service(&cache).analyze_one(&bundles[0].0, &bundles[0].1);
    let cold_report = render(cold.report.as_ref().expect("analyzes"));

    // Poison the single entry on disk.
    let entry_path = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("one cache entry");
    std::fs::write(&entry_path, b"{ not json").unwrap();

    // A fresh service (empty memory tier) hits the corrupt entry,
    // quarantines it, and re-analyzes to the same bytes.
    let warm = service(&cache).analyze_one(&bundles[0].0, &bundles[0].1);
    assert_eq!(
        render(warm.report.as_ref().expect("re-analyzes")),
        cold_report
    );
    let quarantined: Vec<PathBuf> = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "quarantine"))
        .collect();
    assert_eq!(quarantined.len(), 1, "corrupt entry moved aside");

    // GC with an unlimited budget: the quarantine file is not an entry.
    let store = AnalysisStore::with_options(4, Some(cache.clone()));
    let stats = store.gc_disk(u64::MAX, &Obs::disabled());
    assert_eq!(stats.entries, 1, "only the rewritten entry is live");
    assert_eq!(stats.evicted, 0);

    // GC to zero evicts the live entry but leaves the quarantine file
    // for the operator — and never un-quarantines it.
    let stats = store.gc_disk(0, &Obs::disabled());
    assert_eq!(stats.evicted, 1);
    assert!(quarantined[0].exists(), "quarantine survives GC");
    assert_eq!(store.disk_stats().entries, 0, "nothing resurrected");
}

/// Readers racing a GC pass must see full entries or clean misses —
/// never a torn read surfaced as a corruption eviction.
#[test]
fn gc_under_concurrent_readers_is_full_or_miss() {
    let cache = temp_dir("race");
    let bundles = corpus_bundles(13, 12);
    let svc = service(&cache);
    let outcomes = svc.analyze_batch(&bundles);
    let config_fp = nchecker::cache::config_fingerprint(&nchecker::CheckerConfig::default());
    let expected: Vec<(String, String)> = bundles
        .iter()
        .zip(&outcomes)
        .map(|((key, _), o)| (key.clone(), render(o.report.as_ref().unwrap())))
        .collect();

    let store = AnalysisStore::with_options(4, Some(cache.clone()));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let obs = Obs::disabled();
                while !stop.load(Ordering::Relaxed) {
                    for (key, report) in &expected {
                        // An evicted entry is a clean miss (None);
                        // anything found must be whole.
                        if let Some((_, found)) = store.lookup_disk_any(key, config_fp, &obs) {
                            assert_eq!(render(&found), *report, "torn entry for {key}");
                        }
                    }
                }
            });
        }
        // Shrink the budget stepwise while the readers hammer the dir.
        let obs = Obs::disabled();
        let full = store.gc_disk(u64::MAX, &obs).bytes;
        for step in (0..=4).rev() {
            store.gc_disk(full * step / 4, &obs);
        }
        stop.store(true, Ordering::Relaxed);
    });

    let counters = store.metrics().snapshot();
    assert_eq!(
        counters
            .counters
            .get("svc.cache.corrupt_evict")
            .copied()
            .unwrap_or(0),
        0,
        "no torn read was ever mistaken for corruption"
    );
    assert_eq!(store.disk_stats().entries, 0, "budget 0 emptied the tier");
}

/// After GC evicts part of the cache, a warm run over the whole corpus
/// reproduces the cold run's bytes exactly: evicted apps re-analyze,
/// surviving apps replay, and neither path changes the report.
#[test]
fn post_gc_warm_run_is_byte_identical_to_cold() {
    let cache = temp_dir("warm");
    let bundles = corpus_bundles(17, 8);

    let cold: Vec<String> = service(&cache)
        .analyze_batch(&bundles)
        .iter()
        .map(|o| render(o.report.as_ref().expect("analyzes")))
        .collect();

    // Evict roughly half the tier.
    let store = AnalysisStore::with_options(4, Some(cache.clone()));
    let full = store.gc_disk(u64::MAX, &Obs::disabled()).bytes;
    let stats = store.gc_disk(full / 2, &Obs::disabled());
    assert!(stats.evicted > 0, "GC must evict something for this test");
    assert!(store.disk_stats().entries > 0, "and keep something");

    let warm: Vec<String> = service(&cache)
        .analyze_batch(&bundles)
        .iter()
        .map(|o| render(o.report.as_ref().expect("analyzes")))
        .collect();
    assert_eq!(warm, cold);
}
