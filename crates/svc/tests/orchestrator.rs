//! Multi-process vetting: the sharded orchestrator must reproduce the
//! single-process `--json` bytes exactly, and survive a worker crash
//! by restarting the shard's process.

use nck_appgen::{profile, CorpusStream};
use nck_obs::Obs;
use nck_svc::{AnalysisService, OrchestratorOptions, ServiceOptions};
use std::os::unix::fs::PermissionsExt;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nck-orch-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `n` corpus bundles under `dir`, returns their paths sorted.
fn write_bundles(dir: &Path, seed: u64, n: usize) -> Vec<String> {
    let stream = CorpusStream::new(seed, n);
    let mut paths = Vec::with_capacity(n);
    for i in 0..n {
        let spec = stream.spec_at(i);
        let path = dir.join(format!("app{i:06}.apk"));
        std::fs::write(&path, nck_appgen::generate(&spec).to_bytes()).unwrap();
        paths.push(path.to_string_lossy().into_owned());
    }
    paths
}

/// The one-shot `--json` byte form of each path, in order.
fn one_shot_reference(paths: &[String]) -> String {
    let svc = AnalysisService::new(ServiceOptions::default(), Obs::disabled());
    let mut out = String::new();
    for path in paths {
        let bytes = std::fs::read(path).unwrap();
        let outcome = svc.analyze_one(path, &bytes);
        let report = outcome.report.expect("analyzes");
        out.push_str(
            &serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
                .expect("report serializes"),
        );
        out.push('\n');
    }
    out
}

fn worker_cmd(exe: &str) -> Vec<String> {
    vec![
        exe.to_owned(),
        "serve".to_owned(),
        "--stdio".to_owned(),
        "--quiet".to_owned(),
        "--queue-capacity".to_owned(),
        "32".to_owned(),
    ]
}

/// The acceptance differential: `vet` across worker processes is
/// byte-identical to a single-process run over the full evaluation
/// corpus (plus streamed store apps for key-shape variety).
#[test]
fn vet_across_workers_matches_the_single_process_bytes() {
    let dir = temp_dir("diff");
    // The full 285-app evaluation corpus, generated through the same
    // profile the CLI's `corpus:SEED:IDX` spec uses.
    let mut paths: Vec<String> = Vec::new();
    for (i, spec) in profile::corpus(42).into_iter().enumerate() {
        let path = dir.join(format!("corpus{i:06}.apk"));
        std::fs::write(&path, nck_appgen::generate(&spec).to_bytes()).unwrap();
        paths.push(path.to_string_lossy().into_owned());
    }
    paths.extend(write_bundles(&dir, 7, 16));

    let reference = one_shot_reference(&paths);

    let options = OrchestratorOptions {
        workers: 3,
        worker_cmd: worker_cmd(env!("CARGO_BIN_EXE_nchecker")),
        ..OrchestratorOptions::default()
    };
    let outcome = nck_svc::vet(&options, &paths);
    assert!(outcome.errors.is_empty(), "errors: {:?}", outcome.errors);
    assert_eq!(outcome.completed(), paths.len());

    let merged: String = outcome
        .reports
        .iter()
        .map(|r| r.as_deref().expect("every slot filled"))
        .collect();
    assert_eq!(merged, reference, "vet output diverged from one-shot");

    let assigned: usize = outcome.shards.iter().map(|s| s.assigned).sum();
    assert_eq!(assigned, paths.len(), "partition covers every input");
    assert!(
        outcome.shards.iter().filter(|s| s.assigned > 0).count() > 1,
        "the corpus must actually spread across workers"
    );
}

/// A worker that dies mid-run is restarted and its shard completes:
/// the wrapper script crashes the first invocation, then execs the
/// real binary.
#[test]
fn a_crashed_worker_is_restarted_and_its_shard_completes() {
    let dir = temp_dir("crash");
    let paths = write_bundles(&dir, 9, 10);

    let marker = dir.join("crashed-once");
    let wrapper = dir.join("flaky-worker.sh");
    std::fs::write(
        &wrapper,
        format!(
            "#!/bin/sh\nif [ ! -e {marker} ]; then\n  : > {marker}\n  exit 42\nfi\nexec {real} \"$@\"\n",
            marker = marker.display(),
            real = env!("CARGO_BIN_EXE_nchecker"),
        ),
    )
    .unwrap();
    let mut perms = std::fs::metadata(&wrapper).unwrap().permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&wrapper, perms).unwrap();

    let options = OrchestratorOptions {
        workers: 1,
        worker_cmd: worker_cmd(wrapper.to_str().unwrap()),
        ..OrchestratorOptions::default()
    };
    let outcome = nck_svc::vet(&options, &paths);
    assert!(outcome.errors.is_empty(), "errors: {:?}", outcome.errors);
    assert_eq!(outcome.completed(), paths.len());
    assert_eq!(outcome.shards.len(), 1);
    assert!(
        outcome.shards[0].restarts >= 1,
        "the crash must be visible in the shard accounting"
    );
    assert_eq!(one_shot_reference(&paths), {
        let merged: String = outcome
            .reports
            .iter()
            .map(|r| r.as_deref().unwrap())
            .collect();
        merged
    });
}

/// Exhausted restarts fail the shard's remaining items cleanly instead
/// of hanging or panicking.
#[test]
fn restart_exhaustion_fails_the_shard_items_cleanly() {
    let dir = temp_dir("exhaust");
    let paths = write_bundles(&dir, 5, 4);

    // Always crashes: every spawn exits immediately.
    let wrapper = dir.join("always-dies.sh");
    std::fs::write(&wrapper, "#!/bin/sh\nexit 42\n").unwrap();
    let mut perms = std::fs::metadata(&wrapper).unwrap().permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&wrapper, perms).unwrap();

    let options = OrchestratorOptions {
        workers: 1,
        max_restarts: 1,
        worker_cmd: worker_cmd(wrapper.to_str().unwrap()),
        ..OrchestratorOptions::default()
    };
    let outcome = nck_svc::vet(&options, &paths);
    assert_eq!(outcome.completed(), 0);
    assert_eq!(outcome.errors.len(), paths.len(), "every input fails");
    assert!(outcome.shards[0].restarts >= 1);
}
