//! Warm-path byte-identity suite: after the cache-hit overhaul
//! (write-behind atime journal, disk-hit promotion, memoized report
//! rendering, warm worker fleets), every warm surface must still be
//! byte-identical to a cold analysis of the same bytes — including
//! after a crash-restart that loses the unflushed atime journal, where
//! GC degrades to the entry-mtime fallback and must never evict
//! *wrongly* (only rank by an older stamp).

use nck_appgen::generate_with_bulk;
use nck_appgen::profile;
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;
use nck_obs::{Events, Obs};
use nck_svc::{
    AnalysisService, Daemon, DaemonOptions, OrchestratorOptions, ServiceOptions, WorkerFleet,
};
use std::path::PathBuf;

/// The exact byte surface the one-shot CLI prints under `--json`:
/// pretty JSON plus the trailing newline (what the daemon `report`
/// verb and `vet` stdout both promise).
fn render(r: &nchecker::AppReport) -> String {
    let mut text =
        serde_json::to_string_pretty(&nchecker::app_report_to_json(r)).expect("report serializes");
    text.push('\n');
    text
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nck-warmpath-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn suite(n: usize, seed: u64) -> Vec<(String, Vec<u8>)> {
    profile::corpus(seed)
        .into_iter()
        .take(n)
        .map(|s| {
            let bytes = generate_with_bulk(&s, 2).to_bytes();
            (s.package.clone(), bytes)
        })
        .collect()
}

fn cold_renders(items: &[(String, Vec<u8>)]) -> Vec<String> {
    let reference = AnalysisService::new(
        ServiceOptions {
            no_cache: true,
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    reference
        .analyze_batch(items)
        .iter()
        .map(|o| render(o.report.as_ref().expect("cold analyzes")))
        .collect()
}

fn assert_matches_cold(
    outcomes: &[nck_svc::AppOutcome],
    cold: &[String],
    items: &[(String, Vec<u8>)],
    label: &str,
) {
    for ((o, c), (key, _)) in outcomes.iter().zip(cold).zip(items) {
        let got = render(o.report.as_ref().expect("warm analyzes"));
        assert_eq!(&got, c, "{key}: {label} output must equal cold");
    }
}

#[test]
fn memory_and_disk_warm_paths_are_byte_identical_to_cold() {
    let dir = tmpdir("tiers");
    let items = suite(6, 2016);
    let cold = cold_renders(&items);

    // Process 1: populate both tiers, then hit the memory tier.
    let svc = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(dir.clone()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    assert_matches_cold(&svc.analyze_batch(&items), &cold, &items, "populate");
    let mem_warm = svc.analyze_batch(&items);
    assert_eq!(AnalysisService::batch_stats(&mem_warm).hits, items.len());
    assert_matches_cold(&mem_warm, &cold, &items, "memory-warm");
    drop(svc); // clean shutdown: flushes the (empty) journal

    // Process 2: every app is a disk hit. The hit path must journal
    // the reads (no sidecar I/O inline) and promote each entry into
    // the memory tier.
    let svc = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(dir.clone()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let disk_warm = svc.analyze_batch(&items);
    assert_eq!(AnalysisService::batch_stats(&disk_warm).hits, items.len());
    assert_matches_cold(&disk_warm, &cold, &items, "disk-warm");
    assert_eq!(
        svc.store().journaled_atimes(),
        items.len(),
        "disk hits land in the journal, not in sidecar files"
    );
    assert_eq!(
        svc.store().len(),
        items.len(),
        "disk hits are promoted into the memory tier"
    );

    // Round 3 in the same process: the promoted entries serve rung-1
    // memory hits — no new journal traffic, same bytes.
    let promoted_warm = svc.analyze_batch(&items);
    assert_eq!(
        AnalysisService::batch_stats(&promoted_warm).hits,
        items.len()
    );
    assert_matches_cold(&promoted_warm, &cold, &items, "promoted-warm");
    assert_eq!(
        svc.store().journaled_atimes(),
        items.len(),
        "memory hits do not touch the disk tier at all"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_restart_with_unflushed_journal_degrades_to_mtime_without_wrong_evictions() {
    let dir = tmpdir("crash");
    let items = suite(3, 2016);
    let cold = cold_renders(&items);

    // Populate, then restart and read everything — the reads sit in
    // the journal only. `mem::forget` simulates the crash: Drop never
    // runs, the journal is lost, no sidecar was ever written.
    {
        let svc = AnalysisService::new(
            ServiceOptions {
                cache_dir: Some(dir.clone()),
                ..ServiceOptions::default()
            },
            Obs::disabled(),
        );
        let _ = svc.analyze_batch(&items);
    }
    let svc = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(dir.clone()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let warm = svc.analyze_batch(&items);
    assert_eq!(AnalysisService::batch_stats(&warm).hits, items.len());
    assert_eq!(svc.store().journaled_atimes(), items.len());
    std::mem::forget(svc);
    let sidecars = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "atime"))
        .count();
    assert_eq!(sidecars, 0, "the crash lost every journaled read");

    // Restart after the crash: GC must degrade to the mtime fallback —
    // it evicts *by budget*, never corrupts, and every surviving entry
    // still serves bytes identical to cold.
    let svc = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(dir.clone()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let obs = Obs::disabled();
    let before = svc.store().disk_stats();
    assert_eq!(before.entries, 3);
    let per_entry = before.bytes / before.entries;
    let stats = svc.store().gc_disk(per_entry * 2 + per_entry / 2, &obs);
    assert_eq!(
        stats.evicted, 1,
        "budget for two entries evicts exactly one"
    );
    assert_eq!(svc.store().disk_stats().entries, 2);

    // The post-crash warm run: survivors hit, the evicted app
    // recomputes — and everything is still byte-identical to cold.
    let after = svc.analyze_batch(&items);
    let stats = AnalysisService::batch_stats(&after);
    assert_eq!(stats.hits, 2, "survivors still decode and hit");
    assert_eq!(stats.misses, 1, "the evicted app recomputes");
    assert_matches_cold(&after, &cold, &items, "post-crash warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_report_verb_serves_identical_bytes_through_the_render_cell() {
    let spec = AppSpec::new(
        "com.warmpath.daemon",
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    let bytes = nck_appgen::generate(&spec).to_bytes();
    let one_shot = {
        let svc = AnalysisService::new(
            ServiceOptions {
                no_cache: true,
                ..ServiceOptions::default()
            },
            Obs::disabled(),
        );
        render(svc.analyze_one("k", &bytes).report.as_ref().unwrap())
    };

    let daemon = Daemon::new(DaemonOptions::default(), Events::silent());
    let report_of = |id: u64| {
        let reply = daemon.handle_request(nck_svc::Request::Report { id });
        let v: serde_json::Value = serde_json::from_str(&reply.line).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        v["report"].as_str().expect("report payload").to_owned()
    };

    // Miss (renders and fills the cell), then a hit (serves the cell).
    let (id1, _) = daemon
        .submit_bytes("app.cell".to_owned(), bytes.clone())
        .unwrap();
    daemon.drain_now();
    let first = report_of(id1);
    daemon.retire_key("app.cell");
    let (id2, _) = daemon.submit_bytes("app.cell".to_owned(), bytes).unwrap();
    daemon.drain_now();
    let second = report_of(id2);

    assert_eq!(first, one_shot, "daemon miss matches one-shot --json");
    assert_eq!(second, one_shot, "daemon hit serves the same bytes");
}

#[test]
fn a_warm_fleet_serves_a_second_round_without_spawning_and_byte_identically() {
    let dir = tmpdir("fleet");
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<String> = suite(4, 2016)
        .into_iter()
        .enumerate()
        .map(|(i, (_, bytes))| {
            let p = dir.join(format!("app{i}.apk"));
            std::fs::write(&p, bytes).unwrap();
            p.to_str().unwrap().to_owned()
        })
        .collect();

    let mut fleet = WorkerFleet::new(OrchestratorOptions {
        workers: 2,
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_nchecker").to_owned(),
            "serve".to_owned(),
            "--stdio".to_owned(),
            "--quiet".to_owned(),
            "--queue-capacity".to_owned(),
            "32".to_owned(),
        ],
        ..OrchestratorOptions::default()
    });

    let round1 = fleet.vet(&paths);
    assert_eq!(round1.completed(), paths.len());
    assert!(round1.worker_spawns >= 1, "cold fleet spawns its workers");
    assert_eq!(round1.workers_reused, 0);
    let spawned = round1.worker_spawns;
    assert_eq!(fleet.warm_workers(), spawned, "workers stay alive");

    let round2 = fleet.vet(&paths);
    assert_eq!(round2.completed(), paths.len());
    assert_eq!(round2.worker_spawns, 0, "warm round spawns nothing");
    assert_eq!(round2.workers_reused, spawned, "every shard reuses warm");
    assert_eq!(
        round2.shards.iter().map(|s| s.restarts).sum::<usize>(),
        0,
        "no respawns on the clean path"
    );
    assert_eq!(
        round1.reports, round2.reports,
        "warm-fleet output is byte-identical to the cold round"
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
