//! Shared harness for the experiment binaries: corpus runner, text
//! rendering helpers, and the [`gate`] bench-regression checks.

pub mod gate;

use nchecker::{AnalyzeError, AppReport, CheckerConfig, CorpusStats, NChecker};
use nck_appgen::profile::corpus;
use nck_appgen::spec::AppSpec;
use nck_obs::{MetricsSnapshot, Obs, PhaseTotals, Series};

/// The seed all experiment binaries use, so every table is reproducible.
pub const SEED: u64 = 2016;

/// One app of a corpus run that could not be analyzed.
#[derive(Debug)]
pub struct AppFailure {
    /// Index of the app in the spec list.
    pub index: usize,
    /// Package name from the spec (available even when generation or
    /// parsing failed).
    pub package: String,
    /// What went wrong.
    pub error: AnalyzeError,
}

impl std::fmt::Display for AppFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app #{} ({}): {}", self.index, self.package, self.error)
    }
}

/// The result of a fault-tolerant corpus run: per-slot reports (`None`
/// where the app failed) plus the failure records.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    /// One slot per input spec, in order.
    pub reports: Vec<Option<AppReport>>,
    /// Apps that failed to generate or analyze, in index order.
    pub failures: Vec<AppFailure>,
}

impl CorpusOutcome {
    /// The successfully analyzed reports, in spec order.
    pub fn succeeded(&self) -> Vec<&AppReport> {
        self.reports.iter().flatten().collect()
    }

    /// Consumes the outcome, keeping only the successful reports (in
    /// spec order).
    pub fn into_succeeded(self) -> Vec<AppReport> {
        self.reports.into_iter().flatten().collect()
    }

    /// Number of successful apps whose analysis was degraded (some
    /// methods skipped as unanalyzable).
    pub fn degraded_count(&self) -> usize {
        self.reports
            .iter()
            .flatten()
            .filter(|r| r.degraded())
            .count()
    }
}

/// Generates, serializes, re-parses, and analyzes every corpus app,
/// returning per-app reports. The serialize/parse round trip is
/// deliberate: the checker must consume *binaries*, as in the paper.
pub fn run_corpus(seed: u64) -> Vec<AppReport> {
    let specs = corpus(seed);
    run_specs(&specs)
}

/// Analyzes a list of specs in parallel.
pub fn run_specs(specs: &[AppSpec]) -> Vec<AppReport> {
    run_specs_with(specs, CheckerConfig::default(), &Obs::disabled())
}

/// Analyzes a list of specs in parallel with explicit checker toggles
/// and an observability template. Each worker derives fresh sinks from
/// `obs` (see [`Obs::fresh`]), so traces and metrics land per-app on the
/// returned [`AppReport`]s; aggregate them with [`collect_obs`].
///
/// The corpus is trusted here: any per-app failure is a harness bug, so
/// this panics (after the whole run completes) with the failure list.
/// Use [`try_run_specs_with`] for inputs that are allowed to fail.
pub fn run_specs_with(specs: &[AppSpec], config: CheckerConfig, obs: &Obs) -> Vec<AppReport> {
    let outcome = try_run_specs_with(specs, config, obs);
    if !outcome.failures.is_empty() {
        let lines: Vec<String> = outcome.failures.iter().map(|f| f.to_string()).collect();
        panic!(
            "{} of {} corpus apps failed to analyze:\n  {}",
            outcome.failures.len(),
            specs.len(),
            lines.join("\n  ")
        );
    }
    outcome
        .reports
        .into_iter()
        .map(|r| r.expect("no failures recorded"))
        .collect()
}

/// Fault-tolerant corpus run: analyzes every spec in parallel and always
/// returns, even when individual apps fail or panic.
///
/// Each app is generated and analyzed under panic containment
/// ([`NChecker::analyze_bytes_checked`] plus a `catch_unwind` around
/// generation), so one adversarial or bug-triggering app cannot abort
/// the run, poison the result slots, or take other workers down with it.
/// Failed apps leave a `None` in their slot and an [`AppFailure`] record.
pub fn try_run_specs_with(specs: &[AppSpec], config: CheckerConfig, obs: &Obs) -> CorpusOutcome {
    run_fault_tolerant(
        specs.len(),
        config,
        obs,
        |checker, i| analyze_one(checker, &specs[i]),
        |i| specs[i].package.clone(),
    )
}

/// Fault-tolerant run over pre-serialized bundles (binaries on disk or
/// mutated in memory) instead of trusted specs. Same containment
/// guarantees as [`try_run_specs_with`].
pub fn try_run_bundles_with(
    bundles: &[Vec<u8>],
    config: CheckerConfig,
    obs: &Obs,
) -> CorpusOutcome {
    run_fault_tolerant(
        bundles.len(),
        config,
        obs,
        |checker, i| checker.analyze_bytes_checked(&bundles[i]),
        |_| "<unparsed>".to_owned(),
    )
}

/// The shared worker pool behind the fault-tolerant runners: `task`
/// produces app `i`'s result (with panics already contained), `name`
/// labels a failed app. The pool itself lives in [`nck_svc::pool`]; this
/// wrapper only folds its slots into a [`CorpusOutcome`].
fn run_fault_tolerant(
    n: usize,
    config: CheckerConfig,
    obs: &Obs,
    task: impl Fn(&NChecker, usize) -> Result<AppReport, AnalyzeError> + Sync,
    name: impl Fn(usize) -> String,
) -> CorpusOutcome {
    let slots = nck_svc::run_pool(
        n,
        None,
        || {
            let mut checker = NChecker::with_config(config);
            checker.obs = obs.fresh();
            checker
        },
        |checker, i| task(checker, i),
    );

    let mut outcome = CorpusOutcome::default();
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot.unwrap_or_else(|| {
            Err(AnalyzeError::Panic(
                "worker died before writing a result".to_owned(),
            ))
        });
        match result {
            Ok(report) => outcome.reports.push(Some(report)),
            Err(error) => {
                outcome.reports.push(None);
                outcome.failures.push(AppFailure {
                    index: i,
                    package: name(i),
                    error,
                });
            }
        }
    }
    outcome
}

/// Generates and analyzes one spec with panics contained: generation
/// runs under `catch_unwind`, and analysis goes through the checked
/// entry point.
fn analyze_one(checker: &NChecker, spec: &AppSpec) -> Result<AppReport, AnalyzeError> {
    let bytes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nck_appgen::generate(spec).to_bytes()
    }))
    .map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        AnalyzeError::Panic(format!("app generation panicked: {msg}"))
    })?;
    checker.analyze_bytes_checked(&bytes)
}

/// Folds the per-app traces and metrics of `reports` into corpus-level
/// phase totals and one merged metrics snapshot.
pub fn collect_obs(reports: &[AppReport]) -> (PhaseTotals, MetricsSnapshot) {
    let mut phases = PhaseTotals::new();
    let mut metrics = MetricsSnapshot::default();
    for r in reports {
        if let Some(t) = &r.trace {
            phases.absorb(t);
        }
        if let Some(m) = &r.metrics {
            metrics.merge(m);
        }
    }
    (phases, metrics)
}

/// Collects per-app wall times (µs, from each report's attached trace)
/// into an exact-sample [`Series`] for corpus latency percentiles.
pub fn latency_series(reports: &[AppReport]) -> Series {
    let mut s = Series::new();
    for r in reports {
        if let Some(t) = &r.trace {
            s.push(t.wall_nanos() / 1_000);
        }
    }
    s
}

/// Folds per-app reports into corpus statistics.
pub fn aggregate(reports: &[AppReport]) -> CorpusStats {
    let mut stats = CorpusStats::new();
    for r in reports {
        stats.add(r.stats.clone());
    }
    stats
}

/// Renders an ASCII bar of `frac` (0..=1) scaled to `width` characters.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Prints a `(x, y)` series as a fixed-width two-column table.
pub fn print_series(header: (&str, &str), series: &[(f64, f64)]) {
    println!("{:>12} {:>12}", header.0, header.1);
    for (x, y) in series {
        println!("{x:>12.3} {y:>12.3}");
    }
}

/// Downsamples a CDF to `points` evenly spaced quantiles for printing.
pub fn downsample(series: &[(f64, f64)], points: usize) -> Vec<(f64, f64)> {
    if series.len() <= points {
        return series.to_vec();
    }
    (0..points)
        .map(|i| {
            let idx = i * (series.len() - 1) / (points - 1);
            series[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
    }

    #[test]
    fn downsample_keeps_ends() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let ds = downsample(&series, 5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0], (0.0, 0.0));
        assert_eq!(ds[4], (99.0, 99.0));
    }

    #[test]
    fn small_spec_run_roundtrips() {
        let specs = vec![nck_appgen::studyapps::gpslogger()];
        let reports = run_specs(&specs);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].defects.is_empty());
        let stats = aggregate(&reports);
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn obs_template_yields_per_app_traces_and_corpus_totals() {
        let specs = vec![
            nck_appgen::studyapps::gpslogger(),
            nck_appgen::studyapps::gpslogger(),
        ];
        let reports = run_specs_with(&specs, nchecker::CheckerConfig::default(), &Obs::enabled());
        for r in &reports {
            let trace = r.trace.as_ref().expect("trace attached");
            assert!(trace.find("context").is_some());
            assert!(trace.find("checkers").is_some());
            assert!(r.metrics.is_some());
        }
        let (phases, metrics) = collect_obs(&reports);
        assert!(!phases.is_empty());
        // Two apps absorbed: the root phase was seen twice.
        let app = phases
            .iter()
            .find(|(path, _)| *path == "app")
            .expect("app phase")
            .1;
        assert_eq!(app.count, 2);
        assert!(metrics.counters.contains_key("parse.classes"));
        let mut lat = latency_series(&reports);
        assert_eq!(lat.count(), 2);
        assert!(lat.percentile(50.0).unwrap() > 0, "wall time measured");
    }
}
