//! Shared harness for the experiment binaries: corpus runner and text
//! rendering helpers.

use nchecker::{AppReport, CheckerConfig, CorpusStats, NChecker};
use nck_appgen::profile::corpus;
use nck_appgen::spec::AppSpec;
use nck_obs::{MetricsSnapshot, Obs, PhaseTotals};

/// The seed all experiment binaries use, so every table is reproducible.
pub const SEED: u64 = 2016;

/// Generates, serializes, re-parses, and analyzes every corpus app,
/// returning per-app reports. The serialize/parse round trip is
/// deliberate: the checker must consume *binaries*, as in the paper.
pub fn run_corpus(seed: u64) -> Vec<AppReport> {
    let specs = corpus(seed);
    run_specs(&specs)
}

/// Analyzes a list of specs in parallel.
pub fn run_specs(specs: &[AppSpec]) -> Vec<AppReport> {
    run_specs_with(specs, CheckerConfig::default(), &Obs::disabled())
}

/// Analyzes a list of specs in parallel with explicit checker toggles
/// and an observability template. Each worker derives fresh sinks from
/// `obs` (see [`Obs::fresh`]), so traces and metrics land per-app on the
/// returned [`AppReport`]s; aggregate them with [`collect_obs`].
pub fn run_specs_with(specs: &[AppSpec], config: CheckerConfig, obs: &Obs) -> Vec<AppReport> {
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let mut out: Vec<Option<AppReport>> = vec![None; specs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<AppReport>>> = (0..specs.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();

    crossbeam::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| {
                let mut checker = NChecker::with_config(config);
                checker.obs = obs.fresh();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let apk = nck_appgen::generate(&specs[i]);
                    let bytes = apk.to_bytes();
                    let report = checker
                        .analyze_bytes(&bytes)
                        .expect("generated app analyzes");
                    *slots[i].lock().expect("slot lock") = Some(report);
                }
            });
        }
    })
    .expect("corpus workers");

    for (i, slot) in slots.into_iter().enumerate() {
        out[i] = slot.into_inner().expect("slot lock");
    }
    out.into_iter()
        .map(|r| r.expect("every app analyzed"))
        .collect()
}

/// Folds the per-app traces and metrics of `reports` into corpus-level
/// phase totals and one merged metrics snapshot.
pub fn collect_obs(reports: &[AppReport]) -> (PhaseTotals, MetricsSnapshot) {
    let mut phases = PhaseTotals::new();
    let mut metrics = MetricsSnapshot::default();
    for r in reports {
        if let Some(t) = &r.trace {
            phases.absorb(t);
        }
        if let Some(m) = &r.metrics {
            metrics.merge(m);
        }
    }
    (phases, metrics)
}

/// Folds per-app reports into corpus statistics.
pub fn aggregate(reports: &[AppReport]) -> CorpusStats {
    let mut stats = CorpusStats::new();
    for r in reports {
        stats.add(r.stats.clone());
    }
    stats
}

/// Renders an ASCII bar of `frac` (0..=1) scaled to `width` characters.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Prints a `(x, y)` series as a fixed-width two-column table.
pub fn print_series(header: (&str, &str), series: &[(f64, f64)]) {
    println!("{:>12} {:>12}", header.0, header.1);
    for (x, y) in series {
        println!("{x:>12.3} {y:>12.3}");
    }
}

/// Downsamples a CDF to `points` evenly spaced quantiles for printing.
pub fn downsample(series: &[(f64, f64)], points: usize) -> Vec<(f64, f64)> {
    if series.len() <= points {
        return series.to_vec();
    }
    (0..points)
        .map(|i| {
            let idx = i * (series.len() - 1) / (points - 1);
            series[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
    }

    #[test]
    fn downsample_keeps_ends() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let ds = downsample(&series, 5);
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0], (0.0, 0.0));
        assert_eq!(ds[4], (99.0, 99.0));
    }

    #[test]
    fn small_spec_run_roundtrips() {
        let specs = vec![nck_appgen::studyapps::gpslogger()];
        let reports = run_specs(&specs);
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].defects.is_empty());
        let stats = aggregate(&reports);
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn obs_template_yields_per_app_traces_and_corpus_totals() {
        let specs = vec![
            nck_appgen::studyapps::gpslogger(),
            nck_appgen::studyapps::gpslogger(),
        ];
        let reports = run_specs_with(&specs, nchecker::CheckerConfig::default(), &Obs::enabled());
        for r in &reports {
            let trace = r.trace.as_ref().expect("trace attached");
            assert!(trace.find("context").is_some());
            assert!(trace.find("checkers").is_some());
            assert!(r.metrics.is_some());
        }
        let (phases, metrics) = collect_obs(&reports);
        assert!(!phases.is_empty());
        // Two apps absorbed: the root phase was seen twice.
        let app = phases
            .iter()
            .find(|(path, _)| *path == "app")
            .expect("app phase")
            .1;
        assert_eq!(app.count, 2);
        assert!(metrics.counters.contains_key("parse.classes"));
    }
}
