//! The bench-regression gate binary: diffs the measured
//! `BENCH_pipeline.json` against the committed `BENCH_baseline.json`
//! and exits non-zero when any metric breaks its declared tolerance.
//!
//! ```text
//! bench_gate [--baseline FILE] [--current FILE] [--smoke]
//! ```
//!
//! `--smoke` tolerates metrics missing from the measured document, for
//! CI runs that regenerate only some sections; out-of-tolerance values
//! still fail. Comparison logic lives in [`nck_bench::gate`].

use nck_bench::gate;
use serde_json::Value;

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let baseline_path = get("--baseline").unwrap_or("BENCH_baseline.json");
    let current_path = get("--current").unwrap_or("BENCH_pipeline.json");
    let smoke = args.iter().any(|a| a == "--smoke");

    let baseline = load(baseline_path);
    let current = load(current_path);

    let outcomes = gate::run(&baseline, &current, smoke).unwrap_or_else(|e| {
        eprintln!("bench_gate: bad baseline {baseline_path}: {e}");
        std::process::exit(2);
    });

    println!("=== bench gate: {current_path} vs {baseline_path} ===");
    for o in &outcomes {
        println!("{}", gate::render_line(o));
    }
    let failed = outcomes.iter().filter(|o| o.failed()).count();
    let skipped = outcomes
        .iter()
        .filter(|o| o.status == gate::Status::SkippedMissing)
        .count();
    if failed > 0 {
        eprintln!(
            "bench gate FAILED: {failed}/{} metrics out of tolerance",
            outcomes.len()
        );
        std::process::exit(1);
    }
    println!(
        "bench gate OK: {} metrics within tolerance{}",
        outcomes.len() - skipped,
        if skipped > 0 {
            format!(", {skipped} skipped")
        } else {
            String::new()
        }
    );
}
