//! Store-scale streaming benchmark: a 100k-app corpus through the
//! analysis service, one wave at a time, without ever materializing
//! the corpus.
//!
//! Wave 0 analyzes version 0 of every app cold. Each later wave churns
//! a seeded fraction of the corpus to its next version and resubmits
//! *everything*: unchanged apps must come back as whole-report hits
//! (memory or disk tier), churned apps re-analyze and emit a
//! [`DeltaReport`] against the cached base. The bench reports sustained
//! analysis throughput, the per-wave hit curve, the **warm speedup**
//! (mean warm-wave rate over the cold rate — the number that proves a
//! cache hit is cheaper than a cold analysis), delta counts against
//! the generator's churn ground truth, disk-GC counters, and the
//! process's peak RSS — the number that proves "streaming": it must
//! stay bounded while corpus size grows without bound.
//!
//! Warm-wave outputs are also spot-checked for byte identity: a sample
//! of every warm wave's reports is re-rendered and compared against a
//! cache-disabled reference analysis of the same bytes, so the fast
//! path can never drift from the cold path's output surface.
//!
//! Results merge into `BENCH_pipeline.json` under `"store_scale"`.
//!
//! Usage: `store_scale_bench [--apps N] [--waves W] [--churn-pct P]
//! [--batch B] [--cache-budget BYTES] [--rss-budget-mb MB] [--smoke]
//! [--no-write] [--write-to FILE]`
//!
//! `--smoke` shrinks the run (2 000 apps, 2 waves) and skips the merge.
//!
//! [`DeltaReport`]: nck_svc::DeltaReport

use nck_appgen::CorpusStream;
use nck_obs::Obs;
use nck_svc::{AnalysisService, ServiceOptions};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::time::Instant;

/// SplitMix64: the churn coin for (wave, app) — independent of the
/// stream's own generator so churn never correlates with app shape.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn churns(seed: u64, wave: usize, i: usize, pct: f64) -> bool {
    let h = mix(seed ^ (wave as u64).wrapping_mul(0x5eed_cafe), i as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0 < pct
}

/// Peak resident set (VmHWM) in MiB, from `/proc/self/status`.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let apps: usize = arg_after(&args, "--apps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2_000 } else { 100_000 });
    let waves: usize = arg_after(&args, "--waves")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2 } else { 3 })
        .max(1);
    let churn_pct: f64 = arg_after(&args, "--churn-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let batch: usize = arg_after(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
        .max(1);
    let cache_budget: u64 = arg_after(&args, "--cache-budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2 << 30);
    let rss_budget_mb: f64 = arg_after(&args, "--rss-budget-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096.0);
    let write = !smoke && !args.iter().any(|a| a == "--no-write");
    let path = arg_after(&args, "--write-to").unwrap_or_else(|| "BENCH_pipeline.json".to_owned());

    let seed = nck_bench::SEED;
    let stream = CorpusStream::new(seed, apps);
    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("nck-store-scale-{}-{apps}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let svc = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(cache_dir.clone()),
            cache_budget: Some(cache_budget),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    // Cache-disabled reference for the byte-identity spot checks: the
    // slowest, plainest path the warm output must match exactly.
    let reference = AnalysisService::new(
        ServiceOptions {
            no_cache: true,
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let render = |report: &nchecker::AppReport| {
        let mut text = serde_json::to_string_pretty(&nchecker::app_report_to_json(report))
            .expect("report serializes");
        text.push('\n');
        text
    };
    // ~32 spot checks per warm wave, spread across the corpus.
    let sample_stride = (apps / 32).max(1);
    let mut identity_checks = 0usize;

    println!(
        "=== store-scale streaming (seed {seed}, {apps} apps, {waves} wave(s), \
         {churn_pct}% churn, batch {batch}) ==="
    );

    // Version of app i after the churn coin has been tossed for every
    // wave so far. Cumulative: an app churned in waves 1 and 3 is at
    // version 2. One u32 per app is the only per-corpus state held.
    let mut versions = vec![0u32; apps];
    let mut wave_rates: Vec<f64> = Vec::new();
    let mut wave_hits: Vec<f64> = Vec::new();
    let mut total_deltas = 0usize;
    let mut total_churned = 0usize;
    let mut analysis_secs = 0.0f64;

    for wave in 0..=waves {
        if wave > 0 {
            for (i, v) in versions.iter_mut().enumerate() {
                if churns(seed, wave, i, churn_pct) {
                    *v += 1;
                    total_churned += 1;
                }
            }
        }
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut deltas = 0usize;
        let mut wave_secs = 0.0f64;
        let mut i = 0usize;
        while i < apps {
            let n = batch.min(apps - i);
            // Generate outside the timer: the bench measures analysis
            // throughput, and a store feeds from disk, not a generator.
            let items: Vec<(String, Vec<u8>)> = (i..i + n)
                .map(|j| {
                    let spec = stream.version_at(j, versions[j]);
                    (spec.package.clone(), nck_appgen::generate(&spec).to_bytes())
                })
                .collect();
            let t = Instant::now();
            let outcomes = svc.analyze_batch(&items);
            wave_secs += t.elapsed().as_secs_f64();
            let stats = AnalysisService::batch_stats(&outcomes);
            hits += stats.hits;
            misses += stats.misses;
            deltas += outcomes.iter().filter(|o| o.delta.is_some()).count();
            for o in &outcomes {
                o.report.as_ref().expect("store corpus apps analyze");
            }
            // Byte-identity spot checks, outside the timer: warm-wave
            // reports (hits, replays, promoted entries, cached render
            // cells) must match a cache-disabled cold analysis of the
            // same bytes exactly.
            if wave > 0 {
                for (off, o) in outcomes.iter().enumerate() {
                    if !(i + off).is_multiple_of(sample_stride) {
                        continue;
                    }
                    let (key, bytes) = &items[off];
                    let warm = render(o.report.as_ref().expect("sampled app analyzed"));
                    let cold_outcome = reference.analyze_one(key, bytes);
                    let cold = render(cold_outcome.report.as_ref().expect("reference analyzes"));
                    if warm != cold {
                        eprintln!("FAILED: wave {wave} app {key}: warm output != cold output");
                        std::process::exit(1);
                    }
                    identity_checks += 1;
                }
            }
            i += n;
        }
        analysis_secs += wave_secs;
        total_deltas += deltas;
        let rate = apps as f64 / wave_secs.max(1e-9);
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        wave_rates.push(rate);
        wave_hits.push(hit_rate);
        println!(
            "wave {wave}: {rate:>8.1} apps/s  hit rate {:>5.1}%  {deltas} delta(s)",
            hit_rate * 100.0
        );
    }

    let store_counters = svc.store().metrics().snapshot();
    let counter = |name: &str| store_counters.counters.get(name).copied().unwrap_or(0);
    let peak = peak_rss_mb();
    let cold_rate = wave_rates[0];
    let warm_rates = &wave_rates[1..];
    let warm_rate = warm_rates.iter().sum::<f64>() / warm_rates.len().max(1) as f64;
    let churn_hit_rate = wave_hits[1..].iter().sum::<f64>() / warm_rates.len().max(1) as f64;
    let overall = (apps * (waves + 1)) as f64 / analysis_secs.max(1e-9);
    let warm_speedup = warm_rate / cold_rate.max(1e-9);

    println!(
        "overall: {overall:.1} apps/s  cold {cold_rate:.1}  warm {warm_rate:.1} \
         ({warm_speedup:.2}x cold)  churn hit rate {:.1}%",
        churn_hit_rate * 100.0
    );
    println!(
        "deltas: {total_deltas} emitted / {total_churned} churned; \
         gc: {} run(s), {} skipped, {} evicted, {} bytes freed; \
         {identity_checks} identity check(s)",
        counter("svc.cache.gc_runs"),
        counter("svc.cache.gc_skipped"),
        counter("svc.cache.gc_evicted"),
        counter("svc.cache.gc_freed_bytes"),
    );
    println!("peak RSS: {peak:.1} MiB (budget {rss_budget_mb:.0} MiB)");

    // Churned apps whose evolution happened to be a no-op produce no
    // delta; anything beyond that gap means a delta was dropped.
    if total_deltas > total_churned {
        eprintln!("FAILED: more deltas than churned apps");
        std::process::exit(1);
    }
    if peak > rss_budget_mb {
        eprintln!("FAILED: peak RSS {peak:.1} MiB over the {rss_budget_mb:.0} MiB budget");
        std::process::exit(1);
    }
    // The tentpole invariant: the steady state must be the fast path.
    // Smoke runs skip the floor (micro-corpora are too noisy) but still
    // ran the identity checks above.
    if !smoke && warm_speedup < 2.0 {
        eprintln!("FAILED: warm speedup {warm_speedup:.2}x under the 2.0x floor");
        std::process::exit(1);
    }

    if write {
        let section = json!({
            "apps": apps,
            "waves": waves,
            "churn_pct": churn_pct,
            "batch": batch,
            "apps_per_sec": overall,
            "cold_apps_per_sec": cold_rate,
            "warm_apps_per_sec": warm_rate,
            "warm_speedup": warm_speedup,
            "wave_hit_rates": wave_hits,
            "churn_hit_rate": churn_hit_rate,
            "deltas": total_deltas,
            "churned": total_churned,
            "identity_checks": identity_checks,
            "peak_rss_mb": peak,
            "gc": {
                "runs": counter("svc.cache.gc_runs"),
                "skipped": counter("svc.cache.gc_skipped"),
                "evicted": counter("svc.cache.gc_evicted"),
                "freed_bytes": counter("svc.cache.gc_freed_bytes"),
            },
        });
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok())
            .unwrap_or_else(|| json!({ "schema": 1, "seed": seed }));
        if let Value::Object(map) = &mut doc {
            map.insert("store_scale".to_owned(), section);
        }
        let out = serde_json::to_string_pretty(&doc).expect("pipeline doc serializes");
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("merged \"store_scale\" into {path}");
    } else if smoke {
        println!("smoke: measured only; run bench_gate for the regression verdict");
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
}
