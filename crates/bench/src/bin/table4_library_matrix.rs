//! Regenerates Table 4: top libraries and their abilities in tolerating
//! NPDs (* = automatic, o = APIs provided but developer must set).

fn main() {
    println!("Table 4: Top libraries and their abilities in tolerating NPDs");
    println!("(* tolerates automatically; o provides APIs, developer must set)");
    println!("{:-<160}", "");
    print!("{}", nck_netlibs::render_table4());
}
