//! Ablation: the paper's future-work extensions, measured on the Table 9
//! accuracy suite.
//!
//! The paper attributes all 9 false positives to missing inter-component
//! analysis (§4.7 plans an IccTA integration) and all 5 known false
//! negatives to path-insensitive connectivity checking (§5.3). This
//! reproduction implements both; this binary reruns the 16-app accuracy
//! evaluation under each configuration.

use nchecker::CheckerConfig;
use nck_appgen::opensource::{evaluate_accuracy_with, Table9Row};

fn totals(config: CheckerConfig) -> (usize, usize, usize) {
    let table = evaluate_accuracy_with(config);
    Table9Row::ALL.iter().fold((0, 0, 0), |(c, f, n), row| {
        let a = table[row];
        (c + a.correct, f + a.fp, n + a.known_fn)
    })
}

fn main() {
    let configs = [
        ("paper default", CheckerConfig::default()),
        (
            "+ ICC analysis",
            CheckerConfig {
                icc: true,
                ..CheckerConfig::default()
            },
        ),
        (
            "+ strict connectivity",
            CheckerConfig {
                strict_connectivity: true,
                ..CheckerConfig::default()
            },
        ),
        (
            "+ both",
            CheckerConfig {
                icc: true,
                strict_connectivity: true,
                ..CheckerConfig::default()
            },
        ),
    ];

    println!("Ablation: future-work extensions on the Table 9 suite (16 apps)");
    println!("{:-<72}", "");
    println!(
        "{:<24} {:>10} {:>8} {:>10} {:>10}",
        "configuration", "correct", "FP", "known FN", "accuracy"
    );
    for (name, config) in configs {
        let (c, f, n) = totals(config);
        println!(
            "{:<24} {:>10} {:>8} {:>10} {:>9.1}%",
            name,
            c,
            f,
            n,
            c as f64 / (c + f) as f64 * 100.0
        );
    }
    println!(
        "\nICC analysis resolves explicit Intent targets, so a connectivity check\n\
         guarding a startActivity() clears the launched component's requests, and a\n\
         broadcast-then-display error path counts as a notification. Strict mode\n\
         additionally requires the check to be a control condition of the request."
    );
}
