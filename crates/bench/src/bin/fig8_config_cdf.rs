//! Regenerates Figure 8: CDF over apps of the ratio of requests missing
//! connectivity checks (red) and timeouts (blue), among apps that set
//! the API at least once but not everywhere.

use nchecker::CorpusStats;
use nck_bench::{aggregate, downsample, print_series, run_corpus, SEED};

fn main() {
    let reports = run_corpus(SEED);
    let stats = aggregate(&reports);

    let conn = CorpusStats::cdf(&stats.conn_miss_ratios());
    let timeout = CorpusStats::cdf(&stats.timeout_miss_ratios());

    println!("Figure 8: CDF of per-app miss ratios (partial-config apps)");
    println!("{:-<40}", "");
    println!("conn. check API ({} apps):", conn.len());
    print_series(("miss ratio", "cum. frac"), &downsample(&conn, 12));
    println!();
    println!("timeout API ({} apps):", timeout.len());
    print_series(("miss ratio", "cum. frac"), &downsample(&timeout, 12));

    let over_half = |series: &[(f64, f64)]| {
        let total = series.len().max(1);
        series.iter().filter(|(x, _)| *x > 0.5).count() as f64 / total as f64
    };
    println!();
    println!(
        "Apps missing in over half their requests: conn {:.0}%, timeout {:.0}% \
         (paper: 62% and 58%)",
        over_half(&conn) * 100.0,
        over_half(&timeout) * 100.0
    );
}
