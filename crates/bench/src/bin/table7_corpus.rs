//! Regenerates Table 7: evaluated apps and their libraries.

use nck_appgen::profile::corpus;
use nck_bench::SEED;
use nck_netlibs::library::Library;

fn main() {
    let apps = corpus(SEED);
    let count =
        |pred: &dyn Fn(&nck_appgen::AppSpec) -> bool| apps.iter().filter(|a| pred(a)).count();
    println!(
        "Table 7: Evaluated apps and their libraries (n = {})",
        apps.len()
    );
    println!("{:-<34}", "");
    println!("{:<22} {:>8}", "Lib used", "# Apps");
    let native = count(&|a| {
        a.libraries().contains(&Library::HttpUrlConnection)
            || a.libraries().contains(&Library::ApacheHttpClient)
    });
    println!("{:<22} {:>8}", "Native", native);
    for (name, lib) in [
        ("Volley", Library::Volley),
        ("Android Async Http", Library::AndroidAsyncHttp),
        ("Basic Http", Library::BasicHttpClient),
        ("OkHttp", Library::OkHttp),
    ] {
        println!(
            "{:<22} {:>8}",
            name,
            count(&|a| a.libraries().contains(&lib))
        );
    }
}
