//! Regenerates Table 1: the 21 Android apps used in the study.

use nck_study::STUDY_APPS;

fn main() {
    println!("Table 1: 21 Android apps used in the study");
    println!("{:-<70}", "");
    println!("{:<28} {:<22} {:>10}", "App/Sys", "Category", "#Installs");
    for app in STUDY_APPS {
        println!("{:<28} {:<22} {:>10}", app.name, app.category, app.installs);
    }
}
