//! Ablation: the interprocedural summary engine, measured on the
//! extended 16-app helper-idiom suite.
//!
//! The suite seeds connectivity guards behind `isOnline()` wrappers,
//! retry counts behind `getRetryCount()` getters, and response checks
//! behind `isValidResponse()` validators — idioms a method-local
//! analysis structurally cannot resolve. This binary reruns the
//! accuracy evaluation with the engine on (the default) and off (the
//! bounded method-local fallback), reports the per-row precision delta,
//! and prints the summary-cache statistics of the default run.

use nchecker::{CheckerConfig, NChecker};
use nck_appgen::interproc_suite::{
    evaluate_interproc_with, interproc_apps, report_kinds_with, uses_helper_idioms,
};
use nck_appgen::opensource::Table9Row;

/// The method-local configuration: summaries off, caller walk bounded to
/// the old depth-3 recursion.
fn local_config() -> CheckerConfig {
    CheckerConfig {
        interproc: false,
        strict_caller_depth: Some(3),
        ..CheckerConfig::default()
    }
}

fn totals(config: CheckerConfig) -> (usize, usize, usize) {
    let table = evaluate_interproc_with(config);
    Table9Row::ALL.iter().fold((0, 0, 0), |(c, f, n), row| {
        let a = table[row];
        (c + a.correct, f + a.fp, n + a.known_fn)
    })
}

fn main() {
    let on = CheckerConfig::default();
    let off = local_config();

    println!("Ablation: summary engine on the helper-idiom suite (16 apps)");
    println!("{:-<72}", "");
    println!(
        "{:<28} {:>8} {:>6} {:>6} {:>10}",
        "configuration", "correct", "FP", "FN", "accuracy"
    );
    let mut results = Vec::new();
    for (name, config) in [("summaries (default)", on), ("method-local", off)] {
        let (c, f, n) = totals(config);
        println!(
            "{:<28} {:>8} {:>6} {:>6} {:>9.1}%",
            name,
            c,
            f,
            n,
            c as f64 / (c + f).max(1) as f64 * 100.0
        );
        results.push((c, f, n));
    }
    let (on_t, off_t) = (results[0], results[1]);
    assert!(
        on_t.2 < off_t.2,
        "engine must recover seeded defects the local analysis misses"
    );
    assert!(
        on_t.1 <= off_t.1,
        "engine must not introduce false positives"
    );

    println!("\nPer-row delta (engine on vs off):");
    let ton = evaluate_interproc_with(on);
    let toff = evaluate_interproc_with(off);
    for row in Table9Row::ALL {
        let (a, b) = (ton[&row], toff[&row]);
        if a != b {
            println!(
                "  {:<30} FP {:>2} -> {:<2}  FN {:>2} -> {:<2}",
                row.label(),
                b.fp,
                a.fp,
                b.known_fn,
                a.known_fn
            );
        }
    }

    // Baseline apps (no helper idioms) must be untouched by the engine.
    let mut baseline_ok = 0;
    for spec in interproc_apps() {
        if uses_helper_idioms(&spec) {
            continue;
        }
        let mut a = report_kinds_with(&spec, on);
        let mut b = report_kinds_with(&spec, off);
        a.sort_by_key(|k| format!("{k:?}"));
        b.sort_by_key(|k| format!("{k:?}"));
        assert_eq!(a, b, "baseline app {} shifted", spec.package);
        baseline_ok += 1;
    }
    println!("\nBaseline agreement: {baseline_ok} helper-free apps identical under both configs.");

    // Summary-cache statistics over the suite's default-config runs.
    let checker = NChecker::new();
    let (mut methods, mut sccs, mut consts, mut hits) = (0, 0, 0, 0);
    for spec in interproc_apps() {
        let apk = nck_appgen::generate(&spec);
        let report = checker.analyze_apk(&apk).expect("analyzable app");
        methods += report.stats.summary_methods;
        sccs += report.stats.summary_sccs;
        consts += report.stats.summary_const_returns;
        hits += report.stats.summary_hits;
    }
    println!(
        "Summary cache: {methods} methods in {sccs} SCCs, {consts} constant returns, \
         {hits} lookups served."
    );
}
