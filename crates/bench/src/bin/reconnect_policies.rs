//! Reconnection-policy study: the Figure 2 Telegram loop quantified
//! end-to-end against disruption timelines.
//!
//! For each policy, plays reconnection sessions against a repeating
//! 10 s-outage / 50 s-up timeline and a WiFi→3G network switch, and
//! reports reconnect latency, attempts, and radio energy — the trade-off
//! the paper's "back off retries" fix suggestion navigates.

use nck_bench::SEED;
use nck_netsim::{
    run_session, Condition, LinkModel, RadioModel, ReconnectPolicy, Segment, Timeline,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let radio = RadioModel::three_g();
    let policies = [
        (
            "fixed 500 ms (Figure 2 bug)",
            ReconnectPolicy::Fixed { interval_ms: 500.0 },
        ),
        (
            "fixed 5 s",
            ReconnectPolicy::Fixed {
                interval_ms: 5000.0,
            },
        ),
        (
            "backoff 1 s -> 32 s (the fix)",
            ReconnectPolicy::Backoff {
                initial_ms: 1000.0,
                max_ms: 32_000.0,
            },
        ),
        ("give up (cause 2.1)", ReconnectPolicy::GiveUp),
    ];
    let timelines = [
        (
            "intermittent (10 s down / 50 s up)",
            Timeline::new(vec![
                Segment {
                    duration_ms: 10_000.0,
                    condition: Condition::Down,
                },
                Segment {
                    duration_ms: 50_000.0,
                    condition: Condition::Up(LinkModel::three_g()),
                },
            ]),
        ),
        (
            "network switch (2 s gap)",
            Timeline::network_switch(LinkModel::wifi(), LinkModel::three_g(), 30_000.0, 2_000.0),
        ),
    ];

    let mut rng = StdRng::seed_from_u64(SEED);
    for (tname, timeline) in &timelines {
        println!("timeline: {tname}");
        println!(
            "  {:<30} {:>10} {:>10} {:>12} {:>12}",
            "policy", "success", "attempts", "latency ms", "energy mJ"
        );
        for (pname, policy) in policies {
            let trials = 200;
            let (mut ok, mut att, mut lat, mut en) = (0u32, 0u64, 0.0f64, 0.0f64);
            for _ in 0..trials {
                let start = rng.gen::<f64>() * 60_000.0;
                let r = run_session(timeline, policy, &radio, start, 200.0, 120_000.0, &mut rng);
                ok += u32::from(r.connected);
                att += u64::from(r.attempts);
                lat += r.elapsed_ms;
                en += r.energy_mj;
            }
            let n = f64::from(trials);
            println!(
                "  {:<30} {:>9.0}% {:>10.1} {:>12.0} {:>12.0}",
                pname,
                f64::from(ok) / n * 100.0,
                att as f64 / n,
                lat / n,
                en / n
            );
        }
        println!();
    }
    println!(
        "The backoff policy reconnects nearly as fast as the 500 ms loop while making\n\
         an order of magnitude fewer attempts — the quantitative case behind the\n\
         paper's fix suggestion for Figure 2 and Table 11's context-aware defaults."
    );
}
