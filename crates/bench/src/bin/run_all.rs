//! Runs the full evaluation once and prints every corpus-derived table
//! and figure (6, 7, 8, 9 + the Section 5.2 headline numbers), reusing a
//! single corpus pass.

use nchecker::CorpusStats;
use nck_bench::{aggregate, downsample, run_corpus, SEED};

fn main() {
    let start = std::time::Instant::now();
    let reports = run_corpus(SEED);
    let elapsed = start.elapsed();
    let stats = aggregate(&reports);

    println!("=== NChecker full evaluation (seed {SEED}) ===");
    println!(
        "analyzed {} apps in {:.2?} ({:.0} ms/app)\n",
        stats.len(),
        elapsed,
        elapsed.as_millis() as f64 / stats.len() as f64
    );

    println!(
        "Headline (Section 5.2): {} NPDs in {} of {} apps",
        stats.total_defects(),
        stats.buggy_apps(),
        stats.len()
    );
    println!();

    println!("--- Table 6 ---");
    for row in stats.table6() {
        println!(
            "{:<30} {:>6}/{:<6} ({:.0}%)",
            row.cause,
            row.buggy,
            row.evaluated,
            row.percent()
        );
    }
    println!();

    println!("--- Table 8 ---");
    for row in stats.table8() {
        println!(
            "{:<30} {:>4.0}%   (default-caused {:.0}%)",
            row.behaviour,
            row.apps as f64 / row.population.max(1) as f64 * 100.0,
            row.default_caused_percent
        );
    }
    println!();

    println!("--- Figure 8 (10-quantile summary) ---");
    let conn = CorpusStats::cdf(&stats.conn_miss_ratios());
    let to = CorpusStats::cdf(&stats.timeout_miss_ratios());
    println!(
        "conn:    {:?}",
        downsample(&conn, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "timeout: {:?}",
        downsample(&to, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!();

    println!("--- Figure 9 (10-quantile summary) ---");
    let nf = CorpusStats::cdf(&stats.notification_miss_ratios());
    println!(
        "notif:   {:?}",
        downsample(&nf, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!();

    println!("--- Section 5.2 extras ---");
    println!(
        "custom retry apps: {:.0}%   error types ignored: {:.0}%   responses unchecked: {:.0}%",
        stats.custom_retry_rate() * 100.0,
        stats.error_type_ignored_rate() * 100.0,
        stats.response_miss_rate() * 100.0
    );
    let (e, i) = stats.notification_by_callback_kind();
    println!(
        "notified requests: explicit callbacks {:.0}% vs implicit {:.0}%",
        e * 100.0,
        i * 100.0
    );
}
