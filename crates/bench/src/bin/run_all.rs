//! Runs the full evaluation once and prints every corpus-derived table
//! and figure (6, 7, 8, 9 + the Section 5.2 headline numbers), reusing a
//! single corpus pass. The pass runs with tracing and metrics enabled
//! and writes the per-phase wall-time breakdown and corpus throughput to
//! `BENCH_pipeline.json`.

use nchecker::{CheckerConfig, CorpusStats};
use nck_bench::{aggregate, collect_obs, downsample, latency_series, try_run_specs_with, SEED};
use nck_obs::{MetricsSnapshot, Obs, PhaseTotals, Series};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Serializes the corpus-level pipeline observations: throughput,
/// per-app latency percentiles, per-phase totals with their share of
/// the root phase, and the merged metrics snapshot.
fn pipeline_json(
    apps: usize,
    elapsed: std::time::Duration,
    phases: &PhaseTotals,
    metrics: &MetricsSnapshot,
    latency: &mut Series,
) -> Value {
    let wall_ms = elapsed.as_secs_f64() * 1e3;
    // Per-phase share of total per-app time, denominated in the "app"
    // root phase (every other path nests under it).
    let app_nanos = phases
        .iter()
        .find(|(path, _)| *path == "app")
        .map_or(0, |(_, t)| t.nanos);
    let phase_obj: BTreeMap<String, Value> = phases
        .iter()
        .map(|(path, t)| {
            (
                path.to_owned(),
                json!({
                    "total_ms": t.millis(),
                    "items": t.items,
                    "count": t.count,
                    "share": if app_nanos > 0 {
                        t.nanos as f64 / app_nanos as f64
                    } else {
                        0.0
                    },
                }),
            )
        })
        .collect();
    let counters: BTreeMap<String, Value> = metrics
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect();
    let gauges: BTreeMap<String, Value> = metrics
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), json!(v.value)))
        .collect();
    let histograms: BTreeMap<String, Value> = metrics
        .histograms
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                json!({
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean(),
                }),
            )
        })
        .collect();
    json!({
        "schema": 1,
        "seed": SEED,
        "apps": apps,
        "wall_ms": wall_ms,
        "ms_per_app": wall_ms / apps.max(1) as f64,
        "apps_per_sec": apps as f64 / elapsed.as_secs_f64().max(1e-9),
        "latency_us": {
            "count": latency.count(),
            "mean": latency.mean(),
            "p50": latency.percentile(50.0).unwrap_or(0),
            "p90": latency.percentile(90.0).unwrap_or(0),
            "p99": latency.percentile(99.0).unwrap_or(0),
            "max": latency.max().unwrap_or(0),
        },
        "phases": Value::Object(phase_obj),
        "metrics": {
            "counters": Value::Object(counters),
            "gauges": Value::Object(gauges),
            "histograms": Value::Object(histograms),
        },
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let passes: usize = args
        .iter()
        .position(|a| a == "--passes")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let specs = nck_appgen::profile::corpus(SEED);
    // The recorded throughput is the best of `passes` full corpus runs:
    // the number of interest is the pipeline's capability, not the noise
    // floor of a shared host. Reports and phase observations come from
    // the fastest pass (every pass produces identical reports — the
    // determinism suite enforces that).
    let mut best = None;
    for _ in 0..passes {
        let start = std::time::Instant::now();
        let outcome = try_run_specs_with(&specs, CheckerConfig::default(), &Obs::enabled());
        let elapsed = start.elapsed();
        if best
            .as_ref()
            .is_none_or(|(prev, _): &(std::time::Duration, _)| elapsed < *prev)
        {
            best = Some((elapsed, outcome));
        }
    }
    let (elapsed, outcome) = best.expect("at least one pass");
    for f in &outcome.failures {
        eprintln!("FAILED {f}");
    }
    let failed = outcome.failures.len();
    let degraded = outcome.degraded_count();
    let reports = outcome.into_succeeded();
    let stats = aggregate(&reports);
    let (phases, metrics) = collect_obs(&reports);

    println!("=== NChecker full evaluation (seed {SEED}) ===");
    println!(
        "analyzed {} apps in {:.2?} ({:.0} ms/app, best of {passes} passes)",
        stats.len(),
        elapsed,
        elapsed.as_millis() as f64 / stats.len() as f64
    );
    println!("faults: {failed} apps failed, {degraded} analyzed degraded\n");

    println!(
        "Headline (Section 5.2): {} NPDs in {} of {} apps",
        stats.total_defects(),
        stats.buggy_apps(),
        stats.len()
    );
    println!();

    println!("--- Table 6 ---");
    for row in stats.table6() {
        println!(
            "{:<30} {:>6}/{:<6} ({:.0}%)",
            row.cause,
            row.buggy,
            row.evaluated,
            row.percent()
        );
    }
    println!();

    println!("--- Table 8 ---");
    for row in stats.table8() {
        println!(
            "{:<30} {:>4.0}%   (default-caused {:.0}%)",
            row.behaviour,
            row.apps as f64 / row.population.max(1) as f64 * 100.0,
            row.default_caused_percent
        );
    }
    println!();

    println!("--- Figure 8 (10-quantile summary) ---");
    let conn = CorpusStats::cdf(&stats.conn_miss_ratios());
    let to = CorpusStats::cdf(&stats.timeout_miss_ratios());
    println!(
        "conn:    {:?}",
        downsample(&conn, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "timeout: {:?}",
        downsample(&to, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!();

    println!("--- Figure 9 (10-quantile summary) ---");
    let nf = CorpusStats::cdf(&stats.notification_miss_ratios());
    println!(
        "notif:   {:?}",
        downsample(&nf, 10)
            .iter()
            .map(|(x, _)| format!("{x:.2}"))
            .collect::<Vec<_>>()
    );
    println!();

    println!("--- Section 5.2 extras ---");
    println!(
        "custom retry apps: {:.0}%   error types ignored: {:.0}%   responses unchecked: {:.0}%",
        stats.custom_retry_rate() * 100.0,
        stats.error_type_ignored_rate() * 100.0,
        stats.response_miss_rate() * 100.0
    );
    let (e, i) = stats.notification_by_callback_kind();
    println!(
        "notified requests: explicit callbacks {:.0}% vs implicit {:.0}%",
        e * 100.0,
        i * 100.0
    );
    println!();

    println!("--- Pipeline phases (corpus totals) ---");
    for (path, t) in phases.iter() {
        println!(
            "{path:<40} {:>10.3} ms  ({} spans, {} items)",
            t.millis(),
            t.count,
            t.items
        );
    }
    let mut latency = latency_series(&reports);
    if let (Some(p50), Some(p90), Some(p99)) = (
        latency.percentile(50.0),
        latency.percentile(90.0),
        latency.percentile(99.0),
    ) {
        println!("\nper-app latency: p50 {p50} µs, p90 {p90} µs, p99 {p99} µs");
    }

    let mut doc = pipeline_json(reports.len(), elapsed, &phases, &metrics, &mut latency);
    // Merge-preserve the sections other benches own (`hotpath`,
    // `targeted`, `store_scale`): the regression gate reads one
    // combined document.
    let recorded: Option<Value> = std::fs::read_to_string("BENCH_pipeline.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    if let (Some(Value::Object(old)), Value::Object(new)) = (recorded, &mut doc) {
        for key in ["hotpath", "targeted", "store_scale"] {
            if let Some(section) = old.get(key) {
                new.insert(key.to_owned(), section.clone());
            }
        }
    }
    let out = serde_json::to_string_pretty(&doc).expect("pipeline doc serializes");
    std::fs::write("BENCH_pipeline.json", out).expect("write BENCH_pipeline.json");
    println!("\nwrote BENCH_pipeline.json");
    if failed > 0 {
        std::process::exit(1);
    }
}
