//! Regenerates Table 10: the real-world NPDs used in the user study and
//! their correct fixes.

use nck_userstudy::TASKS;

fn main() {
    println!("Table 10: Real world app NPDs used in the user study");
    println!("{:-<110}", "");
    println!("{:<34} Correct fix", "Name (NPD)");
    for t in TASKS {
        println!("{:<34} {}", t.name, t.correct_fix);
    }
}
