//! Targeted-mode benchmark: full vs demand-driven analysis over a
//! clean-heavy corpus (the app-store mix: most apps never touch a
//! network library), recorded under the `"targeted"` key of
//! `BENCH_pipeline.json`.
//!
//! Three passes:
//!
//! 1. **Differential gate** (always): every app is analyzed in both
//!    modes with observability off; the rendered reports must be
//!    byte-identical or the bench exits non-zero. A throughput number
//!    for a mode that changes answers is worthless.
//! 2. **Timing**: best-of-`--iters` wall-clock corpus passes per mode
//!    (generation excluded), yielding `apps_per_sec` and the speedup.
//! 3. **Metered**: one targeted pass with metrics on, summing the
//!    `targeted.*` counters into the prescan skip rate and the fraction
//!    of methods actually lifted.
//!
//! Modes: default measures and merges into the bench document
//! (`--write-to FILE` overrides the path); `--smoke` runs a small
//! corpus and never writes — still a real differential gate, but the
//! regression verdict moved to `bench_gate`, which diffs the measured
//! document against the committed `BENCH_baseline.json` tolerances.

use nchecker::{app_report_to_json, AppReport, CheckerConfig, NChecker};
use nck_bench::SEED;
use nck_obs::{Events, Metrics, Obs, Tracer};
use serde_json::{json, Value};
use std::time::Instant;

fn render(r: &AppReport) -> String {
    serde_json::to_string(&app_report_to_json(r)).expect("report renders")
}

fn checker(targeted: bool) -> NChecker {
    NChecker::with_config(CheckerConfig {
        targeted,
        ..CheckerConfig::default()
    })
}

/// Analysis-only wall time over pre-generated bundles, in seconds.
fn timed_pass(items: &[(String, Vec<u8>)], checker: &NChecker) -> f64 {
    let t0 = Instant::now();
    for (key, bytes) in items {
        checker
            .analyze_bytes_checked(bytes)
            .unwrap_or_else(|e| panic!("{key}: {e}"));
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write = !smoke && !args.iter().any(|a| a == "--no-write");
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let iters: usize = get("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let size: usize = get("--size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 100 });
    let clean_frac: f64 = get("--clean-frac")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.7);
    let path = get("--write-to")
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json");

    let specs = nck_appgen::profile::clean_corpus(SEED, size, clean_frac);
    let items: Vec<(String, Vec<u8>)> = specs
        .iter()
        .map(|s| (s.package.clone(), nck_appgen::generate(s).to_bytes()))
        .collect();
    let clean_apps = specs.iter().filter(|s| s.requests.is_empty()).count();

    let full = checker(false);
    let targeted = checker(true);

    // Differential gate: the two modes must agree byte-for-byte before
    // any throughput number means anything.
    let mut mismatches = 0usize;
    for (key, bytes) in &items {
        let f = full.analyze_bytes_checked(bytes).expect("full analyzes");
        let t = targeted
            .analyze_bytes_checked(bytes)
            .expect("targeted analyzes");
        if render(&f) != render(&t) {
            eprintln!("DIFF {key}: targeted report diverges from full");
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!(
            "differential gate FAILED: {mismatches}/{} apps diverged",
            items.len()
        );
        std::process::exit(1);
    }

    // Timing: best pass per mode.
    let best = |c: &NChecker| {
        (0..iters)
            .map(|_| timed_pass(&items, c))
            .fold(f64::INFINITY, f64::min)
    };
    let full_s = best(&full);
    let targeted_s = best(&targeted);
    let full_aps = items.len() as f64 / full_s.max(1e-9);
    let targeted_aps = items.len() as f64 / targeted_s.max(1e-9);
    let speedup = targeted_aps / full_aps.max(1e-9);

    // Metered targeted pass: prescan skip rate and lifted-method
    // fraction from the `targeted.*` counters.
    let mut metered = checker(true);
    metered.obs = Obs {
        tracer: Tracer::disabled(),
        metrics: Metrics::enabled(),
        events: Events::silent(),
    };
    let (mut skipped, mut methods_total, mut methods_lifted) = (0u64, 0u64, 0u64);
    for (key, bytes) in &items {
        let r = metered
            .analyze_bytes_checked(bytes)
            .unwrap_or_else(|e| panic!("{key}: {e}"));
        let snap = r.metrics.as_ref().expect("metered run snapshots");
        let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        skipped += c("targeted.prescan_skipped");
        methods_total += c("targeted.methods_total");
        methods_lifted += c("targeted.methods_lifted");
    }
    let skip_rate = skipped as f64 / items.len() as f64;
    let lifted_frac = methods_lifted as f64 / methods_total.max(1) as f64;

    println!(
        "=== targeted bench (seed {SEED}, {} apps, {clean_apps} no-network) ===",
        items.len()
    );
    println!("full:      {full_aps:.1} apps/s  (best of {iters} passes)");
    println!("targeted:  {targeted_aps:.1} apps/s  ({speedup:.1}x)");
    println!(
        "prescan:   {skipped}/{} apps skipped ({:.0}%)",
        items.len(),
        skip_rate * 100.0
    );
    println!(
        "lifted:    {methods_lifted}/{methods_total} methods ({:.1}%)",
        lifted_frac * 100.0
    );
    println!(
        "diff gate: {} apps byte-identical across modes",
        items.len()
    );

    if smoke {
        println!("smoke: measured only; run bench_gate for the regression verdict");
        return;
    }

    if write {
        let recorded: Option<Value> = std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
        let mut doc = recorded.unwrap_or_else(|| json!({ "schema": 1, "seed": SEED }));
        let section = json!({
            "corpus_size": items.len(),
            "clean_frac": clean_frac,
            "passes": iters,
            "full_apps_per_sec": full_aps,
            "apps_per_sec": targeted_aps,
            "speedup": speedup,
            "prescan_skip_rate": skip_rate,
            "methods_total": methods_total,
            "methods_lifted": methods_lifted,
            "lifted_frac": lifted_frac,
        });
        if let Value::Object(map) = &mut doc {
            map.insert("targeted".to_owned(), section);
        }
        let out = serde_json::to_string_pretty(&doc).expect("doc serializes");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("merged \"targeted\" into {path}");
    }
}
