//! Regenerates Table 5: the four API misuse patterns NChecker detects.

fn main() {
    println!("Table 5: API misuse patterns and examples");
    println!("{:-<130}", "");
    print!("{}", nck_netlibs::render_table5());
}
