//! Regenerates Table 9: NChecker's accuracy on the 16 open-source apps
//! (correct warnings, false positives, known false negatives).

use nck_appgen::opensource::{evaluate_accuracy, Table9Row};

fn main() {
    let table = evaluate_accuracy();
    println!("Table 9: NChecker results on the 16 open-source apps");
    println!("{:-<72}", "");
    println!(
        "{:<32} {:>16} {:>8} {:>12}",
        "NPD cause", "# Correct warning", "# FP", "# Known FN"
    );
    let mut totals = (0usize, 0usize, 0usize);
    for row in Table9Row::ALL {
        let acc = table[&row];
        println!(
            "{:<32} {:>16} {:>8} {:>12}",
            row.label(),
            acc.correct,
            acc.fp,
            acc.known_fn
        );
        totals.0 += acc.correct;
        totals.1 += acc.fp;
        totals.2 += acc.known_fn;
    }
    println!("{:-<72}", "");
    println!(
        "{:<32} {:>16} {:>8} {:>12}",
        "Total", totals.0, totals.1, totals.2
    );
    println!(
        "\nAccuracy: {:.1}% (paper reports 94+%)",
        totals.0 as f64 / (totals.0 + totals.1) as f64 * 100.0
    );
}
