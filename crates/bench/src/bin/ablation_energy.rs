//! Ablation: the energy cost of over-retry (Figure 2's Telegram loop).
//!
//! Quantifies, with the 3G radio model, why NChecker flags aggressive
//! retry: a 500 ms reconnect loop vs exponential backoff vs a single
//! attempt over a one-minute outage.

use nck_netsim::{backoff_retry_energy, energy_mj, periodic_retry_energy, Activity, RadioModel};

fn main() {
    let radio = RadioModel::three_g();
    let window = 60_000.0; // One minute of outage.
    let attempt = 200.0; // Each connect attempt keeps the radio up 200 ms.

    let telegram = periodic_retry_energy(&radio, 500.0, attempt, window);
    let five_s = periodic_retry_energy(&radio, 5_000.0, attempt, window);
    let backoff = backoff_retry_energy(&radio, 1_000.0, 32_000.0, attempt, window);
    let single = energy_mj(
        &radio,
        &[Activity {
            start_ms: 0.0,
            active_ms: attempt,
        }],
        window,
    );
    let idle = energy_mj(&radio, &[], window);

    println!("Ablation: retry policy energy over a 60 s outage (3G radio model)");
    println!("{:-<64}", "");
    println!("{:<38} {:>12}", "strategy", "energy (mJ)");
    println!(
        "{:<38} {:>12.0}",
        "retry every 500 ms (Figure 2 bug)", telegram
    );
    println!("{:<38} {:>12.0}", "retry every 5 s", five_s);
    println!(
        "{:<38} {:>12.0}",
        "exponential backoff 1 s -> 32 s", backoff
    );
    println!("{:<38} {:>12.0}", "single attempt", single);
    println!("{:<38} {:>12.0}", "radio idle (floor)", idle);
    println!(
        "\nThe 500 ms loop costs {:.0}x the backoff policy: the defect class\n\
         NChecker's over-retry check exists to catch.",
        telegram / backoff
    );
}
