//! Regenerates Table 6: percentage of buggy apps detected by NChecker,
//! categorized by NPD cause, over the full 285-app corpus.

use nck_bench::{aggregate, run_corpus, SEED};

fn main() {
    let reports = run_corpus(SEED);
    let stats = aggregate(&reports);
    println!("Table 6: Percent of buggy apps detected by NChecker by NPD cause");
    println!("{:-<100}", "");
    println!(
        "{:<30} {:<38} {:>10} {:>16}",
        "NPD cause", "Eval. condition", "# Eval.", "# Buggy (%)"
    );
    for row in stats.table6() {
        println!(
            "{:<30} {:<38} {:>10} {:>10} ({:.0}%)",
            row.cause,
            row.condition,
            row.evaluated,
            row.buggy,
            row.percent()
        );
    }
    println!();
    println!(
        "Headline: {} NPDs detected in {} of {} apps ({} custom-retry apps: {:.0}%)",
        stats.total_defects(),
        stats.buggy_apps(),
        stats.len(),
        (stats.custom_retry_rate() * stats.len() as f64).round(),
        stats.custom_retry_rate() * 100.0
    );
    println!(
        "Error callbacks ignoring typed errors: {:.0}%  |  responses missing checks: {:.0}%",
        stats.error_type_ignored_rate() * 100.0,
        stats.response_miss_rate() * 100.0
    );
    let (explicit, implicit) = stats.notification_by_callback_kind();
    println!(
        "Failure notifications: {:.0}% of requests with explicit error callbacks vs {:.0}% without",
        explicit * 100.0,
        implicit * 100.0
    );
}
