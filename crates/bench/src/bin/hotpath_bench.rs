//! Hot-path benchmark: corpus throughput, single-app latency
//! percentiles, and solver throughput (ns per statement), recorded under
//! the `"hotpath"` key of `BENCH_pipeline.json`.
//!
//! Modes:
//!
//! - default: measure everything (best of `--iters` passes, default 3)
//!   and merge the results into the bench document (`--write-to FILE`
//!   overrides the path, `--no-write` skips the merge);
//! - `--smoke`: one measuring pass, no write — a quick signal run.
//!   Regression verdicts live in `bench_gate`, which diffs the measured
//!   document against the committed `BENCH_baseline.json` tolerances;
//!   this bench only measures.

use nchecker::{CheckerConfig, NChecker};
use nck_android::apk::Apk;
use nck_bench::SEED;
use nck_dataflow::liveness::Liveness;
use nck_dataflow::{ConstProp, ReachingDefs};
use nck_ir::cfg::Cfg;
use nck_obs::Series;
use serde_json::{json, Value};
use std::time::Instant;

struct Pass {
    wall_s: f64,
    latencies_us: Series,
}

/// One full corpus pass: generation plus analysis, per-app analysis
/// latency recorded separately (generation is harness cost, not
/// pipeline latency).
fn corpus_pass(specs: &[nck_appgen::spec::AppSpec], checker: &NChecker) -> Pass {
    let start = Instant::now();
    let mut latencies_us = Series::new();
    for spec in specs {
        let bytes = nck_appgen::generate(spec).to_bytes();
        let t0 = Instant::now();
        checker
            .analyze_bytes_checked(&bytes)
            .expect("corpus app analyzes");
        latencies_us.push(t0.elapsed().as_micros() as u64);
    }
    Pass {
        wall_s: start.elapsed().as_secs_f64(),
        latencies_us,
    }
}

/// Times one intra-method analysis over every body of the corpus,
/// returning (total ns, total statements solved).
fn solver_sweep(
    programs: &[nck_ir::Program],
    mut run: impl FnMut(&nck_ir::body::Body, &Cfg),
) -> (f64, u64) {
    let mut stmts = 0u64;
    let t0 = Instant::now();
    for p in programs {
        for m in &p.methods {
            let Some(body) = m.body.as_ref() else {
                continue;
            };
            let cfg = Cfg::build(body);
            run(body, &cfg);
            stmts += body.len() as u64;
        }
    }
    (t0.elapsed().as_secs_f64() * 1e9, stmts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write = !smoke && !args.iter().any(|a| a == "--no-write");
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let iters: usize = get("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let path = get("--write-to")
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json");

    let specs = nck_appgen::profile::corpus(SEED);
    let checker = NChecker::with_config(CheckerConfig::default());

    // Corpus throughput and per-app latency: best pass wins (the metric
    // is the pipeline's capability, not the noise floor of the host).
    let mut best: Option<Pass> = None;
    for _ in 0..iters {
        let pass = corpus_pass(&specs, &checker);
        if best.as_ref().is_none_or(|b| pass.wall_s < b.wall_s) {
            best = Some(pass);
        }
    }
    let mut best = best.expect("at least one pass");
    let apps_per_sec = specs.len() as f64 / best.wall_s.max(1e-9);
    let pct = |lat: &mut Series, p: f64| lat.percentile(p).unwrap_or(0);
    let (p50, p90, p99) = (
        pct(&mut best.latencies_us, 50.0),
        pct(&mut best.latencies_us, 90.0),
        pct(&mut best.latencies_us, 99.0),
    );

    // Solver throughput: lift every corpus app once, then time the three
    // statement-level engines over all 4.8k bodies.
    let programs: Vec<nck_ir::Program> = specs
        .iter()
        .map(|s| {
            let bytes = nck_appgen::generate(s).to_bytes();
            let apk = Apk::from_bytes(&bytes).expect("corpus app parses");
            nck_ir::lift_file(&apk.adx).expect("corpus app lifts")
        })
        .collect();
    let (rd_ns, stmts) = solver_sweep(&programs, |b, c| {
        let _ = ReachingDefs::compute(b, c);
    });
    let (cp_ns, _) = solver_sweep(&programs, |b, c| {
        let _ = ConstProp::compute(b, c);
    });
    let (lv_ns, _) = solver_sweep(&programs, |b, c| {
        let _ = Liveness::compute(b, c);
    });
    let per = |ns: f64| ns / stmts.max(1) as f64;

    println!("=== hotpath bench (seed {SEED}, {} apps) ===", specs.len());
    println!("apps_per_sec:       {apps_per_sec:.1}  (best of {iters} passes)");
    println!("latency p50/p90/p99: {p50} / {p90} / {p99} us");
    println!(
        "solver ns/stmt:     reachdefs {:.0}  constprop {:.0}  liveness {:.0}  ({} stmts)",
        per(rd_ns),
        per(cp_ns),
        per(lv_ns),
        stmts
    );
    if smoke {
        println!("smoke: measured only; run bench_gate for the regression verdict");
        return;
    }

    if write {
        let recorded: Option<Value> = std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
        let mut doc = recorded.unwrap_or_else(|| json!({ "schema": 1, "seed": SEED }));
        let section = json!({
            "apps_per_sec": apps_per_sec,
            "passes": iters,
            "latency_us": { "p50": p50, "p90": p90, "p99": p99 },
            "solver_ns_per_stmt": {
                "reachdefs": per(rd_ns),
                "constprop": per(cp_ns),
                "liveness": per(lv_ns),
            },
            "stmts": stmts,
        });
        if let Value::Object(map) = &mut doc {
            map.insert("hotpath".to_owned(), section);
        }
        let out = serde_json::to_string_pretty(&doc).expect("doc serializes");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("merged \"hotpath\" into {path}");
    }
}
