//! Hot-path benchmark: corpus throughput, single-app latency
//! percentiles, and solver throughput (ns per statement), recorded under
//! the `"hotpath"` key of `BENCH_pipeline.json`.
//!
//! Modes:
//!
//! - default: measure everything (best of `--iters` passes, default 3)
//!   and merge the results into `BENCH_pipeline.json`;
//! - `--smoke`: one measuring pass, no write; exits non-zero when the
//!   measured corpus throughput regresses more than 30% against the
//!   recorded `hotpath.apps_per_sec` (falling back to the run_all
//!   top-level `apps_per_sec`). The tolerance is deliberately loose —
//!   CI machines are noisy — so only a structural regression trips it.

use nchecker::{CheckerConfig, NChecker};
use nck_android::apk::Apk;
use nck_bench::SEED;
use nck_dataflow::liveness::Liveness;
use nck_dataflow::{ConstProp, ReachingDefs};
use nck_ir::cfg::Cfg;
use serde_json::{json, Value};
use std::time::Instant;

/// Maximum tolerated throughput regression in `--smoke` mode.
const SMOKE_TOLERANCE: f64 = 0.30;

/// The `p`-th percentile of an unsorted sample, in microseconds.
fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Pass {
    wall_s: f64,
    latencies_us: Vec<f64>,
}

/// One full corpus pass: generation plus analysis, per-app analysis
/// latency recorded separately (generation is harness cost, not
/// pipeline latency).
fn corpus_pass(specs: &[nck_appgen::spec::AppSpec], checker: &NChecker) -> Pass {
    let start = Instant::now();
    let mut latencies_us = Vec::with_capacity(specs.len());
    for spec in specs {
        let bytes = nck_appgen::generate(spec).to_bytes();
        let t0 = Instant::now();
        checker
            .analyze_bytes_checked(&bytes)
            .expect("corpus app analyzes");
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    Pass {
        wall_s: start.elapsed().as_secs_f64(),
        latencies_us,
    }
}

/// Times one intra-method analysis over every body of the corpus,
/// returning (total ns, total statements solved).
fn solver_sweep(
    programs: &[nck_ir::Program],
    mut run: impl FnMut(&nck_ir::body::Body, &Cfg),
) -> (f64, u64) {
    let mut stmts = 0u64;
    let t0 = Instant::now();
    for p in programs {
        for m in &p.methods {
            let Some(body) = m.body.as_ref() else {
                continue;
            };
            let cfg = Cfg::build(body);
            run(body, &cfg);
            stmts += body.len() as u64;
        }
    }
    (t0.elapsed().as_secs_f64() * 1e9, stmts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let write = !smoke && !args.iter().any(|a| a == "--no-write");
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });

    let specs = nck_appgen::profile::corpus(SEED);
    let checker = NChecker::with_config(CheckerConfig::default());

    // Corpus throughput and per-app latency: best pass wins (the metric
    // is the pipeline's capability, not the noise floor of the host).
    let mut best: Option<Pass> = None;
    for _ in 0..iters {
        let pass = corpus_pass(&specs, &checker);
        if best.as_ref().is_none_or(|b| pass.wall_s < b.wall_s) {
            best = Some(pass);
        }
    }
    let best = best.expect("at least one pass");
    let apps_per_sec = specs.len() as f64 / best.wall_s.max(1e-9);
    let mut lat = best.latencies_us.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p90, p99) = (
        percentile_us(&lat, 50.0),
        percentile_us(&lat, 90.0),
        percentile_us(&lat, 99.0),
    );

    // Solver throughput: lift every corpus app once, then time the three
    // statement-level engines over all 4.8k bodies.
    let programs: Vec<nck_ir::Program> = specs
        .iter()
        .map(|s| {
            let bytes = nck_appgen::generate(s).to_bytes();
            let apk = Apk::from_bytes(&bytes).expect("corpus app parses");
            nck_ir::lift_file(&apk.adx).expect("corpus app lifts")
        })
        .collect();
    let (rd_ns, stmts) = solver_sweep(&programs, |b, c| {
        let _ = ReachingDefs::compute(b, c);
    });
    let (cp_ns, _) = solver_sweep(&programs, |b, c| {
        let _ = ConstProp::compute(b, c);
    });
    let (lv_ns, _) = solver_sweep(&programs, |b, c| {
        let _ = Liveness::compute(b, c);
    });
    let per = |ns: f64| ns / stmts.max(1) as f64;

    println!("=== hotpath bench (seed {SEED}, {} apps) ===", specs.len());
    println!("apps_per_sec:       {apps_per_sec:.1}  (best of {iters} passes)");
    println!("latency p50/p90/p99: {p50:.0} / {p90:.0} / {p99:.0} us");
    println!(
        "solver ns/stmt:     reachdefs {:.0}  constprop {:.0}  liveness {:.0}  ({} stmts)",
        per(rd_ns),
        per(cp_ns),
        per(lv_ns),
        stmts
    );

    let path = "BENCH_pipeline.json";
    let recorded: Option<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());

    if smoke {
        let reference = recorded
            .as_ref()
            .and_then(|d| {
                d.get("hotpath")
                    .and_then(|h| h.get("apps_per_sec"))
                    .or_else(|| d.get("apps_per_sec"))
            })
            .and_then(Value::as_f64);
        match reference {
            Some(want) => {
                let floor = want * (1.0 - SMOKE_TOLERANCE);
                println!("smoke: recorded {want:.1} apps/s, floor {floor:.1} (tolerance 30%)");
                if apps_per_sec < floor {
                    eprintln!(
                        "smoke FAILED: {apps_per_sec:.1} apps/s is below the {floor:.1} floor"
                    );
                    std::process::exit(1);
                }
                println!("smoke OK");
            }
            None => println!("smoke: no recorded baseline in {path}; nothing to compare"),
        }
        // Baseline-shape guard for the targeted section when recorded:
        // a merged "targeted" entry must describe a mode that actually
        // pays off (throughput re-measurement lives in `targeted_bench
        // --smoke`; this catches a bad baseline write).
        if let Some(t) = recorded.as_ref().and_then(|d| d.get("targeted")) {
            let num = |k: &str| t.get(k).and_then(Value::as_f64);
            let (speedup, lifted) = (num("speedup"), num("lifted_frac"));
            match (speedup, lifted) {
                (Some(s), Some(l)) if s >= 3.0 && l < 0.30 => {
                    println!(
                        "smoke: targeted baseline OK ({s:.1}x, {:.1}% lifted)",
                        l * 100.0
                    );
                }
                _ => {
                    eprintln!(
                        "smoke FAILED: recorded targeted baseline out of spec \
                         (speedup {speedup:?}, lifted_frac {lifted:?}; need >=3x and <30%)"
                    );
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    if write {
        let mut doc = recorded.unwrap_or_else(|| json!({ "schema": 1, "seed": SEED }));
        let section = json!({
            "apps_per_sec": apps_per_sec,
            "passes": iters,
            "latency_us": { "p50": p50, "p90": p90, "p99": p99 },
            "solver_ns_per_stmt": {
                "reachdefs": per(rd_ns),
                "constprop": per(cp_ns),
                "liveness": per(lv_ns),
            },
            "stmts": stmts,
        });
        if let Value::Object(map) = &mut doc {
            map.insert("hotpath".to_owned(), section);
        }
        let out = serde_json::to_string_pretty(&doc).expect("doc serializes");
        std::fs::write(path, out).expect("write BENCH_pipeline.json");
        println!("merged \"hotpath\" into {path}");
    }
}
