//! Incremental re-analysis benchmark: cold vs. warm wall time on a
//! corpus of *updated* app bundles.
//!
//! For each app we generate version 1 (request classes padded with
//! ballast classes, as in real apps where networking code is a sliver of
//! the bundle), evolve ~one request into version 2 (so only a small
//! fraction of classes change, at the file tail), and compare:
//!
//! - **cold**: a fresh service analyzes every v2 bundle from scratch;
//! - **warm**: a service that has already analyzed v1 re-analyzes v2,
//!   replaying unchanged class prefixes from its cache;
//! - **hot**: the warm service sees the identical v2 bytes again —
//!   whole-report hits.
//!
//! Warm and cold reports are checked byte-identical before any number is
//! reported. Results merge into `BENCH_pipeline.json` under
//! `"incremental"`.
//!
//! Usage: `incremental_bench [--apps N] [--bulk K] [--reps R] [--no-write]`

use nchecker::app_report_to_json;
use nck_bench::SEED;
use nck_obs::Obs;
use nck_svc::{AnalysisService, AppOutcome, ServiceOptions};
use serde_json::{json, Value};
use std::time::Instant;

fn render(outcome: &AppOutcome) -> String {
    let report = outcome
        .report
        .as_ref()
        .expect("benchmark corpus apps analyze cleanly");
    serde_json::to_string(&app_report_to_json(report)).expect("report renders")
}

fn service() -> AnalysisService {
    AnalysisService::new(ServiceOptions::default(), Obs::disabled())
}

fn arg_after(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps = arg_after(&args, "--apps", 120);
    let bulk = arg_after(&args, "--bulk", 20);
    let write = !args.iter().any(|a| a == "--no-write");

    let specs: Vec<_> = nck_appgen::profile::corpus(SEED)
        .into_iter()
        .take(apps)
        .collect();

    println!("=== incremental re-analysis (seed {SEED}, {apps} apps, bulk {bulk}) ===");
    let v1: Vec<(String, Vec<u8>)> = specs
        .iter()
        .map(|s| {
            (
                s.package.clone(),
                nck_appgen::generate_with_bulk(s, bulk).to_bytes(),
            )
        })
        .collect();
    // ~One request changes per app; every ballast class and every class
    // before the edited request survives into v2 unchanged.
    let mut changed_classes = 0usize;
    let mut total_classes = 0usize;
    let v2: Vec<(String, Vec<u8>)> = specs
        .iter()
        .map(|s| {
            let e = nck_appgen::evolve(s, 0.05, SEED ^ 0x5eed);
            let bytes = nck_appgen::generate_with_bulk(&e.spec, bulk).to_bytes();
            (s.package.clone(), bytes)
        })
        .collect();
    for ((_, a), (_, b)) in v1.iter().zip(&v2) {
        // True churn: v2 classes whose content exists nowhere in v1.
        let mut have = std::collections::HashMap::new();
        for fp in fingerprints(a) {
            *have.entry(fp).or_insert(0usize) += 1;
        }
        for fp in fingerprints(b) {
            total_classes += 1;
            match have.get_mut(&fp) {
                Some(n) if *n > 0 => *n -= 1,
                _ => changed_classes += 1,
            }
        }
    }
    println!(
        "update churn: {changed_classes}/{total_classes} classes changed ({:.1}%)",
        changed_classes as f64 / total_classes.max(1) as f64 * 100.0
    );

    // Each configuration repeats `reps` times and reports the minimum:
    // on a shared machine the minimum is the least-noise estimate of the
    // true cost, and the analysis is deterministic so every repetition
    // does identical work.
    let reps = arg_after(&args, "--reps", 3).max(1);

    // Cold: fresh service, v2 from scratch.
    let mut cold_ms = f64::INFINITY;
    let mut cold_renders: Vec<String> = Vec::new();
    for _ in 0..reps {
        let svc = service();
        let t = Instant::now();
        let out = svc.analyze_batch(&v2);
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        if cold_renders.is_empty() {
            cold_renders = out.iter().map(render).collect();
        }
    }

    // Warm: populate with v1 (untimed), then re-analyze the updates.
    let mut warm_ms = f64::INFINITY;
    let mut warm_renders: Vec<String> = Vec::new();
    let mut warm_stats = Default::default();
    let mut warm_svc = None;
    for _ in 0..reps {
        // Drop the previous repetition's populated store before building
        // the next one, so each repetition runs at the same footprint.
        drop(warm_svc.take());
        let svc = service();
        let _ = svc.analyze_batch(&v1);
        let t = Instant::now();
        let out = svc.analyze_batch(&v2);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        if warm_renders.is_empty() {
            warm_renders = out.iter().map(render).collect();
            warm_stats = AnalysisService::batch_stats(&out);
        }
        warm_svc = Some(svc);
    }
    let warm_svc = warm_svc.expect("at least one warm repetition");

    // Hot: identical bytes again — whole-report hits.
    let mut hot_ms = f64::INFINITY;
    let mut hot_renders: Vec<String> = Vec::new();
    let mut hot_stats = Default::default();
    for _ in 0..reps {
        let t = Instant::now();
        let out = warm_svc.analyze_batch(&v2);
        hot_ms = hot_ms.min(t.elapsed().as_secs_f64() * 1e3);
        if hot_renders.is_empty() {
            hot_renders = out.iter().map(render).collect();
            hot_stats = AnalysisService::batch_stats(&out);
        }
    }

    // Correctness gate before any number is believed.
    let mut mismatches = 0usize;
    for ((c, w), h) in cold_renders.iter().zip(&warm_renders).zip(&hot_renders) {
        if c != w || c != h {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("FAILED: {mismatches} warm/hot reports differ from cold");
        std::process::exit(1);
    }
    println!(
        "reports: warm and hot byte-identical to cold ({} apps)",
        apps
    );

    let speedup = cold_ms / warm_ms.max(1e-9);
    println!(
        "cold:  {cold_ms:>9.1} ms  ({:.1} ms/app)",
        cold_ms / apps as f64
    );
    println!(
        "warm:  {warm_ms:>9.1} ms  ({:.1} ms/app)  {speedup:.2}x vs cold, {:.0}% classes replayed",
        warm_ms / apps as f64,
        warm_stats.class_reuse_rate() * 100.0
    );
    println!(
        "hot:   {hot_ms:>9.1} ms  ({:.1} ms/app)  {:.2}x vs cold, {:.0}% whole-report hits",
        hot_ms / apps as f64,
        cold_ms / hot_ms.max(1e-9),
        hot_stats.hit_rate() * 100.0
    );

    if write {
        let section = json!({
            "apps": apps,
            "bulk_classes": bulk,
            "changed_classes": changed_classes,
            "total_classes": total_classes,
            "cold_ms": cold_ms,
            "warm_ms": warm_ms,
            "hot_ms": hot_ms,
            "warm_speedup": speedup,
            "hot_speedup": cold_ms / hot_ms.max(1e-9),
            "warm_class_reuse": warm_stats.class_reuse_rate(),
            "hot_hit_rate": hot_stats.hit_rate(),
            "reports_identical": true,
        });
        let mut doc = std::fs::read_to_string("BENCH_pipeline.json")
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok())
            .unwrap_or_else(|| json!({ "schema": 1, "seed": SEED }));
        if let Value::Object(map) = &mut doc {
            map.insert("incremental".to_owned(), section);
        }
        let out = serde_json::to_string_pretty(&doc).expect("pipeline doc serializes");
        std::fs::write("BENCH_pipeline.json", out).expect("write BENCH_pipeline.json");
        println!("merged \"incremental\" into BENCH_pipeline.json");
    }
}

/// Canonical per-class content fingerprints of a serialized bundle (for
/// the churn report only; the analyzer recomputes its own).
fn fingerprints(bytes: &[u8]) -> Vec<u64> {
    let apk = nck_android::apk::Apk::from_bytes(bytes).expect("benchmark bundle parses");
    nck_dex::class_fingerprints(&apk.adx)
}
