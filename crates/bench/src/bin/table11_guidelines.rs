//! Regenerates Table 11: design guidelines for mobile network libraries.

fn main() {
    println!("Table 11: Observations and derived library design guidelines");
    println!("{:-<130}", "");
    print!("{}", nck_study::render_table11());
}
