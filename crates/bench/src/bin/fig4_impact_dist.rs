//! Regenerates Figure 4: distribution of NPD impact on user experience.

use nck_bench::bar;
use nck_study::{impact_distribution, study_npds};

fn main() {
    let npds = study_npds();
    println!(
        "Figure 4: Distribution of NPD impact on user experience (n = {})",
        npds.len()
    );
    println!("{:-<60}", "");
    for (label, n, pct) in impact_distribution(&npds) {
        println!(
            "{:<16} {:>3.0}% |{}| ({n})",
            label,
            pct,
            bar(pct / 100.0, 30)
        );
    }
}
