//! Regenerates Table 2: representative NPDs found in real-world apps.

use nck_study::study_npds;

fn main() {
    println!("Table 2: Representative NPDs found in real world mobile apps");
    println!("{:-<110}", "");
    println!(
        "{:<6} {:<15} {:<14} {:<50} Developer's resolution",
        "ID", "Category", "App", "NPD description"
    );
    for (i, npd) in study_npds()
        .iter()
        .filter(|n| n.description.is_some())
        .enumerate()
    {
        println!(
            "({:<4} {:<15} {:<14} {:<50} {}",
            format!("{})", ["i", "ii", "iii", "iv", "v", "vi"][i]),
            npd.impact.label(),
            npd.app,
            npd.description.unwrap_or(""),
            npd.resolution.unwrap_or("")
        );
    }
}
