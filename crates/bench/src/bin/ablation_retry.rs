//! Ablation: the customized-retry identification rules of §4.5.
//!
//! Runs the checker over retry-loop-bearing apps with the loop detector
//! on and off, showing the false "missed retry" warnings that appear
//! when custom retry logic is not recognized, and the per-shape
//! contribution of the two exit-condition rules.

use nchecker::{CheckerConfig, DefectKind, NChecker};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec, RetryShape};
use nck_netlibs::library::Library;

fn main() {
    let shapes = [
        ("Figure 6(b) success-exit", RetryShape::SuccessExit),
        ("Figure 6(c) catch-condition", RetryShape::CatchCondition),
        (
            "Figure 6(d) interprocedural",
            RetryShape::InterprocCatchCondition,
        ),
    ];

    println!("Ablation: customized retry-loop identification (Section 4.5)");
    println!("{:-<78}", "");
    println!(
        "{:<30} {:>16} {:>16}",
        "loop shape", "detector ON", "detector OFF"
    );

    let on = NChecker::new();
    let off = NChecker::with_config(CheckerConfig {
        custom_retry: false,
        ..CheckerConfig::default()
    });

    for (label, shape) in shapes {
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.custom_retry = Some(shape);
        let spec = AppSpec::new("com.ablation.retry", vec![r]);
        let apk = nck_appgen::generate(&spec);
        let report_on = on.analyze_apk(&apk).unwrap();
        let report_off = off.analyze_apk(&apk).unwrap();
        let fmt = |rep: &nchecker::AppReport| {
            format!(
                "loops={} missedretry={}",
                rep.stats.custom_retry_loops,
                rep.count(DefectKind::MissedRetry)
            )
        };
        println!(
            "{:<30} {:>20} {:>20}",
            label,
            fmt(&report_on),
            fmt(&report_off)
        );
    }
    println!(
        "\nWithout the Section 4.5 rules every custom retry loop shows up as a false\n\
          'missed retry API' warning — the detector removes exactly those."
    );
}
