//! Regenerates Figure 9: CDF over apps of the ratio of user requests
//! missing failure notifications, among apps that notify at least once.

use nchecker::CorpusStats;
use nck_bench::{aggregate, downsample, print_series, run_corpus, SEED};

fn main() {
    let reports = run_corpus(SEED);
    let stats = aggregate(&reports);
    let cdf = CorpusStats::cdf(&stats.notification_miss_ratios());
    println!("Figure 9: CDF of per-app failure-notification miss ratios");
    println!("({} partially-notifying apps)", cdf.len());
    println!("{:-<40}", "");
    print_series(("miss ratio", "cum. frac"), &downsample(&cdf, 12));
}
