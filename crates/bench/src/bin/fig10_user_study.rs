//! Regenerates Figure 10: per-task fix times with 95% confidence
//! intervals from the simulated user study, plus the with/without-report
//! contrast (this reproduction's report-value ablation).

use nck_bench::{bar, SEED};
use nck_userstudy::simulate;

fn main() {
    let with = simulate(20, true, SEED);
    println!("Figure 10: user study fix times (20 volunteers, with NChecker reports)");
    println!("{:-<76}", "");
    for t in with.per_task.iter().chain(std::iter::once(&with.overall)) {
        println!(
            "{:<30} {:>5.2} ± {:.2} min |{}|",
            t.name,
            t.mean_minutes,
            t.ci95,
            bar(t.mean_minutes / 4.0, 24)
        );
    }
    println!(
        "\nPaper: overall 1.7 ± 0.14 minutes. (GPSLogger retried-exception task excluded: \
         most volunteers cannot name the retriable exception classes.)"
    );

    let without = simulate(20, false, SEED);
    println!(
        "\nAblation — without the NChecker report: overall {:.1} ± {:.1} min \
         ({}x slower), demonstrating the report's five fields do the work.",
        without.overall.mean_minutes,
        without.overall.ci95,
        (without.overall.mean_minutes / with.overall.mean_minutes).round()
    );
}
