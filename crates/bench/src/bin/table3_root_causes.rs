//! Regenerates Table 3: root causes of the 90 studied NPDs, with the
//! §2.3 subcause splits.

use nck_study::{cause_distribution, study_npds, subcause_counts};

fn main() {
    let npds = study_npds();
    println!("Table 3: Root causes of studied NPDs");
    println!("{:-<56}", "");
    println!("{:<36} {:>14}", "Root cause", "# Cases (%)");
    for (bucket, n, pct) in cause_distribution(&npds) {
        println!("{:<36} {:>8} ({:.0}%)", bucket, n, pct);
    }
    println!();
    println!("Subcauses (Section 2.3):");
    for (cause, n) in subcause_counts(&npds) {
        println!("  {:<34} {:>4}", format!("{cause:?}"), n);
    }
}
