//! Static vs. dynamic NPD detection — measuring the paper's §7 claims.
//!
//! The paper argues run-time tools (VanarSena, Caiipa) are "restricted
//! by the code coverage and run-time overhead", that "NPDs caused by
//! 'no timeout setting' require \[an\] additional timing fault model to be
//! triggered", and that non-crash defects "cannot be observed by the
//! dynamic tools". This binary runs three checkers over a defect suite
//! and tabulates which defect classes each detects:
//!
//! - **NChecker** (static, this repository's core);
//! - **VanarSena-mode dynamic**: fail-fast fault injection, crash
//!   reports only;
//! - **full dynamic**: adds the timing fault model (stalls) and
//!   non-crash observations.

use nchecker::{DefectKind, NChecker};
use nck_appgen::spec::{
    AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape,
};
use nck_dyntest::{DynConfig, DynFinding, DynamicChecker};
use nck_netlibs::library::Library;

/// One row of the comparison: a defect class and an app exhibiting it.
struct Case {
    label: &'static str,
    spec: AppSpec,
    /// The static defect kind that represents the class.
    static_kind: fn(&DefectKind) -> bool,
    /// The dynamic finding that would represent it.
    dyn_kind: DynFinding,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
    r.response = RespCheck::Unchecked;
    r.notification = Notification::Alert;
    r.set_timeout = true;
    out.push(Case {
        label: "unchecked response (crash)",
        spec: AppSpec::new("com.cmp.resp", vec![r]),
        static_kind: |k| matches!(k, DefectKind::MissedResponseCheck),
        dyn_kind: DynFinding::Crash,
    });

    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.set_timeout = false;
    r.notification = Notification::Alert;
    r.conn_check = ConnCheck::Guarding;
    r.set_retries = Some(1);
    out.push(Case {
        label: "missing timeout (hang)",
        spec: AppSpec::new("com.cmp.hang", vec![r]),
        static_kind: |k| matches!(k, DefectKind::MissedTimeout),
        dyn_kind: DynFinding::Hang,
    });

    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.notification = Notification::Missing;
    r.set_timeout = true;
    r.set_retries = Some(1);
    r.conn_check = ConnCheck::Guarding;
    out.push(Case {
        label: "silent failure (no UI message)",
        spec: AppSpec::new("com.cmp.silent", vec![r]),
        static_kind: |k| matches!(k, DefectKind::MissedFailureNotification),
        dyn_kind: DynFinding::SilentFailure,
    });

    let mut r = RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service);
    r.conn_check = ConnCheck::Guarding;
    r.set_timeout = true;
    out.push(Case {
        label: "over-retry in service (battery)",
        spec: AppSpec::new("com.cmp.retry", vec![r]),
        static_kind: |k| matches!(k, DefectKind::OverRetry { .. }),
        dyn_kind: DynFinding::ExcessiveRetry,
    });

    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::ActivityLifecycle);
    r.custom_retry = Some(RetryShape::SuccessExit);
    r.notification = Notification::Alert;
    r.set_timeout = true;
    r.set_retries = Some(1);
    r.conn_check = ConnCheck::Guarding;
    out.push(Case {
        label: "reconnect spin loop (Figure 2)",
        spec: AppSpec::new("com.cmp.spin", vec![r]),
        static_kind: |_| false, // Interval policy is beyond the static rules.
        dyn_kind: DynFinding::SpinLoop,
    });

    out
}

fn main() {
    let static_checker = NChecker::new();
    let vanarsena = DynamicChecker::new(DynConfig::vanarsena());
    let full = DynamicChecker::new(DynConfig::full());

    println!("Static vs dynamic detection by defect class (Section 7)");
    println!("{:-<86}", "");
    println!(
        "{:<34} {:>12} {:>18} {:>14}",
        "defect class", "NChecker", "VanarSena-style", "full dynamic"
    );

    let mark = |b: bool| if b { "yes" } else { "-" };
    for case in cases() {
        let apk = nck_appgen::generate(&case.spec);
        let s = static_checker.analyze_apk(&apk).unwrap();
        let static_hit = s.defects.iter().any(|d| (case.static_kind)(&d.kind));

        let vo = vanarsena.observe(&apk).unwrap();
        let v_hit = vanarsena
            .findings(&vo)
            .iter()
            .any(|&(k, _)| k == case.dyn_kind);

        let fo = full.observe(&apk).unwrap();
        let f_hit = full.findings(&fo).iter().any(|&(k, _)| k == case.dyn_kind);

        println!(
            "{:<34} {:>12} {:>18} {:>14}",
            case.label,
            mark(static_hit),
            mark(v_hit),
            mark(f_hit)
        );
    }

    println!();
    println!(
        "Reading: crash-only fault injection sees only the first row; the timing fault\n\
         model (stalls) is required for missing timeouts, and non-crash observations for\n\
         silent failures and retry storms — while the static checker sees all of them\n\
         without executing the app. The spin-loop row shows the complementary direction:\n\
         the dynamic checker catches the aggressive retry *interval*, which the static\n\
         rules do not reason about (the paper calls the approaches complementary)."
    );
}
