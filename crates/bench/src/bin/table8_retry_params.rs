//! Regenerates Table 8: ratio of apps with inappropriate retry
//! behaviours among those using retry-capable libraries.

use nck_bench::{aggregate, run_corpus, SEED};

fn main() {
    let reports = run_corpus(SEED);
    let stats = aggregate(&reports);
    println!("Table 8: Apps with inappropriate retry behaviours");
    println!("{:-<72}", "");
    println!(
        "{:<30} {:>10} {:>24}",
        "NPD cause", "Apps (%)", "Default behavior (%)"
    );
    for row in stats.table8() {
        println!(
            "{:<30} {:>9.0}% {:>23.0}%",
            row.behaviour,
            row.apps as f64 / row.population.max(1) as f64 * 100.0,
            row.default_caused_percent
        );
    }
    let pop = stats.table8()[0].population;
    println!("\n(total evaluated apps with retry APIs: {pop})");
}
