//! Regenerates Figure 3: success rate of downloading files of different
//! sizes over 3G with Volley's default API parameters (2500 ms timeout,
//! one automatic retry), with and without 10% packet loss.

use nck_bench::{bar, SEED};
use nck_netsim::{success_rate, ClientConfig, LinkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sizes: [(&str, u64); 11] = [
        ("2K", 2 << 10),
        ("4K", 4 << 10),
        ("8K", 8 << 10),
        ("16K", 16 << 10),
        ("32K", 32 << 10),
        ("64K", 64 << 10),
        ("128K", 128 << 10),
        ("256K", 256 << 10),
        ("512K", 512 << 10),
        ("1M", 1 << 20),
        ("2M", 2 << 20),
    ];
    let trials = 400;
    let config = ClientConfig::volley_default();
    let clean = LinkModel::three_g();
    let lossy = LinkModel::three_g().with_loss(0.10);
    let mut rng = StdRng::seed_from_u64(SEED);

    println!("Figure 3: Volley default-parameter sensitivity on 3G");
    println!("(timeout 2500 ms, 1 automatic retry, {trials} trials per point)");
    println!("{:-<78}", "");
    println!(
        "{:>6} {:>14} {:>30} {:>14}",
        "size", "no loss", "", "10% loss"
    );
    for (label, bytes) in sizes {
        let r0 = success_rate(&clean, &config, bytes, trials, &mut rng);
        let r10 = success_rate(&lossy, &config, bytes, trials, &mut rng);
        println!(
            "{:>6} {:>13.2} |{}| {:>13.2} |{}|",
            label,
            r0,
            bar(r0, 16),
            r10,
            bar(r10, 16)
        );
    }
    println!();
    println!(
        "Shape check: success degrades with size; loss pulls the knee to smaller files\n\
         (the paper's conclusion: developers must tune API parameters per network)."
    );
}
