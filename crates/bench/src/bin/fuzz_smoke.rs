//! Seeded corruption fuzz harness: drives mutated APK bundles through
//! the whole pipeline and fails on any panic or silent acceptance.
//!
//! ```text
//! fuzz_smoke [N]    # N seeds per base app, default 1000
//! ```
//!
//! Each of a handful of structurally different generated apps is damaged
//! with every seed in `0..N` ([`nck_appgen::mutate`]), then analyzed
//! with panics contained. The ground truth attached to each mutation
//! (raw damage must be rejected at parse; structural damage must be
//! rejected or analyzed degraded) is checked per run; the harness prints
//! a per-class outcome histogram and exits non-zero listing every
//! violating seed, which reproduces the exact damage.

use nck_appgen::mutate::{check, mutate, quiet_checker, Outcome};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;
use std::collections::BTreeMap;

/// Structurally different base apps, so mutations land in single- and
/// multi-request bodies, user and background contexts, helper-mediated
/// retries, and every supported library.
fn base_apps() -> Vec<AppSpec> {
    let mut helper = RequestSpec::new(Library::Volley, Origin::Service);
    // Volley couples timeout and retry in one DefaultRetryPolicy object.
    helper.set_timeout = true;
    helper.set_retries = Some(3);
    helper.retries_via_helper = true;
    vec![
        AppSpec::new(
            "com.fuzz.single",
            vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
        ),
        AppSpec::new(
            "com.fuzz.multi",
            vec![
                RequestSpec::new(Library::Volley, Origin::ActivityLifecycle),
                RequestSpec::new(Library::ApacheHttpClient, Origin::Service),
                RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick),
            ],
        ),
        AppSpec::new("com.fuzz.helper", vec![helper]),
    ]
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed count is a number"))
        .unwrap_or(1000);

    let checker = quiet_checker();
    let apps: Vec<_> = base_apps()
        .iter()
        .map(|spec| (spec.package.clone(), nck_appgen::generate(spec)))
        .collect();

    let mut histogram: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
    let mut violations = Vec::new();
    let mut runs = 0u64;
    for (package, apk) in &apps {
        for seed in 0..n {
            let (bytes, m) = mutate(apk, seed);
            runs += 1;
            match check(&checker, &bytes, &m) {
                Ok(outcome) => {
                    let label = match outcome {
                        Outcome::Rejected => "rejected",
                        Outcome::Degraded => "degraded",
                        // check() never passes these through, but keep
                        // the histogram total honest if it ever does.
                        Outcome::Clean => "clean",
                        Outcome::Panicked => "panicked",
                    };
                    *histogram.entry((m.kind.name(), label)).or_insert(0) += 1;
                }
                Err(violation) => violations.push(format!("{package}: {violation}")),
            }
        }
    }

    println!(
        "=== fuzz smoke: {runs} mutated bundles ({n} seeds x {} apps) ===",
        apps.len()
    );
    let mut last = "";
    for ((kind, label), count) in &histogram {
        if *kind != last {
            println!("{kind}:");
            last = kind;
        }
        println!("    {label:>10} {count}");
    }

    if violations.is_empty() {
        println!("no panics, no silent acceptance");
    } else {
        eprintln!("{} violations:", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
