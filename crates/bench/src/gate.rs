//! The bench-regression gate: one declarative comparison of measured
//! `BENCH_pipeline.json` numbers against the committed
//! `BENCH_baseline.json`, replacing the ad-hoc `--smoke` floors the
//! individual benches used to carry.
//!
//! The baseline document has a `"metrics"` object whose keys are dotted
//! paths into the measured document (`"hotpath.apps_per_sec"`,
//! `"targeted.speedup"`, …) and whose values record the baseline number
//! plus the tolerance that turns host noise into a verdict:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "metrics": {
//!     "hotpath.apps_per_sec": { "value": 950.0, "min_ratio": 0.70 },
//!     "targeted.lifted_frac": { "value": 0.068, "max": 0.30 },
//!     "targeted.speedup":     { "value": 3.40,  "min": 3.0 }
//!   }
//! }
//! ```
//!
//! Tolerances compose (every present bound must hold):
//!
//! - `min_ratio` / `max_ratio` — current ÷ baseline must stay within
//!   the ratio band (throughput floors: `min_ratio: 0.70` tolerates a
//!   30% regression, matching the old smoke floors);
//! - `min` / `max` — absolute bounds on the current value (structural
//!   invariants like "targeted mode lifts under 30% of methods");
//! - `optional: true` — a missing current value passes instead of
//!   failing (for sections a partial bench run did not regenerate).
//!
//! A metric missing from the measured document is otherwise a failure:
//! a gate that silently skips absent numbers rots into a no-op.

use serde_json::Value;

/// One declarative check parsed from the baseline's `"metrics"` map.
#[derive(Debug, Clone)]
pub struct Check {
    /// Dotted path into the measured document.
    pub metric: String,
    /// The recorded baseline value.
    pub baseline: f64,
    /// Floor on `current / baseline`.
    pub min_ratio: Option<f64>,
    /// Ceiling on `current / baseline`.
    pub max_ratio: Option<f64>,
    /// Absolute floor on the current value.
    pub min: Option<f64>,
    /// Absolute ceiling on the current value.
    pub max: Option<f64>,
    /// When set, a missing current value passes.
    pub optional: bool,
}

/// The verdict for one metric.
#[derive(Debug, PartialEq)]
pub enum Status {
    /// Within tolerance.
    Pass,
    /// Absent from the measured document, tolerated (`optional` or
    /// `allow_missing`).
    SkippedMissing,
    /// Absent from the measured document and required.
    Missing,
    /// Out of tolerance; the string says which bound broke.
    Fail(String),
}

/// One metric's evaluation: the check, the measured value (if any), and
/// the verdict.
#[derive(Debug)]
pub struct Outcome {
    /// Dotted path of the metric.
    pub metric: String,
    /// Baseline value it was compared against.
    pub baseline: f64,
    /// Measured value, when present.
    pub current: Option<f64>,
    /// The verdict.
    pub status: Status,
}

impl Outcome {
    /// Whether this outcome should fail the gate.
    pub fn failed(&self) -> bool {
        matches!(self.status, Status::Missing | Status::Fail(_))
    }
}

/// Resolves a dotted path (`"hotpath.apps_per_sec"`) to a number in
/// `doc`. Integers coerce to `f64`.
pub fn lookup(doc: &Value, path: &str) -> Option<f64> {
    let mut node = doc;
    for seg in path.split('.') {
        node = node.get(seg)?;
    }
    node.as_f64().or_else(|| node.as_i64().map(|n| n as f64))
}

/// Parses the baseline document's `"metrics"` map into checks, sorted
/// by metric path so reports are stable.
pub fn parse_baseline(doc: &Value) -> Result<Vec<Check>, String> {
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_object)
        .ok_or_else(|| "baseline has no \"metrics\" object".to_owned())?;
    let mut checks = Vec::with_capacity(metrics.len());
    for (metric, spec) in metrics {
        let num = |k: &str| {
            spec.get(k)
                .and_then(|v| v.as_f64().or_else(|| v.as_i64().map(|n| n as f64)))
        };
        let baseline = num("value").ok_or_else(|| format!("{metric}: missing \"value\""))?;
        let check = Check {
            metric: metric.clone(),
            baseline,
            min_ratio: num("min_ratio"),
            max_ratio: num("max_ratio"),
            min: num("min"),
            max: num("max"),
            optional: spec
                .get("optional")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        };
        if check.min_ratio.is_none()
            && check.max_ratio.is_none()
            && check.min.is_none()
            && check.max.is_none()
        {
            return Err(format!("{metric}: no tolerance bound set"));
        }
        checks.push(check);
    }
    Ok(checks)
}

/// Evaluates one check against the measured document. `allow_missing`
/// downgrades absent metrics to [`Status::SkippedMissing`] for partial
/// runs (`--smoke` regenerates only some sections).
pub fn evaluate(check: &Check, current_doc: &Value, allow_missing: bool) -> Outcome {
    let Some(current) = lookup(current_doc, &check.metric) else {
        let status = if check.optional || allow_missing {
            Status::SkippedMissing
        } else {
            Status::Missing
        };
        return Outcome {
            metric: check.metric.clone(),
            baseline: check.baseline,
            current: None,
            status,
        };
    };
    let mut fail: Option<String> = None;
    if check.min_ratio.is_some() || check.max_ratio.is_some() {
        if check.baseline == 0.0 {
            fail = Some("ratio bound against a zero baseline".to_owned());
        } else {
            let ratio = current / check.baseline;
            if let Some(floor) = check.min_ratio {
                if ratio.is_nan() || ratio < floor {
                    fail = Some(format!("ratio {ratio:.3} < min_ratio {floor:.3}"));
                }
            }
            if fail.is_none() {
                if let Some(ceil) = check.max_ratio {
                    if ratio.is_nan() || ratio > ceil {
                        fail = Some(format!("ratio {ratio:.3} > max_ratio {ceil:.3}"));
                    }
                }
            }
        }
    }
    if fail.is_none() {
        if let Some(floor) = check.min {
            if current < floor {
                fail = Some(format!("value {current:.4} < min {floor:.4}"));
            }
        }
    }
    if fail.is_none() {
        if let Some(ceil) = check.max {
            if current > ceil {
                fail = Some(format!("value {current:.4} > max {ceil:.4}"));
            }
        }
    }
    Outcome {
        metric: check.metric.clone(),
        baseline: check.baseline,
        current: Some(current),
        status: match fail {
            Some(reason) => Status::Fail(reason),
            None => Status::Pass,
        },
    }
}

/// Runs every baseline check against the measured document.
pub fn run(baseline: &Value, current: &Value, allow_missing: bool) -> Result<Vec<Outcome>, String> {
    let checks = parse_baseline(baseline)?;
    Ok(checks
        .iter()
        .map(|c| evaluate(c, current, allow_missing))
        .collect())
}

/// Renders one outcome as a fixed-width report line.
pub fn render_line(o: &Outcome) -> String {
    let current = match o.current {
        Some(v) => format!("{v:.4}"),
        None => "-".to_owned(),
    };
    let verdict = match &o.status {
        Status::Pass => "ok".to_owned(),
        Status::SkippedMissing => "skipped (not measured)".to_owned(),
        Status::Missing => "FAIL: metric not measured".to_owned(),
        Status::Fail(reason) => format!("FAIL: {reason}"),
    };
    format!(
        "{:<32} baseline {:>12.4}  current {:>12}  {}",
        o.metric, o.baseline, current, verdict
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn baseline() -> Value {
        json!({
            "schema": 1,
            "metrics": {
                "hotpath.apps_per_sec": { "value": 1000.0, "min_ratio": 0.7 },
                "targeted.lifted_frac": { "value": 0.07, "max": 0.30 },
                "targeted.speedup": { "value": 3.4, "min_ratio": 0.8, "min": 3.0 },
                "extra.section": { "value": 5.0, "min_ratio": 0.5, "optional": true },
            }
        })
    }

    #[test]
    fn lookup_walks_dotted_paths() {
        let doc = json!({ "a": { "b": { "c": 7 } } });
        assert_eq!(lookup(&doc, "a.b.c"), Some(7.0));
        assert_eq!(lookup(&doc, "a.b.missing"), None);
        assert_eq!(lookup(&doc, "a"), None, "objects are not numbers");
    }

    #[test]
    fn in_tolerance_document_passes() {
        let current = json!({
            "hotpath": { "apps_per_sec": 900.0 },
            "targeted": { "lifted_frac": 0.068, "speedup": 3.5 },
        });
        let outcomes = run(&baseline(), &current, false).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(
            outcomes.iter().all(|o| !o.failed()),
            "{:?}",
            outcomes.iter().map(render_line).collect::<Vec<_>>()
        );
    }

    #[test]
    fn throughput_drop_beyond_min_ratio_fails() {
        let current = json!({
            "hotpath": { "apps_per_sec": 600.0 },
            "targeted": { "lifted_frac": 0.068, "speedup": 3.5 },
        });
        let outcomes = run(&baseline(), &current, false).unwrap();
        let hot = outcomes
            .iter()
            .find(|o| o.metric == "hotpath.apps_per_sec")
            .unwrap();
        assert!(matches!(hot.status, Status::Fail(_)), "{:?}", hot.status);
        assert_eq!(outcomes.iter().filter(|o| o.failed()).count(), 1);
    }

    #[test]
    fn absolute_bounds_catch_structural_breaks() {
        let current = json!({
            "hotpath": { "apps_per_sec": 1000.0 },
            // Over the 30% lifted ceiling; speedup under the 3x floor.
            "targeted": { "lifted_frac": 0.45, "speedup": 2.9 },
        });
        let outcomes = run(&baseline(), &current, false).unwrap();
        assert_eq!(outcomes.iter().filter(|o| o.failed()).count(), 2);
    }

    #[test]
    fn missing_metric_fails_unless_tolerated() {
        let current = json!({ "targeted": { "lifted_frac": 0.068, "speedup": 3.5 } });
        let strict = run(&baseline(), &current, false).unwrap();
        let hot = strict
            .iter()
            .find(|o| o.metric == "hotpath.apps_per_sec")
            .unwrap();
        assert_eq!(hot.status, Status::Missing);
        // "extra.section" is optional: missing but not a failure.
        let extra = strict.iter().find(|o| o.metric == "extra.section").unwrap();
        assert_eq!(extra.status, Status::SkippedMissing);

        let relaxed = run(&baseline(), &current, true).unwrap();
        assert!(relaxed.iter().all(|o| !o.failed()));
    }

    #[test]
    fn baseline_without_bounds_is_rejected() {
        let bad = json!({ "metrics": { "x": { "value": 1.0 } } });
        assert!(parse_baseline(&bad).is_err());
        let no_metrics = json!({ "schema": 1 });
        assert!(parse_baseline(&no_metrics).is_err());
    }
}
