//! End-to-end checker throughput: how analysis cost scales with app
//! size, and the cost split across pipeline phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nchecker::{AnalyzedApp, NChecker};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::api::Registry;
use nck_netlibs::library::Library;

fn app_with_requests(n: usize) -> AppSpec {
    let libs = [
        Library::BasicHttpClient,
        Library::Volley,
        Library::AndroidAsyncHttp,
        Library::HttpUrlConnection,
        Library::OkHttp,
    ];
    let reqs = (0..n)
        .map(|i| {
            let origin = match i % 3 {
                0 => Origin::UserClick,
                1 => Origin::ActivityLifecycle,
                _ => Origin::Service,
            };
            RequestSpec::new(libs[i % libs.len()], origin)
        })
        .collect();
    AppSpec::new("com.bench.app", reqs)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_apk");
    for n in [1usize, 4, 16, 64] {
        let spec = app_with_requests(n);
        let bytes = nck_appgen::generate(&spec).to_bytes();
        let checker = NChecker::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |b, bytes| {
            b.iter(|| checker.analyze_bytes(std::hint::black_box(bytes)).unwrap());
        });
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let spec = app_with_requests(16);
    let apk = nck_appgen::generate(&spec);
    let bytes = apk.to_bytes();
    let registry = Registry::standard();

    c.bench_function("phase_parse", |b| {
        b.iter(|| nck_android::Apk::from_bytes(std::hint::black_box(&bytes)).unwrap());
    });
    c.bench_function("phase_lift", |b| {
        b.iter(|| nck_ir::lift_file(std::hint::black_box(&apk.adx)).unwrap());
    });
    let program = nck_ir::lift_file(&apk.adx).unwrap();
    c.bench_function("phase_context", |b| {
        b.iter(|| {
            AnalyzedApp::new(
                apk.manifest.clone(),
                std::hint::black_box(program.clone()),
                &registry,
            )
        });
    });
    // Summary engine in isolation, with CFGs prebuilt as the analysis
    // context does it: resolve what the program can resolve, leave
    // framework calls opaque (a slight over-approximation of the real
    // classifier, which also consults the call graph and registry).
    let program2 = nck_ir::lift_file(&apk.adx).unwrap();
    let cfgs_owned: Vec<Option<nck_ir::cfg::Cfg>> = program2
        .methods
        .iter()
        .map(|m| m.body.as_deref().map(nck_ir::cfg::Cfg::build))
        .collect();
    c.bench_function("phase_summaries", |b| {
        b.iter(|| {
            let p = std::hint::black_box(&program2);
            let inputs: Vec<nck_dataflow::MethodInput<'_>> = p
                .methods
                .iter()
                .map(|m| nck_dataflow::MethodInput {
                    body: m.body.as_deref(),
                    is_static: m.flags.contains(nck_dex::AccessFlags::STATIC),
                })
                .collect();
            let cfgs: Vec<Option<&nck_ir::cfg::Cfg>> =
                cfgs_owned.iter().map(Option::as_ref).collect();
            nck_dataflow::Summaries::compute_with_cfgs(&inputs, &cfgs, |_, _, inv| {
                match p.lookup_method(inv.callee) {
                    Some(id) => nck_dataflow::CallKind::Callees(vec![id.0 as usize]),
                    None => nck_dataflow::CallKind::Opaque,
                }
            })
        });
    });
    let app = AnalyzedApp::new(apk.manifest.clone(), program, &registry);
    let checker = NChecker::new();
    c.bench_function("phase_checks", |b| {
        b.iter(|| checker.analyze(std::hint::black_box(&app)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_end_to_end, bench_phases
}
criterion_main!(benches);
