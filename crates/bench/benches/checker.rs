//! End-to-end checker throughput: how analysis cost scales with app
//! size, and the cost split across pipeline phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nchecker::{AnalyzedApp, NChecker};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::api::Registry;
use nck_netlibs::library::Library;

fn app_with_requests(n: usize) -> AppSpec {
    let libs = [
        Library::BasicHttpClient,
        Library::Volley,
        Library::AndroidAsyncHttp,
        Library::HttpUrlConnection,
        Library::OkHttp,
    ];
    let reqs = (0..n)
        .map(|i| {
            let origin = match i % 3 {
                0 => Origin::UserClick,
                1 => Origin::ActivityLifecycle,
                _ => Origin::Service,
            };
            RequestSpec::new(libs[i % libs.len()], origin)
        })
        .collect();
    AppSpec::new("com.bench.app", reqs)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze_apk");
    for n in [1usize, 4, 16, 64] {
        let spec = app_with_requests(n);
        let bytes = nck_appgen::generate(&spec).to_bytes();
        let checker = NChecker::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |b, bytes| {
            b.iter(|| checker.analyze_bytes(std::hint::black_box(bytes)).unwrap());
        });
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    let spec = app_with_requests(16);
    let apk = nck_appgen::generate(&spec);
    let bytes = apk.to_bytes();
    let registry = Registry::standard();

    c.bench_function("phase_parse", |b| {
        b.iter(|| nck_android::Apk::from_bytes(std::hint::black_box(&bytes)).unwrap());
    });
    c.bench_function("phase_lift", |b| {
        b.iter(|| nck_ir::lift_file(std::hint::black_box(&apk.adx)).unwrap());
    });
    let program = nck_ir::lift_file(&apk.adx).unwrap();
    c.bench_function("phase_context", |b| {
        b.iter(|| {
            AnalyzedApp::new(
                apk.manifest.clone(),
                std::hint::black_box(program.clone()),
                &registry,
            )
        });
    });
    let app = AnalyzedApp::new(apk.manifest.clone(), program, &registry);
    let checker = NChecker::new();
    c.bench_function("phase_checks", |b| {
        b.iter(|| checker.analyze(std::hint::black_box(&app)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_end_to_end, bench_phases
}
criterion_main!(benches);
