//! Solver hot-path benches: the RPO-priority worklist against loopy and
//! loop-free bodies, the union-find object-flow closure, and tiny-body
//! overhead (the corpus median method is under ten statements, so
//! per-solve constant costs dominate real workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_dataflow::{object_flow, ConstProp, FlowOptions, Liveness, ReachingDefs};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_ir::cfg::Cfg;
use nck_ir::{Body, LocalId};

/// A straight-line + diamond body of `blocks` blocks (loop-free: the
/// solver's single-sweep fast case).
fn diamond_body(blocks: usize) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lbench/D;", |c| {
        c.method("f", "(I)I", AccessFlags::PUBLIC, 8, |m| {
            let x = m.reg(0);
            let y = m.reg(1);
            let p = m.param(1).unwrap();
            m.const_int(x, 0);
            m.const_int(y, 1);
            for _ in 0..blocks {
                let else_ = m.new_label();
                let join = m.new_label();
                m.ifz(CondOp::Eq, p, else_);
                m.binop(BinOp::Add, x, x, y);
                m.goto(join);
                m.bind(else_);
                m.binop(BinOp::Mul, y, y, p);
                m.bind(join);
            }
            m.ret(Some(x));
        });
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

/// A body of `loops` sequential counted loops (each forces iteration to
/// a fixpoint: the solver's re-queue path).
fn loopy_body(loops: usize) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lbench/L;", |c| {
        c.method("f", "(I)I", AccessFlags::PUBLIC, 8, |m| {
            let i = m.reg(0);
            let acc = m.reg(1);
            let n = m.param(1).unwrap();
            m.const_int(acc, 0);
            for _ in 0..loops {
                m.const_int(i, 0);
                let head = m.new_label();
                let done = m.new_label();
                m.bind(head);
                m.if_(CondOp::Ge, i, n, done);
                m.binop(BinOp::Add, acc, acc, i);
                m.binop_lit(BinOp::Add, i, i, 1);
                m.goto(head);
                m.bind(done);
            }
            m.ret(Some(acc));
        });
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

/// A fluent-builder chain of `n` config calls through aliases and a
/// field round-trip: the object-flow closure workload.
fn builder_body(n: usize) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lbench/F;", |c| {
        c.method("f", "()V", AccessFlags::PUBLIC, 8, |m| {
            let cur = m.reg(0);
            let next = m.reg(1);
            m.new_instance(cur, "Lnet/Builder;");
            m.invoke_direct("Lnet/Builder;", "<init>", "()V", &[cur]);
            for _ in 0..n {
                m.invoke_virtual(
                    "Lnet/Builder;",
                    "timeout",
                    "(I)Lnet/Builder;",
                    &[cur, m.reg(2)],
                );
                m.move_result(next);
                m.mov(cur, next);
            }
            m.iput(cur, m.param(0).unwrap(), "Lbench/F;", "b", "Lnet/Builder;");
            m.ret(None);
        });
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

fn bench_solver(c: &mut Criterion) {
    // Tiny bodies: constant overhead per solve is what the corpus pays.
    {
        let body = diamond_body(1);
        let cfg = Cfg::build(&body);
        let mut group = c.benchmark_group("solver_tiny");
        group.bench_function(BenchmarkId::new("reaching_defs", 1), |b| {
            b.iter(|| ReachingDefs::compute(std::hint::black_box(&body), &cfg));
        });
        group.bench_function(BenchmarkId::new("constprop", 1), |b| {
            b.iter(|| ConstProp::compute(std::hint::black_box(&body), &cfg));
        });
        group.bench_function(BenchmarkId::new("liveness", 1), |b| {
            b.iter(|| Liveness::compute(std::hint::black_box(&body), &cfg));
        });
        group.finish();
    }

    for size in [16usize, 128] {
        let diamond = diamond_body(size);
        let dcfg = Cfg::build(&diamond);
        let loopy = loopy_body(size / 4);
        let lcfg = Cfg::build(&loopy);

        let mut group = c.benchmark_group(format!("solver_{size}"));
        group.bench_function(BenchmarkId::new("acyclic_forward", size), |b| {
            b.iter(|| ReachingDefs::compute(std::hint::black_box(&diamond), &dcfg));
        });
        group.bench_function(BenchmarkId::new("acyclic_backward", size), |b| {
            b.iter(|| Liveness::compute(std::hint::black_box(&diamond), &dcfg));
        });
        group.bench_function(BenchmarkId::new("loopy_forward", size), |b| {
            b.iter(|| ReachingDefs::compute(std::hint::black_box(&loopy), &lcfg));
        });
        group.bench_function(BenchmarkId::new("loopy_backward", size), |b| {
            b.iter(|| Liveness::compute(std::hint::black_box(&loopy), &lcfg));
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("object_flow");
        for n in [8usize, 64] {
            let body = builder_body(n);
            group.bench_function(BenchmarkId::new("fluent_chain", n), |b| {
                b.iter(|| {
                    object_flow(
                        std::hint::black_box(&body),
                        LocalId(0),
                        FlowOptions::default(),
                    )
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solver
}
criterion_main!(benches);
