//! Interpreter and dynamic-checker throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_dyntest::{DynConfig, DynamicChecker};
use nck_netlibs::library::Library;

fn spec(n: usize) -> AppSpec {
    AppSpec::new(
        "com.bench.dyn",
        (0..n)
            .map(|i| {
                RequestSpec::new(
                    [
                        Library::BasicHttpClient,
                        Library::Volley,
                        Library::HttpUrlConnection,
                    ][i % 3],
                    if i % 2 == 0 {
                        Origin::UserClick
                    } else {
                        Origin::Service
                    },
                )
            })
            .collect(),
    )
}

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_checker");
    for n in [1usize, 8, 32] {
        let apk = nck_appgen::generate(&spec(n));
        let checker = DynamicChecker::new(DynConfig::full());
        group.bench_with_input(BenchmarkId::new("observe_full", n), &apk, |b, apk| {
            b.iter(|| checker.observe(std::hint::black_box(apk)).unwrap());
        });
        let vanarsena = DynamicChecker::new(DynConfig::vanarsena());
        group.bench_with_input(BenchmarkId::new("observe_vanarsena", n), &apk, |b, apk| {
            b.iter(|| vanarsena.observe(std::hint::black_box(apk)).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dynamic
}
criterion_main!(benches);
