//! Binary container throughput: serialize, parse (with checksum), verify,
//! and lift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn spec(requests: usize) -> AppSpec {
    AppSpec::new(
        "com.bench.lift",
        (0..requests)
            .map(|i| {
                RequestSpec::new(
                    Library::Volley,
                    if i % 2 == 0 {
                        Origin::UserClick
                    } else {
                        Origin::Service
                    },
                )
            })
            .collect(),
    )
}

fn bench_container(c: &mut Criterion) {
    for n in [4usize, 32] {
        let apk = nck_appgen::generate(&spec(n));
        let bytes = nck_dex::write_adx(&apk.adx);

        let mut group = c.benchmark_group(format!("container_{n}_requests"));
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(BenchmarkId::new("write_adx", n), |b| {
            b.iter(|| nck_dex::write_adx(std::hint::black_box(&apk.adx)));
        });
        group.bench_function(BenchmarkId::new("read_adx", n), |b| {
            b.iter(|| nck_dex::read_adx(std::hint::black_box(&bytes)).unwrap());
        });
        group.bench_function(BenchmarkId::new("verify", n), |b| {
            b.iter(|| nck_dex::verify::verify(std::hint::black_box(&apk.adx)));
        });
        group.bench_function(BenchmarkId::new("lift", n), |b| {
            b.iter(|| nck_ir::lift_file(std::hint::black_box(&apk.adx)).unwrap());
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_container
}
criterion_main!(benches);
