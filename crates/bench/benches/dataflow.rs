//! Dataflow-framework scaling: solver cost on synthetic bodies of
//! growing size and branchiness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_dataflow::{ConstProp, ControlDeps, Liveness, ReachingDefs};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_ir::cfg::Cfg;
use nck_ir::dom::{dominators, post_dominators};
use nck_ir::Body;

/// Builds a body with `blocks` diamond blocks, each defining and using a
/// handful of locals.
fn synthetic_body(blocks: usize) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lbench/B;", |c| {
        c.method("f", "(I)I", AccessFlags::PUBLIC, 8, |m| {
            let x = m.reg(0);
            let y = m.reg(1);
            let p = m.param(1).unwrap();
            m.const_int(x, 0);
            m.const_int(y, 1);
            for _ in 0..blocks {
                let else_ = m.new_label();
                let join = m.new_label();
                m.ifz(CondOp::Eq, p, else_);
                m.binop(BinOp::Add, x, x, y);
                m.goto(join);
                m.bind(else_);
                m.binop(BinOp::Mul, y, y, p);
                m.bind(join);
            }
            m.ret(Some(x));
        });
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

fn bench_analyses(c: &mut Criterion) {
    for blocks in [16usize, 64, 256] {
        let body = synthetic_body(blocks);
        let cfg = Cfg::build(&body);

        let mut group = c.benchmark_group(format!("dataflow_{blocks}_blocks"));
        group.bench_function(BenchmarkId::new("cfg_build", blocks), |b| {
            b.iter(|| Cfg::build(std::hint::black_box(&body)));
        });
        group.bench_function(BenchmarkId::new("reaching_defs", blocks), |b| {
            b.iter(|| ReachingDefs::compute(std::hint::black_box(&body), &cfg));
        });
        group.bench_function(BenchmarkId::new("liveness", blocks), |b| {
            b.iter(|| Liveness::compute(std::hint::black_box(&body), &cfg));
        });
        group.bench_function(BenchmarkId::new("constprop", blocks), |b| {
            b.iter(|| ConstProp::compute(std::hint::black_box(&body), &cfg));
        });
        group.bench_function(BenchmarkId::new("dominators", blocks), |b| {
            b.iter(|| dominators(std::hint::black_box(&cfg)));
        });
        group.bench_function(BenchmarkId::new("control_deps", blocks), |b| {
            let pdom = post_dominators(&cfg);
            b.iter(|| ControlDeps::compute(std::hint::black_box(&cfg), &pdom));
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_analyses
}
criterion_main!(benches);
