//! End-to-end tests of the `bench_gate` binary: it must stay green on
//! the committed `BENCH_pipeline.json` / `BENCH_baseline.json` pair and
//! go red on a doctored document with an out-of-tolerance throughput
//! drop.

use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nck-gate-{name}-{}", std::process::id()))
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; the bench documents live at
    // the workspace root two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn gate(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("bench_gate runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn committed_pipeline() -> Value {
    let text = std::fs::read_to_string(repo_root().join("BENCH_pipeline.json"))
        .expect("committed BENCH_pipeline.json");
    serde_json::from_str(&text).expect("bench doc parses")
}

#[test]
fn committed_documents_pass_the_gate() {
    let out = gate(&[]);
    assert!(
        out.status.success(),
        "gate failed on committed documents:\n{}\n{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("bench gate OK"));
}

#[test]
fn doctored_throughput_drop_fails_the_gate() {
    let mut doc = committed_pipeline();

    // Halve the targeted throughput — far beyond the 30% tolerance.
    let measured = doc["targeted"]["apps_per_sec"]
        .as_f64()
        .expect("targeted.apps_per_sec recorded");
    let Value::Object(map) = &mut doc else {
        panic!("bench doc is an object");
    };
    let Some(Value::Object(targeted)) = map.get_mut("targeted") else {
        panic!("targeted section is an object");
    };
    targeted.insert("apps_per_sec".to_owned(), json!(measured * 0.5));

    let doctored = temp_path("doctored.json");
    std::fs::write(&doctored, serde_json::to_string_pretty(&doc).unwrap()).unwrap();

    let out = gate(&["--current", doctored.to_str().unwrap()]);
    std::fs::remove_file(&doctored).ok();
    assert!(!out.status.success(), "gate passed a 50% throughput drop");
    assert_eq!(out.status.code(), Some(1), "tolerance failure exits 1");
    let text = stdout(&out);
    assert!(
        text.contains("targeted.apps_per_sec") && text.contains("FAIL"),
        "report names the broken metric:\n{text}"
    );
}

#[test]
fn smoke_mode_tolerates_missing_sections_but_not_bad_values() {
    // A document with only the targeted section: strict mode fails on
    // the absent hotpath metrics, --smoke skips them.
    let doc = committed_pipeline();
    let partial = json!({ "schema": 1, "targeted": doc["targeted"] });
    let partial_path = temp_path("partial.json");
    std::fs::write(
        &partial_path,
        serde_json::to_string_pretty(&partial).unwrap(),
    )
    .unwrap();

    let strict = gate(&["--current", partial_path.to_str().unwrap()]);
    let smoke = gate(&["--current", partial_path.to_str().unwrap(), "--smoke"]);
    std::fs::remove_file(&partial_path).ok();
    assert!(!strict.status.success(), "strict mode must flag the gap");
    assert!(
        smoke.status.success(),
        "--smoke tolerates unmeasured sections:\n{}\n{}",
        stdout(&smoke),
        String::from_utf8_lossy(&smoke.stderr)
    );
}

#[test]
fn unreadable_inputs_exit_with_a_usage_error() {
    let out = gate(&["--current", "/nonexistent/bench.json"]);
    assert_eq!(out.status.code(), Some(2));
}
