//! Corpus-level fault tolerance: one corrupt or adversarial app must
//! never block the rest of a corpus run.

use nchecker::{AnalyzeError, CheckerConfig};
use nck_appgen::mutate::mutate;
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_bench::{try_run_bundles_with, try_run_specs_with};
use nck_netlibs::library::Library;
use nck_obs::Obs;

fn spec(package: &str) -> AppSpec {
    AppSpec::new(
        package,
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    )
}

#[test]
fn corrupt_bundle_does_not_block_the_corpus() {
    let apks: Vec<_> = (0..4)
        .map(|i| nck_appgen::generate(&spec(&format!("com.corpus.app{i}"))))
        .collect();
    let mut bundles: Vec<Vec<u8>> = apks.iter().map(|a| a.to_bytes()).collect();
    // Replace app 1 with a seed-0 corruption of itself and app 2 with
    // outright garbage.
    bundles[1] = mutate(&apks[1], 0).0;
    bundles[2] = b"not an apk at all".to_vec();

    let outcome = try_run_bundles_with(&bundles, CheckerConfig::default(), &Obs::disabled());

    assert_eq!(outcome.reports.len(), 4);
    // The healthy apps analyzed and reported their defects.
    for i in [0usize, 3] {
        let report = outcome.reports[i].as_ref().unwrap_or_else(|| {
            panic!("healthy app {i} lost to a neighbour's corruption");
        });
        assert!(!report.defects.is_empty());
    }
    // The garbage bundle failed with a typed error, never a panic.
    let garbage = outcome
        .failures
        .iter()
        .find(|f| f.index == 2)
        .expect("garbage bundle recorded as failed");
    assert!(!matches!(garbage.error, AnalyzeError::Panic(_)));
    // The mutated bundle either failed typed or analyzed degraded.
    match &outcome.reports[1] {
        Some(report) => assert!(report.degraded()),
        None => {
            let f = outcome.failures.iter().find(|f| f.index == 1).unwrap();
            assert!(!matches!(f.error, AnalyzeError::Panic(_)));
        }
    }
}

#[test]
fn healthy_specs_yield_no_failures() {
    let specs: Vec<_> = (0..3).map(|i| spec(&format!("com.ok.app{i}"))).collect();
    let outcome = try_run_specs_with(&specs, CheckerConfig::default(), &Obs::disabled());
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.succeeded().len(), 3);
    assert_eq!(outcome.degraded_count(), 0);
    // Reports come back in spec order.
    for (i, r) in outcome.reports.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap().stats.package, format!("com.ok.app{i}"));
    }
}
