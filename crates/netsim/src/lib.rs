//! `nck-netsim`: a network simulator standing in for the paper's
//! testbed.
//!
//! Figure 3 of the paper downloads files through Volley under a Network
//! Link Conditioner; §2's study catalogues disruptions, switches, and
//! battery-drain retry loops. This crate simulates the same mechanisms:
//!
//! - [`link`]: 3G/WiFi/EDGE link models with tunable loss;
//! - [`tcp`]: simplified windowed transfers with RTO retransmission;
//! - [`client`]: library client models (timeout + retry policy, with the
//!   real libraries' defaults) over the simulated transport;
//! - [`disruption`]: connectivity timelines (outages, network switches);
//! - [`session`]: reconnection policies played against timelines (the
//!   Figure 2 Telegram loop, quantified);
//! - [`energy`]: a 3G radio-state energy model for over-retry costs.
//!
//! # Examples
//!
//! ```
//! use nck_netsim::client::{success_rate, ClientConfig};
//! use nck_netsim::link::LinkModel;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let small = success_rate(
//!     &LinkModel::three_g(),
//!     &ClientConfig::volley_default(),
//!     2048,
//!     50,
//!     &mut rng,
//! );
//! let large = success_rate(
//!     &LinkModel::three_g(),
//!     &ClientConfig::volley_default(),
//!     2 * 1024 * 1024,
//!     50,
//!     &mut rng,
//! );
//! assert!(small > large, "Figure 3's shape: size kills the default timeout");
//! ```

pub mod client;
pub mod disruption;
pub mod energy;
pub mod link;
pub mod session;
pub mod tcp;

pub use client::{request, success_rate, ClientConfig, RequestResult};
pub use disruption::{Condition, Segment, Timeline};
pub use energy::{backoff_retry_energy, energy_mj, periodic_retry_energy, Activity, RadioModel};
pub use link::LinkModel;
pub use session::{average_sessions, run_session, ReconnectPolicy, SessionResult};
pub use tcp::{connect, download, TcpParams, TransferOutcome};
