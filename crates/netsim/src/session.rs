//! Reconnection sessions: an app's retry policy played against a
//! disruption timeline — the quantitative version of the Figure 2
//! Telegram story and the §2.3 cause-4 "reconnect on network switch"
//! guidance.

use crate::disruption::{Condition, Timeline};
use crate::energy::{energy_mj, Activity, RadioModel};
use rand::rngs::StdRng;
use rand::Rng;

/// A reconnection policy: when to try again after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconnectPolicy {
    /// Retry every `interval_ms` (Figure 2's bug at 500 ms).
    Fixed {
        /// Interval between attempts.
        interval_ms: f64,
    },
    /// Exponential backoff from `initial_ms`, doubling to `max_ms`.
    Backoff {
        /// First retry interval.
        initial_ms: f64,
        /// Interval ceiling.
        max_ms: f64,
    },
    /// Give up after the first failure (the opposite defect: cause 2.1).
    GiveUp,
}

/// The result of one reconnection session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Whether a connection was eventually established.
    pub connected: bool,
    /// Wall-clock milliseconds until connection (or until `give_up`).
    pub elapsed_ms: f64,
    /// Connection attempts made.
    pub attempts: u32,
    /// Radio energy spent in millijoules.
    pub energy_mj: f64,
}

/// Plays `policy` against `timeline` starting at `start_ms`, with each
/// attempt taking `attempt_ms` of radio activity; gives up at
/// `deadline_ms` of elapsed time.
pub fn run_session(
    timeline: &Timeline,
    policy: ReconnectPolicy,
    radio: &RadioModel,
    start_ms: f64,
    attempt_ms: f64,
    deadline_ms: f64,
    rng: &mut StdRng,
) -> SessionResult {
    let mut t = 0.0;
    let mut attempts = 0u32;
    let mut activities = Vec::new();
    let mut interval = match policy {
        ReconnectPolicy::Fixed { interval_ms } => interval_ms,
        ReconnectPolicy::Backoff { initial_ms, .. } => initial_ms,
        ReconnectPolicy::GiveUp => 0.0,
    };

    loop {
        attempts += 1;
        activities.push(Activity {
            start_ms: t,
            active_ms: attempt_ms,
        });
        let up = matches!(timeline.at(start_ms + t), Condition::Up(_));
        // A little success jitter even when up: the first attempt after an
        // outage can still catch a stale route.
        let succeeded = up && rng.gen::<f64>() > 0.05;
        if succeeded {
            let elapsed = t + attempt_ms;
            return SessionResult {
                connected: true,
                elapsed_ms: elapsed,
                attempts,
                energy_mj: energy_mj(radio, &activities, elapsed.max(1.0)),
            };
        }
        match policy {
            ReconnectPolicy::GiveUp => {
                let elapsed = t + attempt_ms;
                return SessionResult {
                    connected: false,
                    elapsed_ms: elapsed,
                    attempts,
                    energy_mj: energy_mj(radio, &activities, elapsed.max(1.0)),
                };
            }
            ReconnectPolicy::Fixed { .. } => {}
            ReconnectPolicy::Backoff { max_ms, .. } => {
                interval = (interval * 2.0).min(max_ms);
            }
        }
        t += attempt_ms + interval;
        if t >= deadline_ms {
            return SessionResult {
                connected: false,
                elapsed_ms: deadline_ms,
                attempts,
                energy_mj: energy_mj(radio, &activities, deadline_ms),
            };
        }
    }
}

/// Averages sessions over `trials` random outage phases.
pub fn average_sessions(
    timeline: &Timeline,
    policy: ReconnectPolicy,
    radio: &RadioModel,
    attempt_ms: f64,
    deadline_ms: f64,
    trials: u32,
    rng: &mut StdRng,
) -> SessionResult {
    let mut connected = 0u32;
    let (mut elapsed, mut attempts, mut energy) = (0.0, 0u64, 0.0);
    for _ in 0..trials {
        let start = rng.gen::<f64>() * 60_000.0;
        let r = run_session(timeline, policy, radio, start, attempt_ms, deadline_ms, rng);
        connected += u32::from(r.connected);
        elapsed += r.elapsed_ms;
        attempts += u64::from(r.attempts);
        energy += r.energy_mj;
    }
    let n = f64::from(trials);
    SessionResult {
        connected: connected * 2 > trials,
        elapsed_ms: elapsed / n,
        attempts: (attempts as f64 / n).round() as u32,
        energy_mj: energy / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn outage_then_up() -> Timeline {
        // 10 s down, then 50 s up, cyclic.
        Timeline::new(vec![
            crate::disruption::Segment {
                duration_ms: 10_000.0,
                condition: Condition::Down,
            },
            crate::disruption::Segment {
                duration_ms: 50_000.0,
                condition: Condition::Up(LinkModel::three_g()),
            },
        ])
    }

    #[test]
    fn fixed_and_backoff_both_reconnect() {
        let t = outage_then_up();
        let radio = RadioModel::three_g();
        let mut r = rng();
        // Start at the beginning of the 10 s outage so both policies have
        // to ride it out.
        let fixed = run_session(
            &t,
            ReconnectPolicy::Fixed { interval_ms: 500.0 },
            &radio,
            0.0,
            200.0,
            120_000.0,
            &mut r,
        );
        let backoff = run_session(
            &t,
            ReconnectPolicy::Backoff {
                initial_ms: 1000.0,
                max_ms: 32_000.0,
            },
            &radio,
            0.0,
            200.0,
            120_000.0,
            &mut r,
        );
        assert!(fixed.connected);
        assert!(backoff.connected);
        // The fixed 500 ms loop makes far more attempts...
        assert!(fixed.attempts > backoff.attempts);
        // ...and burns more energy per connection.
        assert!(fixed.energy_mj > backoff.energy_mj);
    }

    #[test]
    fn give_up_fails_during_outages() {
        let t = outage_then_up();
        let radio = RadioModel::three_g();
        let mut r = rng();
        // Starting inside the outage window, a single attempt fails.
        let res = run_session(
            &t,
            ReconnectPolicy::GiveUp,
            &radio,
            5_000.0, // Inside the 10 s outage.
            200.0,
            120_000.0,
            &mut r,
        );
        assert!(!res.connected);
        assert_eq!(res.attempts, 1);
    }

    #[test]
    fn backoff_latency_is_bounded_by_its_ceiling() {
        let t = outage_then_up();
        let radio = RadioModel::three_g();
        let mut r = rng();
        let res = average_sessions(
            &t,
            ReconnectPolicy::Backoff {
                initial_ms: 1000.0,
                max_ms: 16_000.0,
            },
            &radio,
            200.0,
            240_000.0,
            40,
            &mut r,
        );
        assert!(res.connected);
        // Average outage exposure is ≤ 10 s plus at most one ceiling wait.
        assert!(res.elapsed_ms < 30_000.0, "{}", res.elapsed_ms);
    }
}
