//! Disruption timelines: the connectivity events mobile apps must
//! tolerate (§1) — outages, signal fades, and network-type switches.

use crate::link::LinkModel;

/// The network condition during one timeline segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Connected with the given link quality.
    Up(LinkModel),
    /// No connectivity at all.
    Down,
}

/// One segment of a disruption timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Duration of the segment in milliseconds.
    pub duration_ms: f64,
    /// Condition during the segment.
    pub condition: Condition,
}

/// A piecewise-constant network timeline; repeats cyclically.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    segments: Vec<Segment>,
    total_ms: f64,
}

impl Timeline {
    /// Builds a timeline from segments.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list or non-positive durations.
    pub fn new(segments: Vec<Segment>) -> Timeline {
        assert!(!segments.is_empty(), "timeline needs at least one segment");
        assert!(
            segments.iter().all(|s| s.duration_ms > 0.0),
            "segment durations must be positive"
        );
        let total_ms = segments.iter().map(|s| s.duration_ms).sum();
        Timeline { segments, total_ms }
    }

    /// A permanently-up timeline.
    pub fn always(link: LinkModel) -> Timeline {
        Timeline::new(vec![Segment {
            duration_ms: f64::MAX / 4.0,
            condition: Condition::Up(link),
        }])
    }

    /// Intermittent connectivity: `up_ms` of `link` alternating with
    /// `down_ms` outages — the "intermittent network" that breaks the
    /// ChatSecure patch of Figure 1.
    pub fn intermittent(link: LinkModel, up_ms: f64, down_ms: f64) -> Timeline {
        Timeline::new(vec![
            Segment {
                duration_ms: up_ms,
                condition: Condition::Up(link),
            },
            Segment {
                duration_ms: down_ms,
                condition: Condition::Down,
            },
        ])
    }

    /// A WiFi→cellular switch at `at_ms`: a brief outage between two
    /// different links (§2.3 cause 4).
    pub fn network_switch(from: LinkModel, to: LinkModel, at_ms: f64, gap_ms: f64) -> Timeline {
        Timeline::new(vec![
            Segment {
                duration_ms: at_ms,
                condition: Condition::Up(from),
            },
            Segment {
                duration_ms: gap_ms,
                condition: Condition::Down,
            },
            Segment {
                duration_ms: f64::MAX / 8.0,
                condition: Condition::Up(to),
            },
        ])
    }

    /// The condition at absolute time `t_ms` (cyclic).
    pub fn at(&self, t_ms: f64) -> Condition {
        let mut t = t_ms % self.total_ms;
        for s in &self.segments {
            if t < s.duration_ms {
                return s.condition;
            }
            t -= s.duration_ms;
        }
        self.segments.last().expect("non-empty").condition
    }

    /// Returns the fraction of `[0, window_ms)` that is connected.
    pub fn availability(&self, window_ms: f64, step_ms: f64) -> f64 {
        let mut up = 0u64;
        let mut n = 0u64;
        let mut t = 0.0;
        while t < window_ms {
            if matches!(self.at(t), Condition::Up(_)) {
                up += 1;
            }
            n += 1;
            t += step_ms;
        }
        up as f64 / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_is_always_up() {
        let t = Timeline::always(LinkModel::wifi());
        assert!(matches!(t.at(0.0), Condition::Up(_)));
        assert!(matches!(t.at(1e9), Condition::Up(_)));
    }

    #[test]
    fn intermittent_cycles() {
        let t = Timeline::intermittent(LinkModel::three_g(), 1000.0, 500.0);
        assert!(matches!(t.at(500.0), Condition::Up(_)));
        assert_eq!(t.at(1200.0), Condition::Down);
        // Next cycle.
        assert!(matches!(t.at(1600.0), Condition::Up(_)));
        let avail = t.availability(15_000.0, 10.0);
        assert!((avail - 2.0 / 3.0).abs() < 0.05, "{avail}");
    }

    #[test]
    fn switch_has_a_gap_then_new_link() {
        let t = Timeline::network_switch(LinkModel::wifi(), LinkModel::three_g(), 5000.0, 800.0);
        assert_eq!(t.at(5400.0), Condition::Down);
        match t.at(10_000.0) {
            Condition::Up(l) => assert_eq!(l, LinkModel::three_g()),
            Condition::Down => panic!("expected the new link"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_timeline_panics() {
        Timeline::new(vec![]);
    }
}
