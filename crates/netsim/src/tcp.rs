//! A simplified TCP transfer simulation: windowed segment delivery with
//! per-segment loss, retransmission timeouts, and a connect handshake.
//!
//! The goal is not protocol fidelity but the *mechanism* Figure 3
//! measures: how loss and transfer size interact with an
//! application-level timeout.

use crate::link::LinkModel;
use rand::rngs::StdRng;
use rand::Rng;

/// TCP-ish transfer parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Congestion window in segments (fixed; no slow-start modeling).
    pub window: u64,
    /// Retransmission timeout in milliseconds.
    pub rto_ms: f64,
    /// Maximum retransmissions of one segment before the connection
    /// resets.
    pub max_retransmits: u32,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            mss: 1460,
            window: 10,
            rto_ms: 1000.0,
            max_retransmits: 6,
        }
    }
}

/// Why a transfer stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// All bytes delivered; field is the elapsed milliseconds.
    Completed(f64),
    /// The application deadline expired first.
    DeadlineExceeded,
    /// A segment exceeded its retransmission budget.
    ConnectionReset,
}

impl TransferOutcome {
    /// Returns `true` for [`TransferOutcome::Completed`].
    pub fn is_success(&self) -> bool {
        matches!(self, TransferOutcome::Completed(_))
    }
}

/// Simulates the three-way handshake; returns elapsed ms or `None` when
/// the SYN exchange keeps getting lost past the budget.
pub fn connect(link: &LinkModel, params: &TcpParams, rng: &mut StdRng) -> Option<f64> {
    let mut elapsed = 0.0;
    let mut attempts = 0;
    loop {
        // SYN and SYN-ACK each cross the link once.
        let lost = rng.gen::<f64>() < link.loss_rate || rng.gen::<f64>() < link.loss_rate;
        if !lost {
            return Some(elapsed + link.rtt_ms());
        }
        attempts += 1;
        if attempts > params.max_retransmits {
            return None;
        }
        // Exponential SYN backoff like real stacks.
        elapsed += params.rto_ms * f64::from(1 << attempts.min(6));
    }
}

/// Simulates downloading `bytes` over `link` with an application
/// `deadline_ms` (measured from transfer start; the handshake is
/// included by the caller).
pub fn download(
    link: &LinkModel,
    params: &TcpParams,
    bytes: u64,
    deadline_ms: f64,
    rng: &mut StdRng,
) -> TransferOutcome {
    let segments = bytes.div_ceil(params.mss).max(1);
    // Per-window transmission time: the window's bytes over the wire plus
    // half an RTT for the cumulative ACK.
    let mut elapsed = 0.0;
    let mut sent = 0u64;
    while sent < segments {
        let in_window = (segments - sent).min(params.window);
        let window_bytes = in_window * params.mss;
        let wire_ms = (window_bytes as f64 * 8.0) / link.downlink_bps * 1000.0 + link.latency_ms;
        // Queueing jitter: ±15% per window, so application deadlines cut
        // probabilistically rather than at a hard size threshold.
        elapsed += wire_ms * rng.gen_range(0.85..1.15);
        // Each segment of the window is lost independently; a lost segment
        // costs an RTO (with exponential growth on repeat losses).
        for _ in 0..in_window {
            let mut retransmits = 0u32;
            while rng.gen::<f64>() < link.loss_rate {
                retransmits += 1;
                if retransmits > params.max_retransmits {
                    return TransferOutcome::ConnectionReset;
                }
                elapsed += params.rto_ms * f64::from(1 << (retransmits - 1).min(6));
                if elapsed > deadline_ms {
                    return TransferOutcome::DeadlineExceeded;
                }
            }
        }
        if elapsed > deadline_ms {
            return TransferOutcome::DeadlineExceeded;
        }
        sent += in_window;
    }
    TransferOutcome::Completed(elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn lossless_connect_is_one_rtt() {
        let link = LinkModel::three_g();
        let t = connect(&link, &TcpParams::default(), &mut rng()).unwrap();
        assert_eq!(t, link.rtt_ms());
    }

    #[test]
    fn lossless_small_download_completes_fast() {
        let link = LinkModel::three_g();
        let out = download(&link, &TcpParams::default(), 2048, 10_000.0, &mut rng());
        match out {
            TransferOutcome::Completed(ms) => assert!(ms < 500.0, "{ms}"),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn big_download_misses_a_tight_deadline() {
        let link = LinkModel::three_g();
        let out = download(
            &link,
            &TcpParams::default(),
            2 * 1024 * 1024,
            2500.0,
            &mut rng(),
        );
        assert_eq!(out, TransferOutcome::DeadlineExceeded);
    }

    #[test]
    fn loss_slows_transfers_down() {
        let link = LinkModel::three_g();
        let lossy = link.with_loss(0.1);
        let mut ok_clean = 0;
        let mut ok_lossy = 0;
        let mut r = rng();
        for _ in 0..200 {
            if download(&link, &TcpParams::default(), 64 * 1024, 2500.0, &mut r).is_success() {
                ok_clean += 1;
            }
            if download(&lossy, &TcpParams::default(), 64 * 1024, 2500.0, &mut r).is_success() {
                ok_lossy += 1;
            }
        }
        assert!(ok_clean > ok_lossy, "clean {ok_clean} vs lossy {ok_lossy}");
    }

    #[test]
    fn total_loss_resets_the_connection() {
        let link = LinkModel::three_g().with_loss(1.0);
        let out = download(&link, &TcpParams::default(), 4096, 1e12, &mut rng());
        assert_eq!(out, TransferOutcome::ConnectionReset);
        assert!(connect(&link, &TcpParams::default(), &mut rng()).is_none());
    }
}
