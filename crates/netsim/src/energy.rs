//! A cellular radio energy model, for quantifying the battery cost of
//! over-retry behaviour (the Telegram reconnect loop of Figure 2 and the
//! Kontalk offline-sync case of Table 2(vi)).
//!
//! Modeled after the 3G RRC state machine measurements of Balasubramanian
//! et al. (IMC'09, the paper's \[44\]): transfers run the radio in the
//! high-power DCH state and every transfer is followed by a multi-second
//! high-power *tail* before the radio demotes to idle.

/// Radio power/timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct RadioModel {
    /// Idle power in milliwatts.
    pub idle_mw: f64,
    /// Active (DCH) power in milliwatts.
    pub active_mw: f64,
    /// Tail duration after each transfer in milliseconds.
    pub tail_ms: f64,
    /// Tail power in milliwatts (FACH-ish).
    pub tail_mw: f64,
    /// Promotion overhead per idle→active transition in milliseconds.
    pub promo_ms: f64,
}

impl RadioModel {
    /// Typical 3G radio parameters (IMC'09 measurements, rounded).
    pub fn three_g() -> RadioModel {
        RadioModel {
            idle_mw: 10.0,
            active_mw: 800.0,
            tail_ms: 5000.0,
            tail_mw: 400.0,
            promo_ms: 2000.0,
        }
    }
}

/// One radio activity: a transfer of `active_ms` starting at `start_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// Transfer start, in milliseconds from the window origin.
    pub start_ms: f64,
    /// Active transfer duration in milliseconds.
    pub active_ms: f64,
}

/// Computes the energy in millijoules consumed over `window_ms` given a
/// set of transfer activities (sorted or not).
///
/// Tails overlap-merge: an activity starting inside the previous tail
/// keeps the radio up without a new promotion.
pub fn energy_mj(radio: &RadioModel, activities: &[Activity], window_ms: f64) -> f64 {
    let mut acts = activities.to_vec();
    acts.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));

    let mut energy = 0.0;
    let mut radio_up_until = f64::NEG_INFINITY; // End of the current tail.
    let mut accounted_until = 0.0f64;

    for a in &acts {
        if a.start_ms >= window_ms {
            break;
        }
        // Idle period before this activity (if the radio had gone down).
        let idle_start = accounted_until.max(0.0);
        let idle_end = a.start_ms.min(window_ms);
        if idle_end > idle_start {
            // Portions still inside a previous tail were already charged.
            let idle_free = (radio_up_until.min(idle_end) - idle_start).max(0.0);
            energy += (idle_end - idle_start - idle_free) * radio.idle_mw / 1000.0;
        }
        // Promotion, unless the radio is still up from a previous tail.
        let mut active = a.active_ms;
        if a.start_ms >= radio_up_until {
            active += radio.promo_ms;
        }
        energy += active * radio.active_mw / 1000.0;
        // Tail after the transfer.
        let tail_start = a.start_ms + active;
        let tail_end = (tail_start + radio.tail_ms).min(window_ms);
        if tail_end > tail_start {
            energy += (tail_end - tail_start) * radio.tail_mw / 1000.0;
        }
        radio_up_until = tail_start + radio.tail_ms;
        accounted_until = tail_end.max(idle_end);
    }
    // Trailing idle.
    if window_ms > accounted_until {
        energy += (window_ms - accounted_until) * radio.idle_mw / 1000.0;
    }
    energy
}

/// Energy of a periodic retry pattern: one `active_ms` attempt every
/// `interval_ms` over `window_ms` (the Telegram 500 ms reconnect loop).
pub fn periodic_retry_energy(
    radio: &RadioModel,
    interval_ms: f64,
    active_ms: f64,
    window_ms: f64,
) -> f64 {
    let mut acts = Vec::new();
    let mut t = 0.0;
    while t < window_ms {
        acts.push(Activity {
            start_ms: t,
            active_ms,
        });
        t += interval_ms;
    }
    energy_mj(radio, &acts, window_ms)
}

/// Energy of an exponential-backoff retry pattern starting at
/// `initial_interval_ms` and doubling up to `max_interval_ms`.
pub fn backoff_retry_energy(
    radio: &RadioModel,
    initial_interval_ms: f64,
    max_interval_ms: f64,
    active_ms: f64,
    window_ms: f64,
) -> f64 {
    let mut acts = Vec::new();
    let mut t = 0.0;
    let mut interval = initial_interval_ms;
    while t < window_ms {
        acts.push(Activity {
            start_ms: t,
            active_ms,
        });
        t += interval;
        interval = (interval * 2.0).min(max_interval_ms);
    }
    energy_mj(radio, &acts, window_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_window_costs_idle_power() {
        let r = RadioModel::three_g();
        let e = energy_mj(&r, &[], 60_000.0);
        assert!((e - 600.0).abs() < 1.0, "{e}"); // 60 s × 10 mW = 600 mJ.
    }

    #[test]
    fn one_transfer_costs_promo_active_tail() {
        let r = RadioModel::three_g();
        let e = energy_mj(
            &r,
            &[Activity {
                start_ms: 0.0,
                active_ms: 1000.0,
            }],
            60_000.0,
        );
        // (2000 promo + 1000 active) × 800 mW + 5000 tail × 400 mW +
        // ~52 s idle × 10 mW.
        assert!(e > 2400.0 + 2000.0, "{e}");
        assert!(e < 6000.0, "{e}");
    }

    #[test]
    fn aggressive_retry_burns_far_more_than_backoff() {
        let r = RadioModel::three_g();
        let window = 60_000.0;
        let aggressive = periodic_retry_energy(&r, 500.0, 200.0, window);
        let backoff = backoff_retry_energy(&r, 1000.0, 32_000.0, 200.0, window);
        assert!(
            aggressive > backoff * 2.0,
            "aggressive {aggressive} vs backoff {backoff}"
        );
        // The 500 ms loop keeps the radio pinned high: energy approaches
        // full active power for the whole window.
        assert!(aggressive > 0.5 * window * r.active_mw / 1000.0);
    }

    #[test]
    fn more_frequent_retries_cost_more() {
        let r = RadioModel::three_g();
        let e1 = periodic_retry_energy(&r, 1000.0, 100.0, 30_000.0);
        let e2 = periodic_retry_energy(&r, 10_000.0, 100.0, 30_000.0);
        assert!(e1 > e2);
    }
}
