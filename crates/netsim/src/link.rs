//! Link models: bandwidth, latency, and loss for the network types the
//! paper's Figure 3 experiment throttles with the Network Link
//! Conditioner.

/// A bidirectional link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Downlink bandwidth in bits per second.
    pub downlink_bps: f64,
    /// Uplink bandwidth in bits per second.
    pub uplink_bps: f64,
    /// One-way latency in milliseconds (RTT is twice this).
    pub latency_ms: f64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss_rate: f64,
}

impl LinkModel {
    /// The round-trip time in milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        self.latency_ms * 2.0
    }

    /// Returns a copy with a different loss rate.
    pub fn with_loss(mut self, loss_rate: f64) -> LinkModel {
        self.loss_rate = loss_rate;
        self
    }

    /// A typical 3G (HSPA) link: ~2 Mbps down, 600 kbps up, 75 ms one-way
    /// latency — the profile of the Network Link Conditioner's "3G"
    /// preset used in Figure 3.
    pub fn three_g() -> LinkModel {
        LinkModel {
            downlink_bps: 2_000_000.0,
            uplink_bps: 600_000.0,
            latency_ms: 75.0,
            loss_rate: 0.0,
        }
    }

    /// A home WiFi link: 20 Mbps down, 5 Mbps up, 10 ms one-way latency.
    pub fn wifi() -> LinkModel {
        LinkModel {
            downlink_bps: 20_000_000.0,
            uplink_bps: 5_000_000.0,
            latency_ms: 10.0,
            loss_rate: 0.0,
        }
    }

    /// An EDGE (2G) link: 200 kbps down, 100 kbps up, 250 ms one-way.
    pub fn edge() -> LinkModel {
        LinkModel {
            downlink_bps: 200_000.0,
            uplink_bps: 100_000.0,
            latency_ms: 250.0,
            loss_rate: 0.0,
        }
    }

    /// Ideal time in milliseconds to move `bytes` down the link, ignoring
    /// loss (bandwidth + one RTT of protocol overhead).
    pub fn ideal_download_ms(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.downlink_bps * 1000.0 + self.rtt_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_g_is_slower_than_wifi() {
        let g = LinkModel::three_g();
        let w = LinkModel::wifi();
        assert!(g.ideal_download_ms(1_000_000) > w.ideal_download_ms(1_000_000));
        assert!(g.rtt_ms() > w.rtt_ms());
    }

    #[test]
    fn with_loss_only_changes_loss() {
        let g = LinkModel::three_g();
        let lossy = g.with_loss(0.1);
        assert_eq!(lossy.loss_rate, 0.1);
        assert_eq!(lossy.downlink_bps, g.downlink_bps);
    }

    #[test]
    fn ideal_download_scales_with_size() {
        let g = LinkModel::three_g();
        // 2 MB at 2 Mbps ≈ 8 s + RTT: far beyond Volley's 2500 ms default.
        let t = g.ideal_download_ms(2 * 1024 * 1024);
        assert!(t > 8000.0);
        // 2 KB fits comfortably.
        assert!(g.ideal_download_ms(2048) < 300.0);
    }
}
