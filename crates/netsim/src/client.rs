//! Library client models: application-level timeout and retry policy on
//! top of the simulated transport — the mechanism whose defaults
//! Figure 3 stresses.

use crate::link::LinkModel;
use crate::tcp::{connect, download, TcpParams, TransferOutcome};
use rand::rngs::StdRng;

/// An HTTP client's reliability configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    /// Per-attempt deadline in milliseconds; `None` blocks until the
    /// transport itself gives up (the missing-timeout defect).
    pub timeout_ms: Option<f64>,
    /// Automatic retries after a failed attempt.
    pub retries: u32,
    /// Multiplier applied to the timeout after each retry (Volley's
    /// backoff multiplier).
    pub backoff_mult: f64,
}

impl ClientConfig {
    /// Volley's defaults: 2500 ms timeout, 1 retry, backoff ×1 (§1.2).
    pub fn volley_default() -> ClientConfig {
        ClientConfig {
            timeout_ms: Some(2500.0),
            retries: 1,
            backoff_mult: 1.0,
        }
    }

    /// Android Async HTTP defaults: 10 s timeout, 5 retries.
    pub fn async_http_default() -> ClientConfig {
        ClientConfig {
            timeout_ms: Some(10_000.0),
            retries: 5,
            backoff_mult: 1.0,
        }
    }

    /// `HttpURLConnection` defaults: no application timeout at all.
    pub fn http_url_connection_default() -> ClientConfig {
        ClientConfig {
            timeout_ms: None,
            retries: 0,
            backoff_mult: 1.0,
        }
    }
}

/// The result of one request through a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestResult {
    /// Whether any attempt completed.
    pub success: bool,
    /// Attempts made (1 + retries used).
    pub attempts: u32,
    /// Total wall-clock milliseconds spent, including failed attempts.
    pub total_ms: f64,
}

/// Issues one download of `bytes` through a client configured with
/// `config` over `link`.
pub fn request(
    link: &LinkModel,
    config: &ClientConfig,
    bytes: u64,
    rng: &mut StdRng,
) -> RequestResult {
    let params = TcpParams::default();
    let mut total_ms = 0.0;
    let mut timeout = config.timeout_ms;
    for attempt in 0..=config.retries {
        let deadline = timeout.unwrap_or(f64::MAX);
        let outcome = match connect(link, &params, rng) {
            Some(conn_ms) if conn_ms <= deadline => {
                match download(link, &params, bytes, deadline - conn_ms, rng) {
                    TransferOutcome::Completed(ms) => Some(conn_ms + ms),
                    TransferOutcome::DeadlineExceeded => {
                        total_ms += deadline;
                        None
                    }
                    TransferOutcome::ConnectionReset => {
                        total_ms += (conn_ms + deadline).min(deadline);
                        None
                    }
                }
            }
            Some(conn_ms) => {
                total_ms += conn_ms.min(deadline);
                None
            }
            None => {
                // The SYN exchange died; the app waited out its deadline
                // (or a long transport timeout when none is set).
                total_ms += timeout.unwrap_or(120_000.0);
                None
            }
        };
        if let Some(ms) = outcome {
            return RequestResult {
                success: true,
                attempts: attempt + 1,
                total_ms: total_ms + ms,
            };
        }
        timeout = timeout.map(|t| t * config.backoff_mult.max(1.0));
    }
    RequestResult {
        success: false,
        attempts: config.retries + 1,
        total_ms,
    }
}

/// Monte-Carlo success rate of downloading `bytes` under `link` with
/// `config`, over `trials` runs.
pub fn success_rate(
    link: &LinkModel,
    config: &ClientConfig,
    bytes: u64,
    trials: u32,
    rng: &mut StdRng,
) -> f64 {
    let mut ok = 0u32;
    for _ in 0..trials {
        if request(link, config, bytes, rng).success {
            ok += 1;
        }
    }
    f64::from(ok) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn small_files_succeed_with_volley_defaults() {
        let rate = success_rate(
            &LinkModel::three_g(),
            &ClientConfig::volley_default(),
            2048,
            100,
            &mut rng(),
        );
        assert!(rate > 0.95, "rate {rate}");
    }

    #[test]
    fn huge_files_fail_with_volley_defaults() {
        let rate = success_rate(
            &LinkModel::three_g(),
            &ClientConfig::volley_default(),
            2 * 1024 * 1024,
            50,
            &mut rng(),
        );
        assert!(rate < 0.05, "rate {rate}");
    }

    #[test]
    fn loss_reduces_success() {
        let clean = success_rate(
            &LinkModel::three_g(),
            &ClientConfig::volley_default(),
            128 * 1024,
            200,
            &mut rng(),
        );
        let lossy = success_rate(
            &LinkModel::three_g().with_loss(0.10),
            &ClientConfig::volley_default(),
            128 * 1024,
            200,
            &mut rng(),
        );
        assert!(clean > lossy + 0.1, "clean {clean} lossy {lossy}");
    }

    #[test]
    fn a_larger_timeout_rescues_large_files() {
        let default = success_rate(
            &LinkModel::three_g(),
            &ClientConfig::volley_default(),
            1024 * 1024,
            50,
            &mut rng(),
        );
        let tuned = success_rate(
            &LinkModel::three_g(),
            &ClientConfig {
                timeout_ms: Some(30_000.0),
                retries: 1,
                backoff_mult: 1.0,
            },
            1024 * 1024,
            50,
            &mut rng(),
        );
        assert!(tuned > default, "tuned {tuned} vs default {default}");
        assert!(tuned > 0.9);
    }

    #[test]
    fn retries_add_attempts_on_failure() {
        let r = request(
            &LinkModel::three_g().with_loss(1.0),
            &ClientConfig::volley_default(),
            2048,
            &mut rng(),
        );
        assert!(!r.success);
        assert_eq!(r.attempts, 2);
        assert!(r.total_ms >= 2500.0);
    }
}
