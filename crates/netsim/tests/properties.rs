//! Property tests for the network simulator: monotonicity and
//! conservation laws that must hold for any parameters.

use nck_netsim::{
    backoff_retry_energy, energy_mj, periodic_retry_energy, success_rate, Activity, ClientConfig,
    LinkModel, RadioModel, Timeline,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// More loss never helps: success rate is (statistically)
    /// non-increasing in the loss rate. Checked with generous slack at
    /// 200 trials.
    #[test]
    fn loss_never_helps(
        seed in any::<u64>(),
        kb in 4u64..256,
        low in 0.0f64..0.10,
        extra in 0.05f64..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ClientConfig::volley_default();
        let bytes = kb * 1024;
        let clean = success_rate(&LinkModel::three_g().with_loss(low), &cfg, bytes, 200, &mut rng);
        let lossy = success_rate(
            &LinkModel::three_g().with_loss((low + extra).min(0.9)),
            &cfg,
            bytes,
            200,
            &mut rng,
        );
        prop_assert!(lossy <= clean + 0.12, "loss helped: {low} -> {clean}, {} -> {lossy}", low + extra);
    }

    /// A longer timeout never hurts success (same seed stream caveat:
    /// compared statistically with slack).
    #[test]
    fn longer_timeouts_never_hurt(
        seed in any::<u64>(),
        kb in 4u64..512,
        t1 in 500.0f64..3000.0,
        extra in 1000.0f64..20_000.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = kb * 1024;
        let short = success_rate(
            &LinkModel::three_g(),
            &ClientConfig { timeout_ms: Some(t1), retries: 0, backoff_mult: 1.0 },
            bytes,
            150,
            &mut rng,
        );
        let long = success_rate(
            &LinkModel::three_g(),
            &ClientConfig { timeout_ms: Some(t1 + extra), retries: 0, backoff_mult: 1.0 },
            bytes,
            150,
            &mut rng,
        );
        prop_assert!(long + 0.12 >= short, "longer timeout hurt: {t1} -> {short}, {} -> {long}", t1 + extra);
    }

    /// Energy is additive-ish and never below the idle floor nor above
    /// the all-active ceiling.
    #[test]
    fn energy_is_bounded(
        starts in proptest::collection::vec(0.0f64..50_000.0, 0..12),
        active in 10.0f64..2000.0,
    ) {
        let radio = RadioModel::three_g();
        let window = 60_000.0;
        let acts: Vec<Activity> = starts
            .iter()
            .map(|&s| Activity { start_ms: s, active_ms: active })
            .collect();
        let e = energy_mj(&radio, &acts, window);
        let idle_floor = window * radio.idle_mw / 1000.0;
        // Ceiling: everything at active power plus per-activity promos.
        let ceiling = (window + acts.len() as f64 * (radio.promo_ms + active))
            * radio.active_mw
            / 1000.0;
        prop_assert!(e >= idle_floor * 0.99, "below idle floor: {e} < {idle_floor}");
        prop_assert!(e <= ceiling, "above ceiling: {e} > {ceiling}");
    }

    /// Faster periodic retry costs at least as much as slower retry.
    #[test]
    fn retry_frequency_monotone(
        fast in 200.0f64..2000.0,
        slower_mult in 2.0f64..10.0,
        active in 50.0f64..500.0,
    ) {
        let radio = RadioModel::three_g();
        let fast_e = periodic_retry_energy(&radio, fast, active, 60_000.0);
        let slow_e = periodic_retry_energy(&radio, fast * slower_mult, active, 60_000.0);
        prop_assert!(fast_e >= slow_e * 0.99, "fast {fast_e} < slow {slow_e}");
    }

    /// Backoff always costs no more than the equivalent fixed interval at
    /// its initial value.
    #[test]
    fn backoff_beats_fixed_interval(
        initial in 500.0f64..4000.0,
        active in 50.0f64..500.0,
    ) {
        let radio = RadioModel::three_g();
        let fixed = periodic_retry_energy(&radio, initial, active, 120_000.0);
        let backoff = backoff_retry_energy(&radio, initial, 64_000.0, active, 120_000.0);
        prop_assert!(backoff <= fixed * 1.01);
    }

    /// Timeline availability is always in [0, 1] and matches the up/down
    /// ratio for intermittent schedules.
    #[test]
    fn availability_matches_duty_cycle(
        up in 100.0f64..5000.0,
        down in 100.0f64..5000.0,
    ) {
        let t = Timeline::intermittent(LinkModel::three_g(), up, down);
        let avail = t.availability((up + down) * 20.0, 7.0);
        let expected = up / (up + down);
        prop_assert!((avail - expected).abs() < 0.08, "avail {avail} vs duty {expected}");
    }
}
