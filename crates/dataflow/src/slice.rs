//! Intra-procedural backward slicing over data and control dependences.
//!
//! NChecker uses backward slices to decide whether a loop-exit condition
//! depends (directly or transitively) on statements inside a catch block
//! (§4.5, Figure 6(c)/(d)).

use crate::ctrldep::ControlDeps;
use crate::reachdefs::ReachingDefs;
use nck_ir::body::{Body, Stmt, StmtId};
use std::collections::BTreeSet;

/// What the slice follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// Data dependences only.
    Data,
    /// Data and control dependences.
    Full,
}

/// Computes the backward slice of `criterion` within one body.
///
/// The returned set contains the criterion itself plus every statement it
/// transitively depends on.
pub fn backward_slice(
    body: &Body,
    rd: &ReachingDefs,
    cd: &ControlDeps,
    criterion: StmtId,
    kind: SliceKind,
) -> BTreeSet<StmtId> {
    let mut slice = BTreeSet::new();
    let mut work = vec![criterion];
    while let Some(s) = work.pop() {
        if !slice.insert(s) {
            continue;
        }
        // Data dependences: the reaching definitions of every used local.
        for local in body.stmt(s).uses() {
            for def in rd.reaching(s, local) {
                if !slice.contains(&def) {
                    work.push(def);
                }
            }
        }
        // For a definition coming from a caught exception or parameter
        // there is nothing further intra-procedurally.
        if kind == SliceKind::Full {
            for &dep in cd.deps_of(s) {
                if !slice.contains(&dep) {
                    work.push(dep);
                }
            }
        }
    }
    slice
}

/// Returns `true` when the backward slice of `criterion` intersects
/// `region` (typically the statements of a catch block).
pub fn slice_reaches(
    body: &Body,
    rd: &ReachingDefs,
    cd: &ControlDeps,
    criterion: StmtId,
    region: &BTreeSet<StmtId>,
    kind: SliceKind,
) -> bool {
    // Early exit during the walk instead of materializing the whole slice.
    let mut seen = BTreeSet::new();
    let mut work = vec![criterion];
    while let Some(s) = work.pop() {
        if !seen.insert(s) {
            continue;
        }
        if s != criterion && region.contains(&s) {
            return true;
        }
        for local in body.stmt(s).uses() {
            for def in rd.reaching(s, local) {
                if !seen.contains(&def) {
                    work.push(def);
                }
            }
        }
        if kind == SliceKind::Full {
            for &dep in cd.deps_of(s) {
                if !seen.contains(&dep) {
                    work.push(dep);
                }
            }
        }
    }
    false
}

/// Returns the statements of `body` that are [`Stmt::Identity`] caught-
/// exception bindings — handler entries, useful as slice regions.
pub fn handler_entries(body: &Body) -> Vec<StmtId> {
    body.iter()
        .filter(|(_, s)| {
            matches!(
                s,
                Stmt::Identity {
                    kind: nck_ir::body::IdentityKind::CaughtException,
                    ..
                }
            )
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrldep::ControlDeps;
    use crate::reachdefs::ReachingDefs;
    use nck_dex::CondOp;
    use nck_ir::body::{LocalDecl, LocalId, Operand, Rvalue};
    use nck_ir::cfg::Cfg;
    use nck_ir::dom::post_dominators;

    fn analyze(body: &Body) -> (Cfg, ReachingDefs, ControlDeps) {
        let cfg = Cfg::build(body);
        let rd = ReachingDefs::compute(body, &cfg);
        let pdom = post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        (cfg, rd, cd)
    }

    #[test]
    fn data_slice_follows_def_chains() {
        // 0: v0 = 1
        // 1: v1 = v0 + 2
        // 2: v2 = 9        (irrelevant)
        // 3: return v1
        let body = Body {
            locals: (0..3)
                .map(|i| LocalDecl {
                    name: format!("v{i}"),
                    ty: None,
                })
                .collect(),
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::Assign {
                    local: LocalId(1),
                    rvalue: Rvalue::BinOp {
                        op: nck_dex::BinOp::Add,
                        a: Operand::Local(LocalId(0)),
                        b: Operand::IntConst(2),
                    },
                },
                Stmt::Assign {
                    local: LocalId(2),
                    rvalue: Rvalue::Use(Operand::IntConst(9)),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(1))),
                },
            ],
            traps: vec![],
        };
        let (_, rd, cd) = analyze(&body);
        let slice = backward_slice(&body, &rd, &cd, StmtId(3), SliceKind::Data);
        assert!(slice.contains(&StmtId(0)));
        assert!(slice.contains(&StmtId(1)));
        assert!(!slice.contains(&StmtId(2)));
    }

    #[test]
    fn full_slice_includes_controlling_branches() {
        // 0: v0 = 1
        // 1: if v0 -> 3
        // 2: v1 = 5        (controlled by 1)
        // 3: return
        let body = Body {
            locals: (0..2)
                .map(|i| LocalDecl {
                    name: format!("v{i}"),
                    ty: None,
                })
                .collect(),
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::Local(LocalId(0)),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Assign {
                    local: LocalId(1),
                    rvalue: Rvalue::Use(Operand::IntConst(5)),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let (_, rd, cd) = analyze(&body);
        let data = backward_slice(&body, &rd, &cd, StmtId(2), SliceKind::Data);
        assert!(!data.contains(&StmtId(1)));
        let full = backward_slice(&body, &rd, &cd, StmtId(2), SliceKind::Full);
        assert!(full.contains(&StmtId(1)));
        assert!(full.contains(&StmtId(0))); // Via the branch's use of v0.
    }

    #[test]
    fn slice_reaches_detects_catch_dependency() {
        // Models: retry = shouldRetry() in catch; while cond uses retry.
        // 0: v0 = 1                (retry = true)
        // 1: if v0 == 0 -> 5       (loop exit condition)
        // 2: invoke send (try, handler 3)
        // 3: v0 = 0                ("catch": retry = false)
        // 4: goto 1
        // 5: return
        let mut p = nck_ir::Program::new();
        let key = nck_ir::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("send"),
            sig: p.symbols.intern("()V"),
        };
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::Local(LocalId(0)),
                    b: Operand::IntConst(0),
                    target: StmtId(5),
                },
                Stmt::Invoke(nck_ir::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(0)),
                },
                Stmt::Goto { target: StmtId(1) },
                Stmt::Return { value: None },
            ],
            traps: vec![nck_ir::Trap {
                start: StmtId(2),
                end: StmtId(3),
                exception: None,
                handler: StmtId(3),
            }],
        };
        let (_, rd, cd) = analyze(&body);
        let catch_region: BTreeSet<StmtId> = [StmtId(3)].into();
        assert!(slice_reaches(
            &body,
            &rd,
            &cd,
            StmtId(1),
            &catch_region,
            SliceKind::Data
        ));
        // A criterion with no connection to the catch does not reach it.
        let unrelated: BTreeSet<StmtId> = [StmtId(0)].into();
        assert!(!slice_reaches(
            &body,
            &rd,
            &cd,
            StmtId(0),
            &unrelated,
            SliceKind::Data
        ));
    }
}
