//! `nck-dataflow`: the from-scratch dataflow framework behind NChecker.
//!
//! The paper builds its analyses on Soot and FlowDroid; this crate is the
//! equivalent substrate implemented from first principles:
//!
//! - a generic worklist [`solver`] parameterized by direction, lattice,
//!   and transfer function;
//! - bit-vector analyses: [`reachdefs`] (reaching definitions / def-use
//!   chains) and [`liveness`];
//! - [`constprop`]: flat-lattice constant propagation, used to recover
//!   config-API argument values (§4.4.2);
//! - [`taint`]: object-flow analysis (backward-to-allocation plus
//!   forward-through-aliases) used for config-API and response checking
//!   (§4.4.1, §4.4.4);
//! - [`ctrldep`]: control dependence from post-dominators; and
//! - [`mod@slice`]: backward slicing over data + control dependences, used by
//!   retry-loop identification (§4.5).
//!
//! # Examples
//!
//! ```
//! use nck_dataflow::constprop::{CVal, ConstProp};
//! use nck_dex::builder::AdxBuilder;
//! use nck_dex::AccessFlags;
//! use nck_ir::cfg::Cfg;
//!
//! let mut b = AdxBuilder::new();
//! b.class("Lapp/A;", |c| {
//!     c.method("f", "()I", AccessFlags::PUBLIC, 2, |m| {
//!         m.const_int(m.reg(0), 21);
//!         m.binop_lit(nck_dex::BinOp::Mul, m.reg(0), m.reg(0), 2);
//!         m.ret(Some(m.reg(0)));
//!     });
//! });
//! let p = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
//! let body = p.methods[0].body.as_ref().unwrap();
//! let cfg = Cfg::build(body);
//! let cp = ConstProp::compute(body, &cfg);
//! let ret = nck_ir::StmtId(3);
//! assert_eq!(cp.value_before(ret, nck_ir::LocalId(0)), CVal::Int(42));
//! ```

pub mod bitset;
pub mod constprop;
pub mod ctrldep;
pub mod interproc;
pub mod liveness;
pub mod reachdefs;
pub mod slice;
pub mod solver;
pub mod taint;

pub use bitset::BitSet;
pub use constprop::{CVal, ConstProp};
pub use ctrldep::ControlDeps;
pub use interproc::{tarjan_sccs, CallKind, MethodInput, MethodSummary, Summaries, SummaryStats};
pub use liveness::Liveness;
pub use reachdefs::ReachingDefs;
pub use slice::{backward_slice, handler_entries, slice_reaches, SliceKind};
pub use solver::{solve, Analysis, Direction, Solution};
pub use taint::{object_flow, FlowOptions, ObjectFlow};
