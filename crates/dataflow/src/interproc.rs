//! Summary-based interprocedural dataflow.
//!
//! NChecker's checks are method-local at heart, which makes them blind to
//! the helper-method idioms real apps use: a guard wrapped in
//! `isOnline()`, a timeout fetched through `getTimeout()`, a response
//! validated by `checkResp(resp)`. The paper's Soot/FlowDroid substrate
//! resolves these with interprocedural dataflow; this module is the
//! equivalent built from first principles.
//!
//! The design is the classic bottom-up summary scheme: condense the call
//! graph into strongly connected components (Tarjan), process components
//! callees-first, and compute one reusable [`MethodSummary`] per method
//! by running a flow-insensitive abstract interpretation of its body.
//! Recursive components iterate to a fixpoint; the lattice is finite and
//! all transfers are monotone, so termination needs no widening.
//!
//! A summary answers the three questions the checkers ask:
//!
//! - **constant returns** — does the method always return a known
//!   constant (`getRetryCount() { return 0; }`)? Constant folding here
//!   mirrors [`crate::constprop`] exactly (same [`CVal`] lattice, same
//!   `BinOp::eval` semantics), so a value the intraprocedural pass
//!   recovers is recovered identically through a call.
//! - **connectivity derivation** — does the return value data-derive
//!   from a connectivity *source* API, or does the method branch on one
//!   (`isOnline() { return netInfo.isConnected(); }`)? A call to such a
//!   method can then guard a request just like a direct API call.
//! - **argument checks** — which argument positions does the method
//!   null-test or pass to a recognized *check sink*
//!   (`checkResp(r) { if (r == null) ... }`)? A call forwarding a
//!   response object to such a helper counts as validating it.
//!
//! Values loaded from fields consult an app-wide field-constant map (the
//! join of every store to that field), refined over a couple of rounds so
//! `getTimeout() { return this.timeout; }` resolves when the field is
//! only ever stored a constant.
//!
//! The module is deliberately ignorant of Android and of the checker's
//! API registry: call sites are classified by a caller-supplied closure
//! into [`CallKind`]s, keeping `nck-dataflow` dependency-free.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::constprop::CVal;
use crate::solver::{solve, Analysis, Direction, Solution};
use nck_dex::CondOp;
use nck_ir::body::{Body, FieldKey, IdentityKind, InvokeExpr, Operand, Rvalue, Stmt, StmtId};
use nck_ir::cfg::Cfg;

/// What a call site means to the analysis, as decided by the caller of
/// [`Summaries::compute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// A connectivity source API (e.g. `NetworkInfo.isConnected()`):
    /// its result is connectivity-derived.
    Source,
    /// A response-validity check API (e.g. `Response.isSuccessful()`):
    /// invoking it on a value checks that value.
    CheckSink,
    /// An app-internal call resolved to these method indices.
    Callees(Vec<usize>),
    /// Anything else: unknown effect, unknown result.
    Opaque,
}

/// One method's reusable summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSummary {
    /// Join of all returned values on the constant lattice.
    pub const_return: CVal,
    /// `Some(j)` when every return is exactly a copy of argument
    /// position `j` (receiver = position 0). Callers substitute their
    /// argument value wholesale.
    pub return_ident_arg: Option<u16>,
    /// Argument positions the return value data-derives from.
    pub return_from_args: u32,
    /// The return value data-derives from a connectivity source.
    pub return_from_source: bool,
    /// The method branches on a connectivity-derived value, so its
    /// behavior (path-insensitively) reflects connectivity state.
    pub branches_on_source: bool,
    /// Argument positions the method null-tests or forwards to a check
    /// sink (directly or through further summarized callees).
    pub args_checked: u32,
    /// The method transitively invokes a connectivity source.
    pub calls_source: bool,
}

impl MethodSummary {
    /// The optimistic starting point for fixpoint iteration.
    fn bottom() -> MethodSummary {
        MethodSummary {
            const_return: CVal::Undef,
            return_ident_arg: None,
            return_from_args: 0,
            return_from_source: false,
            branches_on_source: false,
            args_checked: 0,
            calls_source: false,
        }
    }

    /// The summary of a method we cannot see into (no body).
    fn opaque() -> MethodSummary {
        MethodSummary {
            const_return: CVal::NonConst,
            ..MethodSummary::bottom()
        }
    }

    /// A call to this method observes connectivity state — either the
    /// return value derives from a source or the method branches on one.
    /// This is what makes `if (isOnline())` a recognized guard.
    pub fn returns_connectivity(&self) -> bool {
        self.return_from_source || self.branches_on_source
    }

    /// The method checks argument position `j`.
    pub fn checks_arg(&self, j: usize) -> bool {
        j < 32 && self.args_checked & (1 << j) != 0
    }
}

/// One method as seen by the engine.
#[derive(Clone, Copy)]
pub struct MethodInput<'a> {
    /// The lifted body, or `None` for abstract/native methods.
    pub body: Option<&'a Body>,
    /// Whether the method is static (shifts `Param(i)` to argument
    /// position `i` instead of `i + 1`).
    pub is_static: bool,
}

/// Aggregate statistics about one summary computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SummaryStats {
    /// Methods with bodies that were summarized.
    pub methods: usize,
    /// Strongly connected components in the call graph.
    pub sccs: usize,
    /// Size of the largest (recursive) component.
    pub largest_scc: usize,
    /// Methods whose return folded to a known constant value.
    pub const_returns: usize,
    /// Fields whose app-wide stored value is a known constant.
    pub field_consts: usize,
}

/// The computed summaries for one app, cached and queried by checkers.
#[derive(Debug)]
pub struct Summaries {
    summaries: Vec<MethodSummary>,
    field_consts: BTreeMap<FieldKey, CVal>,
    stats: SummaryStats,
    hits: AtomicUsize,
}

/// A reusable snapshot of the engine's state after the *first* fixpoint
/// round (before field-constant refinement), indexed by dense method
/// index.
///
/// Seeding a later run with this snapshot lets the engine skip every
/// method whose body, callee resolution, and transitive callee cone are
/// unchanged: their round-0 summaries and field-store contributions are
/// taken verbatim, and only the dirty set (plus its transitive callers,
/// via the existing dirty-set recompute) is re-solved. The snapshot is
/// taken at round 0 — not after field refinement — so the seeded run
/// replays the exact same refinement trajectory as a cold run and
/// converges to byte-identical summaries.
#[derive(Debug, Clone, Default)]
pub struct SummarySeed {
    /// Post-round-0 summary per method.
    pub round0_summaries: Vec<MethodSummary>,
    /// Post-round-0 field-store contribution per method: the join of the
    /// values this method stores to each field.
    pub round0_contribs: Vec<BTreeMap<FieldKey, CVal>>,
}

impl SummarySeed {
    /// Number of methods covered by the snapshot.
    pub fn len(&self) -> usize {
        self.round0_summaries.len()
    }

    /// Whether the snapshot covers no methods.
    pub fn is_empty(&self) -> bool {
        self.round0_summaries.is_empty()
    }
}

/// The abstract value of one local: a constant-lattice value plus
/// provenance (which argument positions and whether a connectivity
/// source flow into it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AVal {
    cval: CVal,
    /// `Some(j)` when the value is exactly argument position `j`.
    ident: Option<u16>,
    /// Argument positions the value data-derives from (bit `j` =
    /// position `j`; positions ≥ 32 saturate out of the mask).
    args: u32,
    /// Data-derives from a connectivity source result.
    source: bool,
}

const BOTTOM: AVal = AVal {
    cval: CVal::Undef,
    ident: None,
    args: 0,
    source: false,
};

const OPAQUE: AVal = AVal {
    cval: CVal::NonConst,
    ident: None,
    args: 0,
    source: false,
};

impl AVal {
    fn join(self, other: AVal) -> AVal {
        if self == BOTTOM {
            return other;
        }
        if other == BOTTOM {
            return self;
        }
        AVal {
            cval: self.cval.join(other.cval),
            ident: if self.ident == other.ident {
                self.ident
            } else {
                None
            },
            args: self.args | other.args,
            source: self.source || other.source,
        }
    }

    fn constant(cval: CVal) -> AVal {
        AVal { cval, ..BOTTOM }
    }
}

fn arg_bit(pos: u16) -> u32 {
    if pos < 32 {
        1 << pos
    } else {
        0
    }
}

fn eval(env: &[AVal], op: Operand) -> AVal {
    match op {
        Operand::Local(l) => env.get(l.0 as usize).copied().unwrap_or(OPAQUE),
        Operand::IntConst(v) => AVal::constant(CVal::Int(v)),
        Operand::StrConst(s) => AVal::constant(CVal::Str(s)),
        Operand::Null => AVal::constant(CVal::Null),
        Operand::ClassConst(_) => OPAQUE,
    }
}

/// Safety cap on fixpoint rounds; the lattice is finite so these are
/// never hit in practice, but a bound keeps pathological inputs cheap.
const MAX_SCC_ITERS: usize = 64;
const MAX_FIELD_ROUNDS: usize = 4;

/// Minimum independent components and total statements in one
/// condensation level before the fixpoint fans out to worker threads;
/// below this, thread spawn overhead dwarfs the solve cost (typical
/// corpus apps stay sequential, big real-world apps fan out).
const PAR_MIN_COMPS: usize = 4;
const PAR_MIN_STMTS: usize = 4096;

/// Worker threads for the per-level parallel fixpoint: capped low since
/// this nests inside the per-app service pool.
fn par_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

impl Summaries {
    /// Computes summaries for all `methods`, classifying each call site
    /// via `classify` (called once per site, up front).
    pub fn compute<F>(methods: &[MethodInput<'_>], classify: F) -> Summaries
    where
        F: FnMut(usize, StmtId, &InvokeExpr) -> CallKind,
    {
        let owned: Vec<Option<Cfg>> = methods.iter().map(|i| i.body.map(Cfg::build)).collect();
        let cfgs: Vec<Option<&Cfg>> = owned.iter().map(Option::as_ref).collect();
        Summaries::compute_with_cfgs(methods, &cfgs, classify)
    }

    /// Like [`Summaries::compute`], but reuses caller-built CFGs
    /// (`cfgs[i]` for `methods[i]`) instead of rebuilding them — the
    /// analysis context already has one per body.
    pub fn compute_with_cfgs<F>(
        methods: &[MethodInput<'_>],
        cfgs: &[Option<&Cfg>],
        classify: F,
    ) -> Summaries
    where
        F: FnMut(usize, StmtId, &InvokeExpr) -> CallKind,
    {
        Summaries::compute_with_cfgs_obs(methods, cfgs, classify, &nck_obs::Obs::disabled())
    }

    /// [`Summaries::compute_with_cfgs`] with observability: records a
    /// `scc_fixpoint` span per recursive (size > 1) component, an SCC
    /// size histogram (`summary.scc_size`), fixpoint iteration and
    /// per-method solve counters (`summary.fixpoint_iters`,
    /// `summary.method_passes`), field refinement rounds
    /// (`summary.field_rounds`), and the final [`SummaryStats`] as
    /// `summary.*` counters.
    pub fn compute_with_cfgs_obs<F>(
        methods: &[MethodInput<'_>],
        cfgs: &[Option<&Cfg>],
        classify: F,
        obs: &nck_obs::Obs,
    ) -> Summaries
    where
        F: FnMut(usize, StmtId, &InvokeExpr) -> CallKind,
    {
        Summaries::compute_incremental(methods, cfgs, classify, None, obs).0
    }

    /// The seeded engine behind both cold and warm computation.
    ///
    /// With `seed = None` every method is solved from the bottom — this
    /// *is* the cold path, so the two can never diverge. With
    /// `seed = Some((snapshot, dirty))`, methods outside `dirty` start
    /// from their cached round-0 summaries and contributions; dirty
    /// methods (changed bodies, changed callee resolution, or indices
    /// beyond the snapshot) are re-solved, and any summary movement
    /// dirties their callers through the component walk exactly as in a
    /// cold run. Recursive components touching the dirty set are reset
    /// wholesale to the bottom so their fixpoint iterates from the same
    /// starting point a cold run uses.
    ///
    /// Returns the summaries plus a fresh [`SummarySeed`] for the *next*
    /// run.
    pub fn compute_incremental<F>(
        methods: &[MethodInput<'_>],
        cfgs: &[Option<&Cfg>],
        mut classify: F,
        seed: Option<(&SummarySeed, &BTreeSet<usize>)>,
        obs: &nck_obs::Obs,
    ) -> (Summaries, SummarySeed)
    where
        F: FnMut(usize, StmtId, &InvokeExpr) -> CallKind,
    {
        let n = methods.len();
        assert_eq!(cfgs.len(), n, "one CFG slot per method");

        // Resolve every call site once.
        let mut kinds: Vec<BTreeMap<StmtId, CallKind>> = vec![BTreeMap::new(); n];
        for (m, input) in methods.iter().enumerate() {
            if let Some(body) = input.body {
                for (id, stmt) in body.iter() {
                    if let Some(inv) = stmt.invoke_expr() {
                        kinds[m].insert(id, classify(m, id, inv));
                    }
                }
            }
        }

        // App-internal call edges for the condensation.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (m, sites) in kinds.iter().enumerate() {
            for kind in sites.values() {
                if let CallKind::Callees(cs) = kind {
                    succs[m].extend(cs.iter().copied().filter(|&c| c < n));
                }
            }
            succs[m].sort_unstable();
            succs[m].dedup();
        }

        // Tarjan emits components callees-first: exactly bottom-up order.
        let components = tarjan_sccs(n, &succs);
        if obs.metrics.is_enabled() {
            for comp in &components {
                obs.metrics.observe("summary.scc_size", comp.len() as u64);
            }
        }
        // Fixpoint effort counters, written once at the end.
        let fixpoint_iters = std::cell::Cell::new(0u64);
        let method_passes = std::cell::Cell::new(0u64);

        // Reverse edges and self-loops drive the incremental recompute:
        // a changed summary only dirties its callers, and a singleton
        // component without a self-call needs exactly one pass.
        let self_loop: Vec<bool> = (0..n).map(|m| succs[m].binary_search(&m).is_ok()).collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (m, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(m);
            }
        }

        // Condensation-depth levels: level(c) = 1 + max level over callee
        // components (0 with none). Components at the same level share no
        // edges — an edge between components always strictly increases the
        // level — so they read only summaries frozen at level entry and
        // can be solved independently, in parallel. Tarjan emits callees
        // first, so callee levels are always computed before their
        // callers'.
        let mut comp_of = vec![0u32; n];
        for (ci, comp) in components.iter().enumerate() {
            for &m in comp {
                comp_of[m] = ci as u32;
            }
        }
        let mut comp_level = vec![0u32; components.len()];
        let mut max_level = 0u32;
        for (ci, comp) in components.iter().enumerate() {
            let mut lvl = 0;
            for &m in comp {
                for &s in &succs[m] {
                    let sc = comp_of[s] as usize;
                    if sc != ci {
                        lvl = lvl.max(comp_level[sc] + 1);
                    }
                }
            }
            comp_level[ci] = lvl;
            max_level = max_level.max(lvl);
        }
        let mut levels: Vec<Vec<usize>> = vec![
            Vec::new();
            if components.is_empty() {
                0
            } else {
                max_level as usize + 1
            }
        ];
        for (ci, &lvl) in comp_level.iter().enumerate() {
            levels[lvl as usize].push(ci);
        }

        // Which fields each method loads (field-round dirtying).
        let field_loads: Vec<Vec<FieldKey>> = methods
            .iter()
            .map(|input| {
                let mut loads = Vec::new();
                if let Some(body) = input.body {
                    for (_, stmt) in body.iter() {
                        if let Stmt::Assign {
                            rvalue:
                                Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field },
                            ..
                        } = stmt
                        {
                            loads.push(*field);
                        }
                    }
                }
                loads.sort_unstable();
                loads.dedup();
                loads
            })
            .collect();

        // Seed the lattice: clean methods start from the cached round-0
        // snapshot, everything else (and every method in an unseeded
        // run) from the bottom. `force` carries the initially dirty
        // methods: their callers must be revisited even when a re-solved
        // summary happens to equal the bottom it was seeded with,
        // because the *cached* caller value may have been computed
        // against a different callee summary in the previous run.
        let bottom_of = |m: usize| {
            if methods[m].body.is_some() {
                MethodSummary::bottom()
            } else {
                MethodSummary::opaque()
            }
        };
        let mut summaries: Vec<MethodSummary>;
        let mut contribs: Vec<BTreeMap<FieldKey, CVal>>;
        let mut dirty: BTreeSet<usize>;
        let mut force: BTreeSet<usize> = BTreeSet::new();
        match seed {
            Some((snapshot, changed)) => {
                let covered = |m: usize| m < snapshot.len() && m < snapshot.round0_contribs.len();
                dirty = changed.iter().copied().filter(|&m| m < n).collect();
                dirty.extend((0..n).filter(|&m| !covered(m)));
                // A recursive component touching the dirty set must
                // iterate from the bottom, as a cold run would; seeding
                // part of it mid-lattice could converge elsewhere.
                for comp in &components {
                    if (comp.len() > 1 || self_loop[comp[0]])
                        && comp.iter().any(|m| dirty.contains(m))
                    {
                        dirty.extend(comp.iter().copied());
                    }
                }
                summaries = (0..n)
                    .map(|m| {
                        if dirty.contains(&m) {
                            bottom_of(m)
                        } else {
                            snapshot.round0_summaries[m]
                        }
                    })
                    .collect();
                contribs = (0..n)
                    .map(|m| {
                        if dirty.contains(&m) {
                            BTreeMap::new()
                        } else {
                            snapshot.round0_contribs[m].clone()
                        }
                    })
                    .collect();
                force = dirty.clone();
                if obs.metrics.is_enabled() {
                    obs.metrics.inc("summary.seed_dirty", dirty.len() as u64);
                    obs.metrics
                        .inc("summary.seed_reused", (n - dirty.len()) as u64);
                }
            }
            None => {
                summaries = (0..n).map(bottom_of).collect();
                contribs = vec![BTreeMap::new(); n];
                dirty = (0..n).collect();
            }
        }
        let mut field_consts: BTreeMap<FieldKey, CVal> = BTreeMap::new();

        // Solves one component to fixpoint against a frozen summary
        // vector, without touching shared state — the unit of work for
        // both the sequential and the parallel recompute path. Returns
        // the final summary and field contribution per body-bearing
        // member, plus the members whose update branch fired (whose
        // callers must be dirtied) and the effort counters.
        struct CompOutcome {
            results: Vec<(usize, MethodSummary, BTreeMap<FieldKey, CVal>)>,
            touched: Vec<usize>,
            iters: u64,
            passes: u64,
        }
        let solve_comp = |ci: usize,
                          base: &[MethodSummary],
                          field_consts: &BTreeMap<FieldKey, CVal>,
                          force: &BTreeSet<usize>|
         -> CompOutcome {
            let comp = &components[ci];
            let mut out = CompOutcome {
                results: Vec::with_capacity(comp.len()),
                touched: Vec::new(),
                iters: 0,
                passes: 0,
            };
            let solve_one = |m: usize, body: &Body, view: &[MethodSummary]| {
                let cfg = cfgs[m].expect("cfg exists for body");
                let analysis = IpAnalysis {
                    n_locals: body.locals.len(),
                    is_static: methods[m].is_static,
                    kinds: &kinds[m],
                    summaries: view,
                    field_consts,
                };
                let sol = solve(body, cfg, &analysis);
                let s = summarize(body, &sol, &kinds[m], view);
                (s, field_contrib(body, &sol))
            };
            if comp.len() == 1 && !self_loop[comp[0]] {
                // A non-recursive singleton cannot feed itself: one pass
                // against the frozen base suffices (it never reads its
                // own entry), no confirmation iteration needed.
                out.iters = 1;
                let m = comp[0];
                if let Some(body) = methods[m].body {
                    out.passes = 1;
                    let (s, contrib) = solve_one(m, body, base);
                    if s != base[m] || force.contains(&m) {
                        out.touched.push(m);
                    }
                    out.results.push((m, s, contrib));
                }
            } else {
                // Recursive component: members read each other's working
                // summaries, so iterate on a private copy of the vector.
                let mut local: Vec<MethodSummary> = base.to_vec();
                let mut latest: BTreeMap<usize, BTreeMap<FieldKey, CVal>> = BTreeMap::new();
                for _ in 0..MAX_SCC_ITERS {
                    out.iters += 1;
                    let mut changed = false;
                    for &m in comp {
                        let Some(body) = methods[m].body else {
                            continue;
                        };
                        out.passes += 1;
                        let (s, contrib) = solve_one(m, body, &local);
                        if s != local[m] || force.contains(&m) {
                            if s != local[m] {
                                changed = true;
                            }
                            local[m] = s;
                            if !out.touched.contains(&m) {
                                out.touched.push(m);
                            }
                        }
                        latest.insert(m, contrib);
                    }
                    if !changed {
                        break;
                    }
                }
                for &m in comp {
                    if let Some(contrib) = latest.remove(&m) {
                        out.results.push((m, local[m], contrib));
                    }
                }
            }
            out
        };

        // Recomputes the methods in `dirty` (bottom-up, level by level);
        // a summary change dirties the method's callers, which always
        // live at a later level (or in the same recursive component).
        // Within a level the active components are independent, so when
        // the level carries enough work they are solved on scoped worker
        // threads; outcomes are applied in component-index order either
        // way, which replicates the sequential schedule exactly.
        let recompute = |summaries: &mut Vec<MethodSummary>,
                         contribs: &mut Vec<BTreeMap<FieldKey, CVal>>,
                         field_consts: &BTreeMap<FieldKey, CVal>,
                         dirty: &mut BTreeSet<usize>,
                         force: &BTreeSet<usize>| {
            for level in &levels {
                let active: Vec<usize> = level
                    .iter()
                    .copied()
                    .filter(|&ci| components[ci].iter().any(|m| dirty.contains(m)))
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let apply = |outcome: CompOutcome,
                             summaries: &mut Vec<MethodSummary>,
                             contribs: &mut Vec<BTreeMap<FieldKey, CVal>>,
                             dirty: &mut BTreeSet<usize>| {
                    fixpoint_iters.set(fixpoint_iters.get() + outcome.iters);
                    method_passes.set(method_passes.get() + outcome.passes);
                    for (m, s, contrib) in outcome.results {
                        summaries[m] = s;
                        contribs[m] = contrib;
                    }
                    for m in outcome.touched {
                        dirty.extend(preds[m].iter().copied());
                    }
                };
                let level_stmts: usize = active
                    .iter()
                    .flat_map(|&ci| components[ci].iter())
                    .map(|&m| methods[m].body.map_or(0, |b| b.len()))
                    .sum();
                let workers = par_workers().min(active.len());
                if workers > 1 && active.len() >= PAR_MIN_COMPS && level_stmts >= PAR_MIN_STMTS {
                    // Heavy level: stripe the active components across
                    // scoped threads against the frozen summary vector.
                    // The span sits on this thread; worker outcomes carry
                    // the counters back.
                    let span = obs.tracer.span("scc_level_parallel");
                    span.add_items(active.len() as u64);
                    let frozen: &[MethodSummary] = summaries;
                    let active_ref = &active;
                    let solve_comp_ref = &solve_comp;
                    let mut slots: Vec<Option<CompOutcome>> =
                        (0..active.len()).map(|_| None).collect();
                    crossbeam::scope(|scope| {
                        let mut handles = Vec::with_capacity(workers);
                        for w in 0..workers {
                            handles.push(scope.spawn(move |_| {
                                let mut done = Vec::new();
                                let mut i = w;
                                while i < active_ref.len() {
                                    done.push((
                                        i,
                                        solve_comp_ref(active_ref[i], frozen, field_consts, force),
                                    ));
                                    i += workers;
                                }
                                done
                            }));
                        }
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("scc worker"))
                            .collect::<Vec<_>>()
                    })
                    .expect("scc scope")
                    .into_iter()
                    .for_each(|(i, outcome)| slots[i] = Some(outcome));
                    for outcome in slots {
                        apply(
                            outcome.expect("every component solved"),
                            summaries,
                            contribs,
                            dirty,
                        );
                    }
                } else {
                    for &ci in &active {
                        let span =
                            (components[ci].len() > 1).then(|| obs.tracer.span("scc_fixpoint"));
                        if let Some(s) = &span {
                            s.add_items(components[ci].len() as u64);
                        }
                        let outcome = solve_comp(ci, summaries, field_consts, force);
                        apply(outcome, summaries, contribs, dirty);
                    }
                }
            }
        };

        // Field-constant refinement: summaries and the field map feed
        // each other, so alternate until the map is stable (2 rounds in
        // practice: one to see the stores, one to use them). Later
        // rounds only revisit methods that load a changed field, plus
        // the transitive callers of anything that shifted.
        let mut stable = false;
        let mut field_rounds = 0u64;
        // Post-round-0 snapshot: per-method summaries plus per-method
        // field-constant contributions, the seed for an incremental run.
        type Round0 = (Vec<MethodSummary>, Vec<BTreeMap<FieldKey, CVal>>);
        let mut round0: Option<Round0> = None;
        for _ in 0..MAX_FIELD_ROUNDS {
            field_rounds += 1;
            let _round = obs.tracer.span("field_round");
            recompute(
                &mut summaries,
                &mut contribs,
                &field_consts,
                &mut dirty,
                &force,
            );
            if round0.is_none() {
                // Snapshot the post-round-0 state (the seed for a later
                // incremental run) before refinement perturbs it.
                round0 = Some((summaries.clone(), contribs.clone()));
                force = BTreeSet::new();
            }
            let next = merge_contribs(&contribs);
            if next == field_consts {
                stable = true;
                break;
            }
            dirty = (0..n)
                .filter(|&m| {
                    field_loads[m].iter().any(|f| {
                        next.get(f).copied().unwrap_or(CVal::Undef)
                            != field_consts.get(f).copied().unwrap_or(CVal::Undef)
                    })
                })
                .collect();
            field_consts = next;
        }
        if !stable {
            field_rounds += 1;
            let _round = obs.tracer.span("field_round");
            let mut all: BTreeSet<usize> = (0..n).collect();
            recompute(
                &mut summaries,
                &mut contribs,
                &field_consts,
                &mut all,
                &force,
            );
        }

        let stats = SummaryStats {
            methods: methods.iter().filter(|i| i.body.is_some()).count(),
            sccs: components.len(),
            largest_scc: components.iter().map(Vec::len).max().unwrap_or(0),
            const_returns: summaries
                .iter()
                .zip(methods)
                .filter(|(s, i)| {
                    i.body.is_some()
                        && matches!(s.const_return, CVal::Int(_) | CVal::Str(_) | CVal::Null)
                })
                .count(),
            field_consts: field_consts
                .values()
                .filter(|v| matches!(v, CVal::Int(_) | CVal::Str(_) | CVal::Null))
                .count(),
        };

        if obs.metrics.is_enabled() {
            obs.metrics.inc("summary.methods", stats.methods as u64);
            obs.metrics.inc("summary.sccs", stats.sccs as u64);
            obs.metrics
                .gauge("summary.largest_scc", stats.largest_scc as i64);
            obs.metrics
                .inc("summary.const_returns", stats.const_returns as u64);
            obs.metrics
                .inc("summary.field_consts", stats.field_consts as u64);
            obs.metrics
                .inc("summary.fixpoint_iters", fixpoint_iters.get());
            obs.metrics
                .inc("summary.method_passes", method_passes.get());
            obs.metrics.inc("summary.field_rounds", field_rounds);
        }

        let (round0_summaries, round0_contribs) = round0.unwrap_or_default();
        (
            Summaries {
                summaries,
                field_consts,
                stats,
                hits: AtomicUsize::new(0),
            },
            SummarySeed {
                round0_summaries,
                round0_contribs,
            },
        )
    }

    /// Number of methods covered (dense-index space).
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Whether the app had no methods at all.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// The summary for method index `m`. Counts as a cache hit.
    pub fn summary(&self, m: usize) -> &MethodSummary {
        self.hits.fetch_add(1, Ordering::Relaxed);
        &self.summaries[m]
    }

    /// The app-wide constant value of `field` (the join of every store
    /// to it), or `NonConst` if unknown. Counts as a cache hit.
    pub fn field_const(&self, field: &FieldKey) -> CVal {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.field_consts
            .get(field)
            .copied()
            .unwrap_or(CVal::NonConst)
    }

    /// Statistics from the computation.
    pub fn stats(&self) -> SummaryStats {
        self.stats
    }

    /// Number of summary/field lookups served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// The per-method abstract interpretation, run flow-sensitively through
/// the shared worklist [`solve`]r (same shape as `constprop`, with
/// strong updates at each definition so register reuse doesn't smear
/// values together). Reads the current callee summaries and field map;
/// the enclosing SCC loop re-runs it until summaries stabilize.
struct IpAnalysis<'x> {
    n_locals: usize,
    is_static: bool,
    kinds: &'x BTreeMap<StmtId, CallKind>,
    summaries: &'x [MethodSummary],
    field_consts: &'x BTreeMap<FieldKey, CVal>,
}

impl Analysis for IpAnalysis<'_> {
    type Fact = Vec<AVal>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> Vec<AVal> {
        vec![BOTTOM; self.n_locals]
    }

    fn join(&self, fact: &mut Vec<AVal>, other: &Vec<AVal>) -> bool {
        let mut changed = false;
        for (a, &b) in fact.iter_mut().zip(other) {
            let new = a.join(b);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    fn transfer(&self, id: StmtId, stmt: &Stmt, fact: &mut Vec<AVal>) {
        let this_offset: u16 = if self.is_static { 0 } else { 1 };
        let (local, val) = match stmt {
            Stmt::Identity { local, kind } => {
                let val = match kind {
                    IdentityKind::This if !self.is_static => AVal {
                        cval: CVal::NonConst,
                        ident: Some(0),
                        args: arg_bit(0),
                        source: false,
                    },
                    IdentityKind::Param(i) => {
                        let pos = i.saturating_add(this_offset);
                        AVal {
                            cval: CVal::NonConst,
                            ident: Some(pos),
                            args: arg_bit(pos),
                            source: false,
                        }
                    }
                    _ => OPAQUE,
                };
                (*local, val)
            }
            Stmt::Assign { local, rvalue } => {
                let val = match rvalue {
                    Rvalue::Use(op) => eval(fact, *op),
                    Rvalue::BinOp { op, a, b } => {
                        let va = eval(fact, *a);
                        let vb = eval(fact, *b);
                        let cval = match (va.cval, vb.cval) {
                            (CVal::Int(x), CVal::Int(y)) => {
                                op.eval(x, y).map(CVal::Int).unwrap_or(CVal::NonConst)
                            }
                            _ => CVal::NonConst,
                        };
                        AVal {
                            cval,
                            ident: None,
                            args: va.args | vb.args,
                            source: va.source || vb.source,
                        }
                    }
                    Rvalue::UnOp { op, a } => {
                        let va = eval(fact, *a);
                        let cval = match va.cval {
                            CVal::Int(x) => CVal::Int(match op {
                                nck_dex::UnOp::Neg => x.wrapping_neg(),
                                nck_dex::UnOp::Not => !x,
                            }),
                            _ => CVal::NonConst,
                        };
                        AVal {
                            cval,
                            ident: None,
                            args: va.args,
                            source: va.source,
                        }
                    }
                    Rvalue::Cast { op, .. } => eval(fact, *op),
                    Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field } => {
                        AVal::constant(
                            self.field_consts
                                .get(field)
                                .copied()
                                .unwrap_or(CVal::NonConst),
                        )
                    }
                    Rvalue::Invoke(inv) => {
                        invoke_result(self.kinds.get(&id), inv, fact, self.summaries)
                    }
                    _ => OPAQUE,
                };
                (*local, val)
            }
            _ => return,
        };
        if let Some(slot) = fact.get_mut(local.0 as usize) {
            *slot = val;
        }
    }
}

/// The abstract result of a call, substituting caller arguments into the
/// callee summary.
fn invoke_result(
    kind: Option<&CallKind>,
    inv: &InvokeExpr,
    env: &[AVal],
    summaries: &[MethodSummary],
) -> AVal {
    match kind {
        Some(CallKind::Source) => AVal {
            source: true,
            ..OPAQUE
        },
        Some(CallKind::Callees(cs)) if !cs.is_empty() => {
            let mut out = BOTTOM;
            for &c in cs {
                let Some(s) = summaries.get(c) else {
                    return OPAQUE;
                };
                let mut r = AVal {
                    cval: s.const_return,
                    ident: None,
                    args: 0,
                    source: s.return_from_source,
                };
                if let Some(k) = s.return_ident_arg {
                    // The callee returns argument `k` verbatim: the
                    // result is exactly our value for that argument.
                    if let Some(&arg) = inv.args.get(k as usize) {
                        let a = eval(env, arg);
                        r = AVal {
                            source: r.source || a.source,
                            ..a
                        };
                    }
                } else {
                    for j in 0..inv.args.len().min(32) {
                        if s.return_from_args & (1 << j) != 0 {
                            let a = eval(env, inv.args[j]);
                            r.args |= a.args;
                            r.source |= a.source;
                        }
                    }
                }
                out = out.join(r);
            }
            out
        }
        _ => OPAQUE,
    }
}

/// Derives the summary of one method from its flow-sensitive solution.
fn summarize(
    body: &Body,
    sol: &Solution<Vec<AVal>>,
    kinds: &BTreeMap<StmtId, CallKind>,
    summaries: &[MethodSummary],
) -> MethodSummary {
    let mut ret = BOTTOM;
    let mut branches_on_source = false;
    let mut args_checked = 0u32;
    let mut calls_source = false;

    for (id, stmt) in body.iter() {
        let env: &[AVal] = sol.before(id);
        match stmt {
            Stmt::Return { value: Some(op) } => ret = ret.join(eval(env, *op)),
            Stmt::If { cond, a, b, .. } => {
                let va = eval(env, *a);
                let vb = eval(env, *b);
                if va.source || vb.source {
                    branches_on_source = true;
                }
                // `p == null` / `p != null` / `p ==/!= 0` style tests
                // count as checking argument position p.
                if matches!(cond, CondOp::Eq | CondOp::Ne) {
                    for (x, y) in [(va, vb), (vb, va)] {
                        if let Some(p) = x.ident {
                            if matches!(y.cval, CVal::Null | CVal::Int(0)) {
                                args_checked |= arg_bit(p);
                            }
                        }
                    }
                }
            }
            Stmt::Switch { key, .. } if eval(env, *key).source => {
                branches_on_source = true;
            }
            _ => {}
        }
        if let Some(inv) = stmt.invoke_expr() {
            match kinds.get(&id) {
                Some(CallKind::Source) => calls_source = true,
                Some(CallKind::CheckSink) => {
                    if let Some(recv) = inv.receiver() {
                        if let Some(p) = eval(env, recv).ident {
                            args_checked |= arg_bit(p);
                        }
                    }
                }
                Some(CallKind::Callees(cs)) if !cs.is_empty() => {
                    if cs
                        .iter()
                        .any(|&c| summaries.get(c).is_some_and(|s| s.calls_source))
                    {
                        calls_source = true;
                    }
                    // Forwarding our argument to a position every callee
                    // checks means we check it too.
                    for (j, &arg) in inv.args.iter().enumerate().take(32) {
                        if let Some(p) = eval(env, arg).ident {
                            if cs
                                .iter()
                                .all(|&c| summaries.get(c).is_some_and(|s| s.checks_arg(j)))
                            {
                                args_checked |= arg_bit(p);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    MethodSummary {
        const_return: ret.cval,
        return_ident_arg: ret.ident,
        return_from_args: ret.args,
        return_from_source: ret.source,
        branches_on_source,
        args_checked,
        calls_source,
    }
}

/// Joins every store this one method makes to each field: its reusable
/// contribution to the app-wide field-constant map. The field lattice
/// join is associative and commutative, so merging per-method
/// contributions reproduces the global fold exactly — and a method whose
/// body did not change keeps its cached contribution verbatim.
fn field_contrib(body: &Body, sol: &Solution<Vec<AVal>>) -> BTreeMap<FieldKey, CVal> {
    let mut map: BTreeMap<FieldKey, CVal> = BTreeMap::new();
    for (id, stmt) in body.iter() {
        let (field, value) = match stmt {
            Stmt::StoreInstanceField { field, value, .. } => (field, value),
            Stmt::StoreStaticField { field, value } => (field, value),
            _ => continue,
        };
        let v = eval(sol.before(id), *value).cval;
        map.entry(*field)
            .and_modify(|e| *e = e.join(v))
            .or_insert(v);
    }
    map
}

/// Merges per-method field contributions into the app-wide constant map.
fn merge_contribs(contribs: &[BTreeMap<FieldKey, CVal>]) -> BTreeMap<FieldKey, CVal> {
    let mut map: BTreeMap<FieldKey, CVal> = BTreeMap::new();
    for contrib in contribs {
        for (&field, &v) in contrib {
            map.entry(field).and_modify(|e| *e = e.join(v)).or_insert(v);
        }
    }
    map
}

/// Iterative Tarjan SCC. Components are emitted callees-first (reverse
/// topological order of the condensation), which is exactly the order a
/// bottom-up summary computation wants. Public because the callgraph's
/// multi-source reachability sweep condenses on the same routine.
pub fn tarjan_sccs(n: usize, succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, pi)) = frames.last() {
            if pi == 0 && index[v] == UNVISITED {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let mut pushed = false;
            let mut i = pi;
            while i < succs[v].len() {
                let w = succs[v][i];
                i += 1;
                if index[w] == UNVISITED {
                    frames.last_mut().expect("frame present").1 = i;
                    frames.push((w, 0));
                    pushed = true;
                    break;
                }
                if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if pushed {
                continue;
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                components.push(comp);
            }
            frames.pop();
            if let Some(&(u, _)) = frames.last() {
                low[u] = low[u].min(low[v]);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::{AccessFlags, BinOp, CondOp as Op};
    use nck_ir::body::Program;

    const CONN: &str = "Lnet/Conn;";
    const SINK: &str = "Lresp/R;";

    fn lift(b: AdxBuilder) -> Program {
        nck_ir::lift_file(&b.finish().unwrap()).unwrap()
    }

    fn compute(p: &Program) -> Summaries {
        let inputs: Vec<MethodInput<'_>> = p
            .methods
            .iter()
            .map(|m| MethodInput {
                body: m.body.as_deref(),
                is_static: m.flags.contains(AccessFlags::STATIC),
            })
            .collect();
        Summaries::compute(&inputs, |_, _, inv| {
            let class = p.symbols.resolve(inv.callee.class);
            if class == CONN {
                CallKind::Source
            } else if class == SINK {
                CallKind::CheckSink
            } else if let Some(id) = p.lookup_method(inv.callee) {
                CallKind::Callees(vec![id.0 as usize])
            } else {
                CallKind::Opaque
            }
        })
    }

    fn idx(p: &Program, class: &str, name: &str) -> usize {
        p.iter_methods()
            .find(|(_, m)| {
                p.symbols.resolve(m.key.class) == class && p.symbols.resolve(m.key.name) == name
            })
            .map(|(id, _)| id.0 as usize)
            .unwrap()
    }

    #[test]
    fn constant_returns_fold_through_call_chains() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.method(
                "base",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 7);
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "mid",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.invoke_static("Lapp/A;", "base", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.const_int(m.reg(1), 1);
                    m.binop(BinOp::Add, m.reg(0), m.reg(0), m.reg(1));
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "top",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.invoke_static("Lapp/A;", "mid", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.binop_lit(BinOp::Mul, m.reg(0), m.reg(0), 2);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        assert_eq!(
            s.summary(idx(&p, "Lapp/A;", "base")).const_return,
            CVal::Int(7)
        );
        assert_eq!(
            s.summary(idx(&p, "Lapp/A;", "mid")).const_return,
            CVal::Int(8)
        );
        assert_eq!(
            s.summary(idx(&p, "Lapp/A;", "top")).const_return,
            CVal::Int(16)
        );
        assert_eq!(s.stats().const_returns, 3);
        assert!(s.hits() >= 3);
    }

    #[test]
    fn mutual_recursion_reaches_a_fixpoint() {
        // f() { return cond ? 3 : g(); }  g() { return f(); } — both
        // only ever return 3, and they form one SCC of size 2.
        let mut b = AdxBuilder::new();
        b.class("Lapp/R;", |c| {
            c.method(
                "f",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    let other = m.new_label();
                    m.const_int(m.reg(0), 3);
                    m.ifz(Op::Eq, m.reg(0), other);
                    m.ret(Some(m.reg(0)));
                    m.bind(other);
                    m.invoke_static("Lapp/R;", "g", "()I", &[]);
                    m.move_result(m.reg(1));
                    m.ret(Some(m.reg(1)));
                },
            );
            c.method(
                "g",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.invoke_static("Lapp/R;", "f", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        assert_eq!(
            s.summary(idx(&p, "Lapp/R;", "f")).const_return,
            CVal::Int(3)
        );
        assert_eq!(
            s.summary(idx(&p, "Lapp/R;", "g")).const_return,
            CVal::Int(3)
        );
        assert_eq!(s.stats().largest_scc, 2);
    }

    #[test]
    fn guard_wrappers_derive_connectivity() {
        // isOnline() { return Conn.up(); } — a classic guard wrapper;
        // use() branches on its result without returning it.
        let mut b = AdxBuilder::new();
        b.class("Lapp/G;", |c| {
            c.method(
                "isOnline",
                "()Z",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.invoke_static(CONN, "up", "()Z", &[]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "use",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    let out = m.new_label();
                    m.invoke_static("Lapp/G;", "isOnline", "()Z", &[]);
                    m.move_result(m.reg(0));
                    m.ifz(Op::Eq, m.reg(0), out);
                    m.bind(out);
                    m.ret(None);
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        let wrapper = s.summary(idx(&p, "Lapp/G;", "isOnline"));
        assert!(wrapper.return_from_source);
        assert!(wrapper.calls_source);
        assert!(wrapper.returns_connectivity());
        let user = s.summary(idx(&p, "Lapp/G;", "use"));
        assert!(user.branches_on_source);
        assert!(user.calls_source);
        assert!(!user.return_from_source);
    }

    #[test]
    fn identity_passthrough_substitutes_caller_arguments() {
        // id(x) { return x; }  caller() { return id(5); }
        let mut b = AdxBuilder::new();
        b.class("Lapp/P;", |c| {
            c.method(
                "id",
                "(I)I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    let p0 = m.param(0).unwrap();
                    m.ret(Some(p0));
                },
            );
            c.method(
                "caller",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 5);
                    m.invoke_static("Lapp/P;", "id", "(I)I", &[m.reg(0)]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        assert_eq!(
            s.summary(idx(&p, "Lapp/P;", "id")).return_ident_arg,
            Some(0)
        );
        assert_eq!(
            s.summary(idx(&p, "Lapp/P;", "caller")).const_return,
            CVal::Int(5)
        );
    }

    #[test]
    fn argument_checks_propagate_through_forwarders() {
        // check(r) { if (r == null) return 0; return 1; } null-tests
        // param 0; forward(r) { return check(r); } inherits the check;
        // sink(r) { r.ok(); } checks via the recognized check API.
        let mut b = AdxBuilder::new();
        b.class("Lapp/C;", |c| {
            c.method(
                "check",
                "(Lresp/R;)I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    let isnull = m.new_label();
                    let p0 = m.param(0).unwrap();
                    m.ifz(Op::Eq, p0, isnull);
                    m.const_int(m.reg(0), 1);
                    m.ret(Some(m.reg(0)));
                    m.bind(isnull);
                    m.const_int(m.reg(0), 0);
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "forward",
                "(Lresp/R;)I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    let p0 = m.param(0).unwrap();
                    m.invoke_static("Lapp/C;", "check", "(Lresp/R;)I", &[p0]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "sink",
                "(Lresp/R;)V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    let p0 = m.param(0).unwrap();
                    m.invoke_virtual(SINK, "ok", "()Z", &[p0]);
                    m.ret(None);
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        assert!(s.summary(idx(&p, "Lapp/C;", "check")).checks_arg(0));
        assert!(s.summary(idx(&p, "Lapp/C;", "forward")).checks_arg(0));
        assert!(s.summary(idx(&p, "Lapp/C;", "sink")).checks_arg(0));
    }

    #[test]
    fn instance_helpers_shift_params_past_the_receiver() {
        // Instance helper: argument position 0 is the receiver, the
        // checked response is position 1.
        let mut b = AdxBuilder::new();
        b.class("Lapp/I;", |c| {
            c.method("check", "(Lresp/R;)Z", AccessFlags::PUBLIC, 2, |m| {
                let isnull = m.new_label();
                let p1 = m.param(1).unwrap();
                m.ifz(Op::Eq, p1, isnull);
                m.const_int(m.reg(0), 1);
                m.ret(Some(m.reg(0)));
                m.bind(isnull);
                m.const_int(m.reg(0), 0);
                m.ret(Some(m.reg(0)));
            });
        });
        let p = lift(b);
        let s = compute(&p);
        let sum = s.summary(idx(&p, "Lapp/I;", "check"));
        assert!(sum.checks_arg(1));
        assert!(!sum.checks_arg(0));
    }

    #[test]
    fn field_constants_resolve_getter_returns() {
        // <init> stores 42 into this.t once; getT() { return this.t; }
        // resolves through the app-wide field-constant map (round 2).
        let mut b = AdxBuilder::new();
        b.class("Lapp/F;", |c| {
            c.method("<init>", "()V", AccessFlags::PUBLIC, 2, |m| {
                let this = m.param(0).unwrap();
                m.const_int(m.reg(0), 42);
                m.iput(m.reg(0), this, "Lapp/F;", "t", "I");
                m.ret(None);
            });
            c.method("getT", "()I", AccessFlags::PUBLIC, 2, |m| {
                let this = m.param(0).unwrap();
                m.iget(m.reg(0), this, "Lapp/F;", "t", "I");
                m.ret(Some(m.reg(0)));
            });
        });
        let p = lift(b);
        let s = compute(&p);
        assert_eq!(
            s.summary(idx(&p, "Lapp/F;", "getT")).const_return,
            CVal::Int(42)
        );
        assert_eq!(s.stats().field_consts, 1);
    }

    #[test]
    fn conflicting_field_stores_stay_nonconst() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/F2;", |c| {
            c.method(
                "a",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 1);
                    m.sput(m.reg(0), "Lapp/F2;", "t", "I");
                    m.ret(None);
                },
            );
            c.method(
                "b",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 2);
                    m.sput(m.reg(0), "Lapp/F2;", "t", "I");
                    m.ret(None);
                },
            );
            c.method(
                "get",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.sget(m.reg(0), "Lapp/F2;", "t", "I");
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        assert_eq!(
            s.summary(idx(&p, "Lapp/F2;", "get")).const_return,
            CVal::NonConst
        );
        assert_eq!(s.stats().field_consts, 0);
    }

    #[test]
    fn bodiless_methods_are_opaque() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/O;", |c| {
            c.method(
                "f",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 9);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let mut p = lift(b);
        // Simulate an abstract sibling by erasing the body.
        let id = idx(&p, "Lapp/O;", "f");
        p.methods[id].body = None;
        let s = compute(&p);
        assert_eq!(s.summary(id).const_return, CVal::NonConst);
        assert!(!s.summary(id).calls_source);
    }

    #[test]
    fn deep_wrapper_chains_keep_connectivity() {
        // w5 -> w4 -> w3 -> w2 -> w1 -> Conn.up(), all passing the
        // result straight through.
        let mut b = AdxBuilder::new();
        b.class("Lapp/D;", |c| {
            c.method(
                "w1",
                "()Z",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.invoke_static(CONN, "up", "()Z", &[]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
            for d in 2..=5 {
                let name = format!("w{d}");
                let inner = format!("w{}", d - 1);
                c.method(
                    &name,
                    "()Z",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    1,
                    |m| {
                        m.invoke_static("Lapp/D;", &inner, "()Z", &[]);
                        m.move_result(m.reg(0));
                        m.ret(Some(m.reg(0)));
                    },
                );
            }
        });
        let p = lift(b);
        let s = compute(&p);
        for d in 1..=5 {
            let sum = s.summary(idx(&p, "Lapp/D;", &format!("w{d}")));
            assert!(sum.return_from_source, "w{d} must derive from the source");
            assert!(sum.calls_source, "w{d} must transitively call the source");
        }
    }

    #[test]
    fn unresolved_calls_are_opaque_results() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/U;", |c| {
            c.method(
                "f",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.invoke_static("Llib/Unknown;", "g", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let p = lift(b);
        let s = compute(&p);
        let sum = s.summary(idx(&p, "Lapp/U;", "f"));
        assert_eq!(sum.const_return, CVal::NonConst);
        assert!(!sum.return_from_source);
    }

    fn compute_seeded(
        p: &Program,
        seed: Option<(&SummarySeed, &BTreeSet<usize>)>,
        obs: &nck_obs::Obs,
    ) -> (Summaries, SummarySeed) {
        let inputs: Vec<MethodInput<'_>> = p
            .methods
            .iter()
            .map(|m| MethodInput {
                body: m.body.as_deref(),
                is_static: m.flags.contains(AccessFlags::STATIC),
            })
            .collect();
        let owned: Vec<Option<Cfg>> = inputs.iter().map(|i| i.body.map(Cfg::build)).collect();
        let cfgs: Vec<Option<&Cfg>> = owned.iter().map(Option::as_ref).collect();
        Summaries::compute_incremental(
            &inputs,
            &cfgs,
            |_, _, inv| {
                let class = p.symbols.resolve(inv.callee.class);
                if class == CONN {
                    CallKind::Source
                } else if class == SINK {
                    CallKind::CheckSink
                } else if let Some(id) = p.lookup_method(inv.callee) {
                    CallKind::Callees(vec![id.0 as usize])
                } else {
                    CallKind::Opaque
                }
            },
            seed,
            obs,
        )
    }

    /// The `base → mid → top` chain of
    /// [`constant_returns_fold_through_call_chains`], with `base`'s
    /// constant as a parameter, plus one method with no call edges at
    /// all.
    fn chain_program(base_const: i64) -> Program {
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.method(
                "base",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                move |m| {
                    m.const_int(m.reg(0), base_const);
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "mid",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.invoke_static("Lapp/A;", "base", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.binop_lit(BinOp::Add, m.reg(0), m.reg(0), 1);
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "top",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.invoke_static("Lapp/A;", "mid", "()I", &[]);
                    m.move_result(m.reg(0));
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        b.class("Lapp/B;", |c| {
            c.method(
                "loner",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                1,
                |m| {
                    m.const_int(m.reg(0), 42);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        lift(b)
    }

    #[test]
    fn dirty_callee_invalidates_cached_callers_transitively() {
        // Version 1: base() = 7, so mid() = 8 and top() = 8 through the
        // chain. Snapshot the seed.
        let v1 = chain_program(7);
        let (s1, seed1) = compute_seeded(&v1, None, &nck_obs::Obs::disabled());
        assert_eq!(
            s1.summary(idx(&v1, "Lapp/A;", "top")).const_return,
            CVal::Int(8)
        );

        // Version 2 changes only base(); the incremental dirty set is
        // exactly {base} — mid and top are "cached" but must still move
        // because dirtiness propagates along reverse call edges.
        let v2 = chain_program(20);
        let dirty: BTreeSet<usize> = [idx(&v2, "Lapp/A;", "base")].into_iter().collect();
        let obs = nck_obs::Obs::enabled();
        let (warm, _) = compute_seeded(&v2, Some((&seed1, &dirty)), &obs);
        let (cold, _) = compute_seeded(&v2, None, &nck_obs::Obs::disabled());

        for name in ["base", "mid", "top"] {
            let i = idx(&v2, "Lapp/A;", name);
            assert_eq!(
                warm.summary(i).const_return,
                cold.summary(i).const_return,
                "warm {name} must match cold"
            );
        }
        assert_eq!(
            warm.summary(idx(&v2, "Lapp/A;", "top")).const_return,
            CVal::Int(21)
        );

        // The method with no path to the dirty set kept its seeded
        // summary: the engine reports at least one seed reuse.
        assert_eq!(
            warm.summary(idx(&v2, "Lapp/B;", "loner")).const_return,
            CVal::Int(42)
        );
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counters
                .get("summary.seed_reused")
                .copied()
                .unwrap_or(0)
                >= 1,
            "loner should be served from the seed: {:?}",
            snap.counters
        );
    }
}
