//! Reaching definitions and the def-use chains derived from them.

use crate::bitset::BitSet;
use crate::solver::{solve, Analysis, Direction, Solution};
use nck_ir::body::{Body, LocalId, Stmt, StmtId};
use nck_ir::cfg::Cfg;

/// Sentinel for "this statement defines nothing".
const NO_DEF: u32 = u32::MAX;

struct RdAnalysis<'a> {
    n_defs: usize,
    /// Dense def index per statement (`NO_DEF` for non-defining stmts).
    def_at: &'a [u32],
    /// Per-local kill mask: every def index of that local (including the
    /// defining statement's own, which is re-inserted after the subtract).
    kills: &'a [BitSet],
}

impl Analysis for RdAnalysis<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.n_defs)
    }

    fn join(&self, fact: &mut BitSet, other: &BitSet) -> bool {
        fact.union_with(other)
    }

    fn transfer(&self, id: StmtId, stmt: &Stmt, fact: &mut BitSet) {
        if let Some(local) = stmt.def() {
            fact.subtract(&self.kills[local.0 as usize]);
            let d = self.def_at[id.index()];
            if d != NO_DEF {
                fact.insert(d as usize);
            }
        }
    }
}

/// The reaching-definitions solution of one body.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    solution: Solution<BitSet>,
    /// Definition sites in discovery order: `(stmt, defined local)`.
    pub def_sites: Vec<(StmtId, LocalId)>,
    def_at: Vec<u32>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `body`.
    pub fn compute(body: &Body, cfg: &Cfg) -> ReachingDefs {
        let mut def_sites = Vec::new();
        let mut def_at = vec![NO_DEF; body.len()];
        for (id, stmt) in body.iter() {
            if let Some(local) = stmt.def() {
                def_at[id.index()] = def_sites.len() as u32;
                def_sites.push((id, local));
            }
        }
        let mut kills: Vec<BitSet> = vec![BitSet::new(def_sites.len()); body.locals.len()];
        for (d, &(_, local)) in def_sites.iter().enumerate() {
            kills[local.0 as usize].insert(d);
        }
        let analysis = RdAnalysis {
            n_defs: def_sites.len(),
            def_at: &def_at,
            kills: &kills,
        };
        let solution = solve(body, cfg, &analysis);
        ReachingDefs {
            solution,
            def_sites,
            def_at,
        }
    }

    /// Returns the definition statements of `local` that reach the point
    /// just before `at`.
    pub fn reaching(&self, at: StmtId, local: LocalId) -> Vec<StmtId> {
        self.solution
            .before(at)
            .iter()
            .filter_map(|d| {
                let (stmt, l) = self.def_sites[d];
                (l == local).then_some(stmt)
            })
            .collect()
    }

    /// Returns every use statement reached by the definition at `def`.
    pub fn uses_of(&self, body: &Body, def: StmtId) -> Vec<StmtId> {
        let d = match self.def_at.get(def.index()) {
            Some(&d) if d != NO_DEF => d as usize,
            _ => return vec![],
        };
        let (_, local) = self.def_sites[d];
        body.iter()
            .filter(|(id, stmt)| {
                let mut uses_local = false;
                stmt.for_each_use(|u| uses_local |= u == local);
                uses_local && self.solution.before(*id).contains(d)
            })
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::CondOp;
    use nck_ir::body::{LocalDecl, Operand, Rvalue};

    fn two_defs_one_use() -> Body {
        // 0: v0 = 1
        // 1: if ... -> 3
        // 2: v0 = 2
        // 3: return v0
        Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::Local(LocalId(0)),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(0))),
                },
            ],
            traps: vec![],
        }
    }

    #[test]
    fn both_definitions_reach_the_join() {
        let body = two_defs_one_use();
        let cfg = Cfg::build(&body);
        let rd = ReachingDefs::compute(&body, &cfg);
        let defs = rd.reaching(StmtId(3), LocalId(0));
        assert_eq!(defs, vec![StmtId(0), StmtId(2)]);
    }

    #[test]
    fn redefinition_kills() {
        let body = two_defs_one_use();
        let cfg = Cfg::build(&body);
        let rd = ReachingDefs::compute(&body, &cfg);
        // Just after stmt 2 (i.e. before 3 along that path) only def 2
        // should reach — but before stmt 2, def 0 reaches.
        let defs_before_2 = rd.reaching(StmtId(2), LocalId(0));
        assert_eq!(defs_before_2, vec![StmtId(0)]);
    }

    #[test]
    fn uses_of_def_found() {
        let body = two_defs_one_use();
        let cfg = Cfg::build(&body);
        let rd = ReachingDefs::compute(&body, &cfg);
        let uses = rd.uses_of(&body, StmtId(0));
        assert_eq!(uses, vec![StmtId(1), StmtId(3)]);
        let uses2 = rd.uses_of(&body, StmtId(2));
        assert_eq!(uses2, vec![StmtId(3)]);
    }
}
