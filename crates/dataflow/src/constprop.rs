//! Flat-lattice constant propagation.
//!
//! NChecker uses constant propagation to recover the arguments of config
//! API calls — e.g. the `5` in `setMaxRetries(5)` even when the constant
//! travels through copies and arithmetic before the call (§4.4.2).

use crate::solver::{solve, Analysis, Direction, Solution};
use nck_ir::body::{Body, LocalId, Operand, Rvalue, Stmt, StmtId};
use nck_ir::cfg::Cfg;
use nck_ir::symbols::Symbol;

/// A compile-time value on the flat lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CVal {
    /// No definition seen yet (⊥).
    Undef,
    /// A known integer constant.
    Int(i64),
    /// A known string constant.
    Str(Symbol),
    /// The known `null` reference.
    Null,
    /// More than one value possible (⊤).
    NonConst,
}

impl CVal {
    /// Flat-lattice join: `Undef` is the identity, equal values keep,
    /// anything else goes to `NonConst`. Shared with the interprocedural
    /// summary engine so both fold constants identically.
    pub fn join(self, other: CVal) -> CVal {
        match (self, other) {
            (CVal::Undef, x) | (x, CVal::Undef) => x,
            (a, b) if a == b => a,
            _ => CVal::NonConst,
        }
    }

    /// Returns the integer if this is a known integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            CVal::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string symbol if this is a known string constant.
    pub fn as_str(self) -> Option<Symbol> {
        match self {
            CVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct CpAnalysis {
    n_locals: usize,
}

type Env = Vec<CVal>;

fn eval_operand(env: &Env, op: Operand) -> CVal {
    match op {
        Operand::Local(l) => env.get(l.0 as usize).copied().unwrap_or(CVal::NonConst),
        Operand::IntConst(v) => CVal::Int(v),
        Operand::StrConst(s) => CVal::Str(s),
        Operand::Null => CVal::Null,
        Operand::ClassConst(_) => CVal::NonConst,
    }
}

impl Analysis for CpAnalysis {
    type Fact = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> Env {
        vec![CVal::Undef; self.n_locals]
    }

    fn join(&self, fact: &mut Env, other: &Env) -> bool {
        let mut changed = false;
        for (a, &b) in fact.iter_mut().zip(other) {
            let new = a.join(b);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut Env) {
        match stmt {
            Stmt::Assign { local, rvalue } => {
                let v = match rvalue {
                    Rvalue::Use(op) => eval_operand(fact, *op),
                    Rvalue::BinOp { op, a, b } => {
                        match (eval_operand(fact, *a), eval_operand(fact, *b)) {
                            (CVal::Int(x), CVal::Int(y)) => {
                                op.eval(x, y).map(CVal::Int).unwrap_or(CVal::NonConst)
                            }
                            _ => CVal::NonConst,
                        }
                    }
                    Rvalue::UnOp { op, a } => match eval_operand(fact, *a) {
                        CVal::Int(x) => CVal::Int(match op {
                            nck_dex::UnOp::Neg => x.wrapping_neg(),
                            nck_dex::UnOp::Not => !x,
                        }),
                        _ => CVal::NonConst,
                    },
                    Rvalue::Cast { op, .. } => eval_operand(fact, *op),
                    _ => CVal::NonConst,
                };
                if let Some(slot) = fact.get_mut(local.0 as usize) {
                    *slot = v;
                }
            }
            Stmt::Identity { local, .. } => {
                if let Some(slot) = fact.get_mut(local.0 as usize) {
                    *slot = CVal::NonConst;
                }
            }
            _ => {}
        }
    }
}

/// The constant-propagation solution of one body.
#[derive(Debug, Clone)]
pub struct ConstProp {
    solution: Solution<Env>,
}

impl ConstProp {
    /// Computes constant propagation for `body`.
    pub fn compute(body: &Body, cfg: &Cfg) -> ConstProp {
        let analysis = CpAnalysis {
            n_locals: body.locals.len(),
        };
        ConstProp {
            solution: solve(body, cfg, &analysis),
        }
    }

    /// Returns the value of `local` just before `at`.
    pub fn value_before(&self, at: StmtId, local: LocalId) -> CVal {
        self.solution
            .before(at)
            .get(local.0 as usize)
            .copied()
            .unwrap_or(CVal::NonConst)
    }

    /// Evaluates an operand at the point just before `at`.
    pub fn operand_value(&self, at: StmtId, op: Operand) -> CVal {
        eval_operand(self.solution.before(at), op)
    }

    /// Evaluates the arguments of the call at `at`, when `at` is a call.
    pub fn call_arg_values(&self, body: &Body, at: StmtId) -> Option<Vec<CVal>> {
        let invoke = body.stmt(at).invoke_expr()?;
        Some(
            invoke
                .args
                .iter()
                .map(|&a| self.operand_value(at, a))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_ir::body::LocalDecl;

    fn locals(n: usize) -> Vec<LocalDecl> {
        (0..n)
            .map(|i| LocalDecl {
                name: format!("v{i}"),
                ty: None,
            })
            .collect()
    }

    #[test]
    fn constants_flow_through_copies_and_arith() {
        // 0: v0 = 2
        // 1: v1 = v0
        // 2: v2 = v1 + 3
        // 3: return v2
        let body = Body {
            locals: locals(3),
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Assign {
                    local: LocalId(1),
                    rvalue: Rvalue::Use(Operand::Local(LocalId(0))),
                },
                Stmt::Assign {
                    local: LocalId(2),
                    rvalue: Rvalue::BinOp {
                        op: nck_dex::BinOp::Add,
                        a: Operand::Local(LocalId(1)),
                        b: Operand::IntConst(3),
                    },
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(2))),
                },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let cp = ConstProp::compute(&body, &cfg);
        assert_eq!(cp.value_before(StmtId(3), LocalId(2)), CVal::Int(5));
    }

    #[test]
    fn conflicting_paths_are_nonconst() {
        // 0: if -> 2
        // 1: v0 = 1 (fallthrough arm)
        // 2: v0 = 2 (target arm overwrites on one path only when coming via 0)
        // 3: return v0
        // Path A: 0->1->2->3 (v0=2), path B: 0->2->3 (v0=2)... make a real
        // conflict: 0:if->3 means skip def at 2.
        let body = Body {
            locals: locals(1),
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::Local(LocalId(0)),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(0))),
                },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let cp = ConstProp::compute(&body, &cfg);
        assert_eq!(cp.value_before(StmtId(3), LocalId(0)), CVal::NonConst);
        assert_eq!(cp.value_before(StmtId(2), LocalId(0)), CVal::Int(1));
    }

    #[test]
    fn division_by_zero_is_nonconst() {
        let body = Body {
            locals: locals(1),
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::BinOp {
                        op: nck_dex::BinOp::Div,
                        a: Operand::IntConst(1),
                        b: Operand::IntConst(0),
                    },
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let cp = ConstProp::compute(&body, &cfg);
        assert_eq!(cp.value_before(StmtId(1), LocalId(0)), CVal::NonConst);
    }

    #[test]
    fn identity_parameters_are_nonconst() {
        let body = Body {
            locals: locals(1),
            stmts: vec![
                Stmt::Identity {
                    local: LocalId(0),
                    kind: nck_ir::body::IdentityKind::Param(0),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(0))),
                },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let cp = ConstProp::compute(&body, &cfg);
        assert_eq!(cp.value_before(StmtId(1), LocalId(0)), CVal::NonConst);
    }
}
