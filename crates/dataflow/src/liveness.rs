//! Classic backward live-variable analysis.

use crate::bitset::BitSet;
use crate::solver::{solve, Analysis, Direction, Solution};
use nck_ir::body::{Body, LocalId, Stmt, StmtId};
use nck_ir::cfg::Cfg;

struct LiveAnalysis {
    n_locals: usize,
}

impl Analysis for LiveAnalysis {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::new(self.n_locals)
    }

    fn join(&self, fact: &mut BitSet, other: &BitSet) -> bool {
        fact.union_with(other)
    }

    fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut BitSet) {
        if let Some(d) = stmt.def() {
            fact.remove(d.0 as usize);
        }
        stmt.for_each_use(|u| {
            fact.insert(u.0 as usize);
        });
    }
}

/// The liveness solution of one body.
#[derive(Debug, Clone)]
pub struct Liveness {
    solution: Solution<BitSet>,
}

impl Liveness {
    /// Computes live variables for `body`.
    pub fn compute(body: &Body, cfg: &Cfg) -> Liveness {
        let analysis = LiveAnalysis {
            n_locals: body.locals.len(),
        };
        Liveness {
            solution: solve(body, cfg, &analysis),
        }
    }

    /// Returns `true` when `local` is live just before `at`.
    pub fn live_before(&self, at: StmtId, local: LocalId) -> bool {
        self.solution.before(at).contains(local.0 as usize)
    }

    /// Returns `true` when `local` is live just after `at`.
    pub fn live_after(&self, at: StmtId, local: LocalId) -> bool {
        self.solution.after(at).contains(local.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_ir::body::{LocalDecl, Operand, Rvalue};

    #[test]
    fn dead_store_is_not_live() {
        // 0: v0 = 1   (dead: overwritten before use)
        // 1: v0 = 2
        // 2: return v0
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(0))),
                },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let live = Liveness::compute(&body, &cfg);
        assert!(!live.live_before(StmtId(1), LocalId(0)));
        assert!(live.live_after(StmtId(1), LocalId(0)));
        assert!(live.live_before(StmtId(2), LocalId(0)));
    }

    #[test]
    fn loop_carried_liveness() {
        // 0: v0 = 0
        // 1: v1 = v0 + 1
        // 2: if -> 1
        // 3: return v1
        let body = Body {
            locals: vec![
                LocalDecl {
                    name: "v0".into(),
                    ty: None,
                },
                LocalDecl {
                    name: "v1".into(),
                    ty: None,
                },
            ],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(0)),
                },
                Stmt::Assign {
                    local: LocalId(1),
                    rvalue: Rvalue::BinOp {
                        op: nck_dex::BinOp::Add,
                        a: Operand::Local(LocalId(0)),
                        b: Operand::IntConst(1),
                    },
                },
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::Local(LocalId(1)),
                    b: Operand::IntConst(0),
                    target: StmtId(1),
                },
                Stmt::Return {
                    value: Some(Operand::Local(LocalId(1))),
                },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let live = Liveness::compute(&body, &cfg);
        // v0 stays live around the loop back edge.
        assert!(live.live_before(StmtId(1), LocalId(0)));
        assert!(live.live_after(StmtId(2), LocalId(0)));
    }
}
