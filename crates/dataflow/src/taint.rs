//! Object-flow (taint) analysis over one method body.
//!
//! This is the engine behind NChecker's config-API detection (§4.4.1):
//! taint the HTTP client object at the target API call site, propagate
//! *backward* to its creation site, then *forward* through every alias, and
//! collect all methods invoked on the tainted object. The implementation
//! computes the may-alias closure of a seed local over copies, casts,
//! field loads/stores, and (optionally) fluent-builder returns, then reads
//! the facts off the closure.

use nck_ir::body::{Body, FieldKey, LocalId, Operand, Rvalue, Stmt, StmtId};
use nck_ir::symbols::DenseInterner;
use std::collections::BTreeSet;

/// Options controlling object-flow propagation.
#[derive(Debug, Clone, Copy)]
pub struct FlowOptions {
    /// Treat `x = tainted.m(...)` as also tainting `x` (fluent builders
    /// returning `this`). Matches how the paper's taint records config
    /// methods in OkHttp-style chains.
    pub fluent_returns: bool,
    /// Propagate through instance and static fields (field-insensitively
    /// by [`FieldKey`]).
    pub through_fields: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            fluent_returns: true,
            through_fields: true,
        }
    }
}

/// The result of an object-flow query.
#[derive(Debug, Clone, Default)]
pub struct ObjectFlow {
    /// Locals that may alias the seed object.
    pub locals: BTreeSet<LocalId>,
    /// Field keys that may hold the seed object.
    pub fields: BTreeSet<FieldKey>,
    /// Statements that create the object (`new` or factory-call results).
    pub alloc_sites: Vec<StmtId>,
    /// Call statements whose receiver may be the object.
    pub invoked_on: Vec<StmtId>,
}

/// A growable union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Computes the object-flow closure of `seed` within `body`.
///
/// Every propagation rule of the closure is bidirectional (copies, casts,
/// field loads *and* stores, fluent dst↔receiver), so the may-alias
/// closure is exactly the connected component of `seed` in the graph of
/// those edges. One union-find pass over the body replaces the old
/// whole-body rescan fixpoint: the component is order-independent, so the
/// resulting sets are identical.
pub fn object_flow(body: &Body, seed: LocalId, opts: FlowOptions) -> ObjectFlow {
    let n_locals = body.locals.len().max(seed.0 as usize + 1);
    // Dense node space: locals first, fields appended on first sight.
    let mut uf = UnionFind::new(n_locals);
    let mut fields: DenseInterner<FieldKey> = DenseInterner::new();
    let field_node = |uf: &mut UnionFind, fields: &mut DenseInterner<FieldKey>, f: &FieldKey| {
        match fields.get(f) {
            Some(id) => n_locals as u32 + id,
            None => {
                fields.intern(f);
                uf.push()
            }
        }
    };

    for (_, stmt) in body.iter() {
        match stmt {
            Stmt::Assign { local, rvalue } => match rvalue {
                Rvalue::Use(Operand::Local(src))
                | Rvalue::Cast {
                    op: Operand::Local(src),
                    ..
                } => uf.union(local.0, src.0),
                Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field }
                    if opts.through_fields =>
                {
                    let fnode = field_node(&mut uf, &mut fields, field);
                    uf.union(local.0, fnode);
                }
                Rvalue::Invoke(inv) if opts.fluent_returns => {
                    if let Some(Operand::Local(recv)) = inv.receiver() {
                        uf.union(local.0, recv.0);
                    }
                }
                _ => {}
            },
            Stmt::StoreInstanceField { field, value, .. }
            | Stmt::StoreStaticField { field, value }
                if opts.through_fields =>
            {
                if let Operand::Local(v) = value {
                    let fnode = field_node(&mut uf, &mut fields, field);
                    uf.union(v.0, fnode);
                }
            }
            _ => {}
        }
    }

    let root = uf.find(seed.0);
    let mut flow = ObjectFlow::default();
    for l in 0..body.locals.len().max(seed.0 as usize + 1) as u32 {
        if uf.find(l) == root {
            flow.locals.insert(LocalId(l));
        }
    }
    for (i, f) in fields.items().iter().enumerate() {
        if uf.find((n_locals + i) as u32) == root {
            flow.fields.insert(*f);
        }
    }

    // Read the derived facts off the closure.
    for (id, stmt) in body.iter() {
        if let Stmt::Assign { local, rvalue } = stmt {
            if flow.locals.contains(local) {
                match rvalue {
                    Rvalue::New { .. } | Rvalue::NewArray { .. } => flow.alloc_sites.push(id),
                    Rvalue::Invoke(inv) => {
                        // A call result assigned to an alias is a creation
                        // site unless it is a fluent return of the object
                        // itself.
                        let self_returning = matches!(
                            inv.receiver(),
                            Some(Operand::Local(r)) if flow.locals.contains(&r)
                        );
                        if !self_returning {
                            flow.alloc_sites.push(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(inv) = stmt.invoke_expr() {
            if let Some(Operand::Local(recv)) = inv.receiver() {
                if flow.locals.contains(&recv) {
                    flow.invoked_on.push(id);
                }
            }
        }
    }

    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift::lift_file;
    use nck_ir::Program;

    /// Builds `Lapp/T;.run()V` from `emit` and returns the lifted program.
    fn lift(emit: impl FnOnce(&mut nck_dex::builder::CodeBuilder<'_>)) -> Program {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("run", "()V", AccessFlags::PUBLIC, 8, emit);
        });
        lift_file(&b.finish().unwrap()).unwrap()
    }

    fn flow_of(p: &Program, seed_name: &str) -> ObjectFlow {
        let body = p.methods[0].body.as_ref().unwrap();
        let seed = body
            .locals
            .iter()
            .position(|l| l.name == seed_name)
            .map(|i| LocalId(i as u32))
            .expect("seed local");
        object_flow(body, seed, FlowOptions::default())
    }

    #[test]
    fn backward_to_allocation_forward_to_config_calls() {
        // c = new Client; c.setMaxRetries(5); r = c.get(url);
        // Seeding the receiver of get() must find the alloc and the config
        // call.
        let p = lift(|m| {
            let c = m.reg(0);
            let five = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.const_int(five, 5);
            m.invoke_virtual("Lnet/Client;", "setMaxRetries", "(I)V", &[c, five]);
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[c]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert_eq!(flow.alloc_sites.len(), 1);
        // init, setMaxRetries, get all invoked on the object.
        assert_eq!(flow.invoked_on.len(), 3);
    }

    #[test]
    fn aliases_through_copies() {
        let p = lift(|m| {
            let c = m.reg(0);
            let d = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.mov(d, c);
            m.invoke_virtual("Lnet/Client;", "setTimeout", "(I)V", &[d, m.reg(2)]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert!(flow.locals.contains(&LocalId(1)));
        assert_eq!(flow.invoked_on.len(), 2);
    }

    #[test]
    fn fields_carry_the_object_across_statements() {
        // this.client = c; ... d = this.client; d.get()
        let p = lift(|m| {
            let this = m.param(0).unwrap();
            let c = m.reg(0);
            let d = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.iput(c, this, "Lapp/T;", "client", "Lnet/Client;");
            m.iget(d, this, "Lapp/T;", "client", "Lnet/Client;");
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[d]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v1");
        assert_eq!(flow.fields.len(), 1);
        assert_eq!(flow.alloc_sites.len(), 1);
    }

    #[test]
    fn fluent_builder_chain_links_receivers() {
        // b = new Builder; b2 = b.timeout(…); b2.build()
        let p = lift(|m| {
            let b = m.reg(0);
            let b2 = m.reg(1);
            m.new_instance(b, "Lnet/Builder;");
            m.invoke_direct("Lnet/Builder;", "<init>", "()V", &[b]);
            m.invoke_virtual(
                "Lnet/Builder;",
                "timeout",
                "(I)Lnet/Builder;",
                &[b, m.reg(2)],
            );
            m.move_result(b2);
            m.invoke_virtual("Lnet/Builder;", "build", "()V", &[b2]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v1");
        assert!(flow.locals.contains(&LocalId(0)));
        assert_eq!(flow.alloc_sites.len(), 1);
        assert_eq!(flow.invoked_on.len(), 3);
    }

    #[test]
    fn factory_result_is_an_alloc_site() {
        let p = lift(|m| {
            let q = m.reg(0);
            m.invoke_static(
                "Lcom/android/volley/toolbox/Volley;",
                "newRequestQueue",
                "()Lcom/android/volley/RequestQueue;",
                &[],
            );
            m.move_result(q);
            m.invoke_virtual("Lcom/android/volley/RequestQueue;", "add", "()V", &[q]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert_eq!(flow.alloc_sites.len(), 1);
        assert_eq!(flow.invoked_on.len(), 1);
    }

    #[test]
    fn unrelated_objects_stay_untainted() {
        let p = lift(|m| {
            let c = m.reg(0);
            let other = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.new_instance(other, "Lnet/Other;");
            m.invoke_direct("Lnet/Other;", "<init>", "()V", &[other]);
            m.invoke_virtual("Lnet/Other;", "doThing", "()V", &[other]);
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[c]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert!(!flow.locals.contains(&LocalId(1)));
        assert_eq!(flow.invoked_on.len(), 2); // <init> and get on v0 only.
        assert_eq!(flow.alloc_sites.len(), 1);
    }
}
