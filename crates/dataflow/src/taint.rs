//! Object-flow (taint) analysis over one method body.
//!
//! This is the engine behind NChecker's config-API detection (§4.4.1):
//! taint the HTTP client object at the target API call site, propagate
//! *backward* to its creation site, then *forward* through every alias, and
//! collect all methods invoked on the tainted object. The implementation
//! computes the may-alias closure of a seed local over copies, casts,
//! field loads/stores, and (optionally) fluent-builder returns, then reads
//! the facts off the closure.

use nck_ir::body::{Body, FieldKey, LocalId, Operand, Rvalue, Stmt, StmtId};
use std::collections::BTreeSet;

/// Options controlling object-flow propagation.
#[derive(Debug, Clone, Copy)]
pub struct FlowOptions {
    /// Treat `x = tainted.m(...)` as also tainting `x` (fluent builders
    /// returning `this`). Matches how the paper's taint records config
    /// methods in OkHttp-style chains.
    pub fluent_returns: bool,
    /// Propagate through instance and static fields (field-insensitively
    /// by [`FieldKey`]).
    pub through_fields: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            fluent_returns: true,
            through_fields: true,
        }
    }
}

/// The result of an object-flow query.
#[derive(Debug, Clone, Default)]
pub struct ObjectFlow {
    /// Locals that may alias the seed object.
    pub locals: BTreeSet<LocalId>,
    /// Field keys that may hold the seed object.
    pub fields: BTreeSet<FieldKey>,
    /// Statements that create the object (`new` or factory-call results).
    pub alloc_sites: Vec<StmtId>,
    /// Call statements whose receiver may be the object.
    pub invoked_on: Vec<StmtId>,
}

/// Computes the object-flow closure of `seed` within `body`.
pub fn object_flow(body: &Body, seed: LocalId, opts: FlowOptions) -> ObjectFlow {
    let mut flow = ObjectFlow::default();
    flow.locals.insert(seed);

    // Fixpoint over the flow-insensitive alias closure.
    let mut changed = true;
    while changed {
        changed = false;
        for (_, stmt) in body.iter() {
            match stmt {
                Stmt::Assign { local, rvalue } => match rvalue {
                    Rvalue::Use(Operand::Local(src))
                    | Rvalue::Cast {
                        op: Operand::Local(src),
                        ..
                    } => {
                        let d = flow.locals.contains(local);
                        let s = flow.locals.contains(src);
                        if d && !s {
                            changed |= flow.locals.insert(*src);
                        }
                        if s && !d {
                            changed |= flow.locals.insert(*local);
                        }
                    }
                    Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field }
                        if opts.through_fields =>
                    {
                        let d = flow.locals.contains(local);
                        let f = flow.fields.contains(field);
                        if d && !f {
                            changed |= flow.fields.insert(*field);
                        }
                        if f && !d {
                            changed |= flow.locals.insert(*local);
                        }
                    }
                    Rvalue::Invoke(inv) => {
                        if opts.fluent_returns && flow.locals.contains(local) {
                            if let Some(Operand::Local(recv)) = inv.receiver() {
                                changed |= flow.locals.insert(recv);
                            }
                        }
                        if opts.fluent_returns {
                            if let Some(Operand::Local(recv)) = inv.receiver() {
                                if flow.locals.contains(&recv) {
                                    changed |= flow.locals.insert(*local);
                                }
                            }
                        }
                    }
                    _ => {}
                },
                Stmt::StoreInstanceField { field, value, .. }
                | Stmt::StoreStaticField { field, value }
                    if opts.through_fields =>
                {
                    if let Operand::Local(v) = value {
                        let s = flow.locals.contains(v);
                        let f = flow.fields.contains(field);
                        if s && !f {
                            changed |= flow.fields.insert(*field);
                        }
                        if f && !s {
                            changed |= flow.locals.insert(*v);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Read the derived facts off the closure.
    for (id, stmt) in body.iter() {
        if let Stmt::Assign { local, rvalue } = stmt {
            if flow.locals.contains(local) {
                match rvalue {
                    Rvalue::New { .. } | Rvalue::NewArray { .. } => flow.alloc_sites.push(id),
                    Rvalue::Invoke(inv) => {
                        // A call result assigned to an alias is a creation
                        // site unless it is a fluent return of the object
                        // itself.
                        let self_returning = matches!(
                            inv.receiver(),
                            Some(Operand::Local(r)) if flow.locals.contains(&r)
                        );
                        if !self_returning {
                            flow.alloc_sites.push(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(inv) = stmt.invoke_expr() {
            if let Some(Operand::Local(recv)) = inv.receiver() {
                if flow.locals.contains(&recv) {
                    flow.invoked_on.push(id);
                }
            }
        }
    }

    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift::lift_file;
    use nck_ir::Program;

    /// Builds `Lapp/T;.run()V` from `emit` and returns the lifted program.
    fn lift(emit: impl FnOnce(&mut nck_dex::builder::CodeBuilder<'_>)) -> Program {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("run", "()V", AccessFlags::PUBLIC, 8, emit);
        });
        lift_file(&b.finish().unwrap()).unwrap()
    }

    fn flow_of(p: &Program, seed_name: &str) -> ObjectFlow {
        let body = p.methods[0].body.as_ref().unwrap();
        let seed = body
            .locals
            .iter()
            .position(|l| l.name == seed_name)
            .map(|i| LocalId(i as u32))
            .expect("seed local");
        object_flow(body, seed, FlowOptions::default())
    }

    #[test]
    fn backward_to_allocation_forward_to_config_calls() {
        // c = new Client; c.setMaxRetries(5); r = c.get(url);
        // Seeding the receiver of get() must find the alloc and the config
        // call.
        let p = lift(|m| {
            let c = m.reg(0);
            let five = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.const_int(five, 5);
            m.invoke_virtual("Lnet/Client;", "setMaxRetries", "(I)V", &[c, five]);
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[c]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert_eq!(flow.alloc_sites.len(), 1);
        // init, setMaxRetries, get all invoked on the object.
        assert_eq!(flow.invoked_on.len(), 3);
    }

    #[test]
    fn aliases_through_copies() {
        let p = lift(|m| {
            let c = m.reg(0);
            let d = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.mov(d, c);
            m.invoke_virtual("Lnet/Client;", "setTimeout", "(I)V", &[d, m.reg(2)]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert!(flow.locals.contains(&LocalId(1)));
        assert_eq!(flow.invoked_on.len(), 2);
    }

    #[test]
    fn fields_carry_the_object_across_statements() {
        // this.client = c; ... d = this.client; d.get()
        let p = lift(|m| {
            let this = m.param(0).unwrap();
            let c = m.reg(0);
            let d = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.iput(c, this, "Lapp/T;", "client", "Lnet/Client;");
            m.iget(d, this, "Lapp/T;", "client", "Lnet/Client;");
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[d]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v1");
        assert_eq!(flow.fields.len(), 1);
        assert_eq!(flow.alloc_sites.len(), 1);
    }

    #[test]
    fn fluent_builder_chain_links_receivers() {
        // b = new Builder; b2 = b.timeout(…); b2.build()
        let p = lift(|m| {
            let b = m.reg(0);
            let b2 = m.reg(1);
            m.new_instance(b, "Lnet/Builder;");
            m.invoke_direct("Lnet/Builder;", "<init>", "()V", &[b]);
            m.invoke_virtual(
                "Lnet/Builder;",
                "timeout",
                "(I)Lnet/Builder;",
                &[b, m.reg(2)],
            );
            m.move_result(b2);
            m.invoke_virtual("Lnet/Builder;", "build", "()V", &[b2]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v1");
        assert!(flow.locals.contains(&LocalId(0)));
        assert_eq!(flow.alloc_sites.len(), 1);
        assert_eq!(flow.invoked_on.len(), 3);
    }

    #[test]
    fn factory_result_is_an_alloc_site() {
        let p = lift(|m| {
            let q = m.reg(0);
            m.invoke_static(
                "Lcom/android/volley/toolbox/Volley;",
                "newRequestQueue",
                "()Lcom/android/volley/RequestQueue;",
                &[],
            );
            m.move_result(q);
            m.invoke_virtual("Lcom/android/volley/RequestQueue;", "add", "()V", &[q]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert_eq!(flow.alloc_sites.len(), 1);
        assert_eq!(flow.invoked_on.len(), 1);
    }

    #[test]
    fn unrelated_objects_stay_untainted() {
        let p = lift(|m| {
            let c = m.reg(0);
            let other = m.reg(1);
            m.new_instance(c, "Lnet/Client;");
            m.invoke_direct("Lnet/Client;", "<init>", "()V", &[c]);
            m.new_instance(other, "Lnet/Other;");
            m.invoke_direct("Lnet/Other;", "<init>", "()V", &[other]);
            m.invoke_virtual("Lnet/Other;", "doThing", "()V", &[other]);
            m.invoke_virtual("Lnet/Client;", "get", "()V", &[c]);
            m.ret(None);
        });
        let flow = flow_of(&p, "v0");
        assert!(!flow.locals.contains(&LocalId(1)));
        assert_eq!(flow.invoked_on.len(), 2); // <init> and get on v0 only.
        assert_eq!(flow.alloc_sites.len(), 1);
    }
}
