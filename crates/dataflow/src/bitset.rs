//! A dense fixed-capacity bit set used as the lattice element of the
//! bit-vector analyses.

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `i`, returning `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Tests membership.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`, returning `true` when `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Intersects `other` into `self`, returning `true` when `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Removes every element of `other` from `self`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_and_intersect() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(!u.union_with(&b));
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn subtract_and_remove() {
        let mut a = BitSet::new(8);
        a.insert(1);
        a.insert(2);
        a.insert(3);
        let mut b = BitSet::new(8);
        b.insert(2);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(a.remove(1));
        assert!(!a.remove(1));
        assert!(!a.remove(100));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(5);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
