//! Control dependence via post-dominators (Ferrante–Ottenstein–Warren).
//!
//! Statement `s` is control-dependent on `b` when `b` has a successor
//! from which `s` is always reached (s post-dominates it) and another from
//! which it can be avoided. Exceptional edges participate, so catch-block
//! statements come out control-dependent on the statements that can throw
//! into them — which is exactly what the retry-loop rules of §4.5 need.

use nck_ir::body::StmtId;
use nck_ir::cfg::Cfg;
use nck_ir::dom::DomTree;

/// Control-dependence relation: `deps[s]` lists the statements `s` is
/// control-dependent on.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    deps: Vec<Vec<StmtId>>,
}

impl ControlDeps {
    /// Computes control dependences of every statement in `cfg` given its
    /// post-dominator tree.
    pub fn compute(cfg: &Cfg, pdom: &DomTree) -> ControlDeps {
        let mut deps: Vec<Vec<StmtId>> = vec![Vec::new(); cfg.len];

        for i in 0..cfg.len {
            let a = StmtId(i as u32);
            if !pdom.is_reachable(a) {
                continue;
            }
            let ipdom_a = pdom.idom(a);
            // succ_iter may yield a target twice (on both the normal and
            // exceptional lists); the walk just repeats and the final
            // sort+dedup absorbs it.
            for b in cfg.succ_iter(a) {
                if Some(b) == ipdom_a {
                    continue;
                }
                // Walk b up the post-dominator tree to (but excluding)
                // ipdom(a); every node on the way is control-dependent
                // on a.
                let mut v = b;
                loop {
                    if Some(v) == ipdom_a || !pdom.is_reachable(v) {
                        break;
                    }
                    if v.index() < cfg.len {
                        deps[v.index()].push(a);
                    }
                    match pdom.idom(v) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
            }
        }

        for d in &mut deps {
            d.sort_unstable();
            d.dedup();
        }
        ControlDeps { deps }
    }

    /// Returns the statements `s` is control-dependent on.
    pub fn deps_of(&self, s: StmtId) -> &[StmtId] {
        &self.deps[s.index()]
    }

    /// Returns `true` when `s` is (directly) control-dependent on `on`.
    pub fn depends_on(&self, s: StmtId, on: StmtId) -> bool {
        self.deps[s.index()].contains(&on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::CondOp;
    use nck_ir::body::{Body, InvokeExpr, Operand, Program, Stmt, Trap};
    use nck_ir::dom::post_dominators;

    #[test]
    fn branch_arms_depend_on_the_branch() {
        // 0: if -> 2
        // 1: nop (then arm)
        // 2: nop (join)
        // 3: return
        let body = Body {
            locals: vec![],
            stmts: vec![
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(2),
                },
                Stmt::Nop,
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let pdom = post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        assert!(cd.depends_on(StmtId(1), StmtId(0)));
        assert!(!cd.depends_on(StmtId(2), StmtId(0)));
        assert!(!cd.depends_on(StmtId(3), StmtId(0)));
    }

    #[test]
    fn catch_block_depends_on_throwing_call() {
        // 0: invoke (try, handler 2)
        // 1: return
        // 2: identity caught (handler)
        // 3: return
        let mut p = Program::new();
        let key = nck_ir::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("send"),
            sig: p.symbols.intern("()V"),
        };
        let body = Body {
            locals: vec![nck_ir::LocalDecl {
                name: "e".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Invoke(InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Identity {
                    local: nck_ir::LocalId(0),
                    kind: nck_ir::IdentityKind::CaughtException,
                },
                Stmt::Return { value: None },
            ],
            traps: vec![Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: None,
                handler: StmtId(2),
            }],
        };
        let cfg = Cfg::build(&body);
        let pdom = post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        assert!(cd.depends_on(StmtId(2), StmtId(0)));
        assert!(cd.depends_on(StmtId(3), StmtId(0)));
        assert!(cd.depends_on(StmtId(1), StmtId(0)));
    }

    #[test]
    fn loop_body_depends_on_loop_condition() {
        // 0: nop header
        // 1: if -> 4 (exit)
        // 2: nop body
        // 3: goto 0
        // 4: return
        let body = Body {
            locals: vec![],
            stmts: vec![
                Stmt::Nop,
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(4),
                },
                Stmt::Nop,
                Stmt::Goto { target: StmtId(0) },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let pdom = post_dominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        assert!(cd.depends_on(StmtId(2), StmtId(1)));
        // The header itself re-executes only if the branch falls through.
        assert!(cd.depends_on(StmtId(0), StmtId(1)));
        assert!(!cd.depends_on(StmtId(4), StmtId(1)));
    }
}
