//! The generic worklist solver every concrete analysis plugs into.
//!
//! Analyses are defined at statement granularity over an
//! [`nck_ir::cfg::Cfg`]: provide a fact lattice (`bottom` + `join`) and a
//! transfer function, and [`solve`] computes the fixpoint, returning the
//! fact holding *before* and *after* every statement.

use nck_ir::body::{Body, Stmt, StmtId};
use nck_ir::cfg::Cfg;

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// A dataflow analysis over statement-level CFGs.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The least element, used to initialize all program points.
    fn bottom(&self) -> Self::Fact;

    /// The boundary fact (at entry for forward, at exit for backward).
    fn boundary(&self) -> Self::Fact {
        self.bottom()
    }

    /// Joins `other` into `fact`, returning `true` when `fact` changed.
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Applies the effect of `stmt` to `fact` in the analysis direction.
    fn transfer(&self, id: StmtId, stmt: &Stmt, fact: &mut Self::Fact);
}

/// The fixpoint result: facts before and after every statement.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact holding immediately before each statement (in program order,
    /// regardless of analysis direction).
    pub before: Vec<F>,
    /// Fact holding immediately after each statement.
    pub after: Vec<F>,
}

impl<F> Solution<F> {
    /// The fact before statement `id`.
    pub fn before(&self, id: StmtId) -> &F {
        &self.before[id.index()]
    }

    /// The fact after statement `id`.
    pub fn after(&self, id: StmtId) -> &F {
        &self.after[id.index()]
    }
}

/// Runs `analysis` to fixpoint over `body`/`cfg`.
///
/// Exceptional edges participate in the propagation exactly like normal
/// edges, which matches how Soot's `ExceptionalUnitGraph` drives
/// FlowDroid-style analyses.
pub fn solve<A: Analysis>(body: &Body, cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = body.len();
    let mut before: Vec<A::Fact> = vec![analysis.bottom(); n];
    let mut after: Vec<A::Fact> = vec![analysis.bottom(); n];
    if n == 0 {
        return Solution { before, after };
    }

    let dir = analysis.direction();
    // Seed boundary.
    match dir {
        Direction::Forward => before[0] = analysis.boundary(),
        Direction::Backward => {
            // Backward boundary applies at every statement that exits the
            // method; join happens naturally since exit successors are
            // empty and `after` starts at bottom joined with boundary.
            let b = analysis.boundary();
            for (i, slot) in after.iter_mut().enumerate().take(n) {
                if cfg.succs(StmtId(i as u32), false).is_empty() {
                    *slot = b.clone();
                }
            }
        }
    }

    let mut work: Vec<u32> = (0..n as u32).collect();
    let mut on_work = vec![true; n];
    // Process in an order matching the direction for fast convergence.
    if dir == Direction::Forward {
        work.reverse(); // Pop from the back -> ascending order first pass.
    }

    while let Some(i) = work.pop() {
        let idx = i as usize;
        on_work[idx] = false;
        let id = StmtId(i);

        match dir {
            Direction::Forward => {
                // in = join of preds' out.
                let mut fact = if idx == 0 {
                    analysis.boundary()
                } else {
                    analysis.bottom()
                };
                for &p in &cfg.preds[idx] {
                    analysis.join(&mut fact, &after[p.index()]);
                }
                before[idx] = fact.clone();
                analysis.transfer(id, body.stmt(id), &mut fact);
                if fact != after[idx] {
                    after[idx] = fact;
                    for s in cfg.succs(id, false) {
                        if !on_work[s.index()] {
                            on_work[s.index()] = true;
                            work.push(s.0);
                        }
                    }
                }
            }
            Direction::Backward => {
                // out = join of succs' in.
                let succs = cfg.succs(id, false);
                let mut fact = if succs.is_empty() {
                    analysis.boundary()
                } else {
                    analysis.bottom()
                };
                for s in &succs {
                    analysis.join(&mut fact, &before[s.index()]);
                }
                after[idx] = fact.clone();
                analysis.transfer(id, body.stmt(id), &mut fact);
                if fact != before[idx] {
                    before[idx] = fact;
                    for &p in &cfg.preds[idx] {
                        if p.index() < n && !on_work[p.index()] {
                            on_work[p.index()] = true;
                            work.push(p.0);
                        }
                    }
                }
            }
        }
    }

    Solution { before, after }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_ir::body::{LocalDecl, LocalId, Operand, Rvalue};

    /// A toy forward "statement counting" analysis: fact = max number of
    /// assignments seen on any path.
    struct CountAssigns;

    impl Analysis for CountAssigns {
        type Fact = u32;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self) -> u32 {
            0
        }

        fn join(&self, fact: &mut u32, other: &u32) -> bool {
            if *other > *fact {
                *fact = *other;
                true
            } else {
                false
            }
        }

        fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut u32) {
            if matches!(stmt, Stmt::Assign { .. }) {
                *fact += 1;
            }
        }
    }

    #[test]
    fn forward_fixpoint_on_straight_line() {
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let sol = solve(&body, &cfg, &CountAssigns);
        assert_eq!(sol.before[2], 2);
        assert_eq!(sol.after[1], 2);
        assert_eq!(sol.before[0], 0);
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // 0: assign
        // 1: if -> 0 (loop back)
        // 2: return
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: nck_ir::StmtId(0),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        // A max-lattice with unbounded growth would diverge; cap it via a
        // saturating count to prove termination behavior of the solver.
        struct Saturating;
        impl Analysis for Saturating {
            type Fact = u32;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn bottom(&self) -> u32 {
                0
            }
            fn join(&self, fact: &mut u32, other: &u32) -> bool {
                if *other > *fact {
                    *fact = *other;
                    true
                } else {
                    false
                }
            }
            fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut u32) {
                if matches!(stmt, Stmt::Assign { .. }) {
                    *fact = (*fact + 1).min(5);
                }
            }
        }
        let sol = solve(&body, &cfg, &Saturating);
        assert_eq!(sol.before[2], 5);
    }
}
