//! The generic worklist solver every concrete analysis plugs into.
//!
//! Analyses are defined at statement granularity over an
//! [`nck_ir::cfg::Cfg`]: provide a fact lattice (`bottom` + `join`) and a
//! transfer function, and [`solve`] computes the fixpoint, returning the
//! fact holding *before* and *after* every statement.

use nck_ir::body::{Body, Stmt, StmtId};
use nck_ir::cfg::Cfg;

/// Direction of propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// A dataflow analysis over statement-level CFGs.
pub trait Analysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The least element, used to initialize all program points.
    fn bottom(&self) -> Self::Fact;

    /// The boundary fact (at entry for forward, at exit for backward).
    fn boundary(&self) -> Self::Fact {
        self.bottom()
    }

    /// Joins `other` into `fact`, returning `true` when `fact` changed.
    fn join(&self, fact: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Applies the effect of `stmt` to `fact` in the analysis direction.
    fn transfer(&self, id: StmtId, stmt: &Stmt, fact: &mut Self::Fact);
}

/// The fixpoint result: facts before and after every statement.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact holding immediately before each statement (in program order,
    /// regardless of analysis direction).
    pub before: Vec<F>,
    /// Fact holding immediately after each statement.
    pub after: Vec<F>,
}

impl<F> Solution<F> {
    /// The fact before statement `id`.
    pub fn before(&self, id: StmtId) -> &F {
        &self.before[id.index()]
    }

    /// The fact after statement `id`.
    pub fn after(&self, id: StmtId) -> &F {
        &self.after[id.index()]
    }
}

/// Runs `analysis` to fixpoint over `body`/`cfg`.
///
/// Exceptional edges participate in the propagation exactly like normal
/// edges, which matches how Soot's `ExceptionalUnitGraph` drives
/// FlowDroid-style analyses.
///
/// The worklist is a reverse-postorder priority queue: forward analyses
/// visit statements in ascending RPO rank, backward analyses in ascending
/// post-order rank (reverse RPO), so each pass sweeps the CFG in
/// propagation direction and loop bodies stabilize in near-minimal
/// visits. Because every lattice used here has a commutative, associative,
/// idempotent join and monotone transfer, the visit order affects only
/// convergence speed — the unique least fixpoint (and hence every report
/// derived from it) is identical to the old LIFO solver's.
pub fn solve<A: Analysis>(body: &Body, cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = body.len();
    let mut before: Vec<A::Fact> = vec![analysis.bottom(); n];
    let mut after: Vec<A::Fact> = vec![analysis.bottom(); n];
    if n == 0 {
        return Solution { before, after };
    }

    let dir = analysis.direction();
    let bottom = analysis.bottom();
    let boundary = analysis.boundary();

    // Seed boundary.
    match dir {
        Direction::Forward => before[0] = boundary.clone(),
        Direction::Backward => {
            // Backward boundary applies at every statement that exits the
            // method. When boundary == bottom the slots already hold it, so
            // the per-statement successor scan and clone are skipped.
            if boundary != bottom {
                for (i, slot) in after.iter_mut().enumerate().take(n) {
                    if !cfg.has_real_succs(StmtId(i as u32)) {
                        *slot = boundary.clone();
                    }
                }
            }
        }
    }

    // Priority order: RPO of the reachable statements (reversed for
    // backward analyses, giving post-order), with statements unreachable
    // from the entry appended in index order so every statement is still
    // visited at least once, as the old exhaustive seeding guaranteed.
    // Both arrays are cached on the CFG, so repeated solves pay nothing.
    let (order, rank) = cfg.solve_priority(dir == Direction::Forward);

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    // The heap only ever holds re-queues against the sweep direction
    // (nodes whose rank precedes the current position): phase one below
    // visits every statement once in priority order directly from
    // `order`, so acyclic regions never touch the heap at all.
    let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    // `on_work` keeps at most one pending visit per statement live.
    let mut on_work = vec![true; n];
    // All joins land in one scratch buffer that is swapped into the
    // solution on change, so the steady state allocates nothing.
    let mut scratch = analysis.bottom();

    let visit = |idx: usize,
                 on_work: &mut [bool],
                 heap: &mut BinaryHeap<Reverse<u32>>,
                 before: &mut [A::Fact],
                 after: &mut [A::Fact],
                 scratch: &mut A::Fact| {
        on_work[idx] = false;
        let id = StmtId(idx as u32);
        match dir {
            Direction::Forward => {
                // in = join of preds' out.
                if idx == 0 {
                    scratch.clone_from(&boundary);
                } else {
                    scratch.clone_from(&bottom);
                }
                for &p in &cfg.preds[idx] {
                    analysis.join(scratch, &after[p.index()]);
                }
                before[idx].clone_from(scratch);
                analysis.transfer(id, body.stmt(id), scratch);
                if *scratch != after[idx] {
                    std::mem::swap(&mut after[idx], scratch);
                    for s in cfg.succ_iter(id) {
                        let si = s.index();
                        if si < n && !on_work[si] {
                            on_work[si] = true;
                            heap.push(Reverse(rank[si]));
                        }
                    }
                }
            }
            Direction::Backward => {
                // out = join of succs' in.
                scratch.clone_from(&bottom);
                let mut any = false;
                for s in cfg.succ_iter(id) {
                    if s.index() < n {
                        any = true;
                        analysis.join(scratch, &before[s.index()]);
                    }
                }
                if !any {
                    scratch.clone_from(&boundary);
                }
                after[idx].clone_from(scratch);
                analysis.transfer(id, body.stmt(id), scratch);
                if *scratch != before[idx] {
                    std::mem::swap(&mut before[idx], scratch);
                    // Pred lists only ever contain real statements (the
                    // virtual exit has no successors), so no range check
                    // is needed.
                    for &p in &cfg.preds[idx] {
                        if !on_work[p.index()] {
                            on_work[p.index()] = true;
                            heap.push(Reverse(rank[p.index()]));
                        }
                    }
                }
            }
        }
    };

    // Phase one: a single sweep in priority order covers every statement.
    // A re-queue pushed during the sweep always targets a node *behind*
    // the cursor (nodes ahead still have `on_work` set from seeding), so
    // the heap accumulates exactly the back-edge work.
    for &idx in order {
        visit(
            idx as usize,
            &mut on_work,
            &mut heap,
            &mut before,
            &mut after,
            &mut scratch,
        );
    }
    // Phase two: drain back-edge re-queues to the fixpoint.
    while let Some(Reverse(r)) = heap.pop() {
        visit(
            order[r as usize] as usize,
            &mut on_work,
            &mut heap,
            &mut before,
            &mut after,
            &mut scratch,
        );
    }

    Solution { before, after }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_ir::body::{LocalDecl, LocalId, Operand, Rvalue};

    /// A toy forward "statement counting" analysis: fact = max number of
    /// assignments seen on any path.
    struct CountAssigns;

    impl Analysis for CountAssigns {
        type Fact = u32;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self) -> u32 {
            0
        }

        fn join(&self, fact: &mut u32, other: &u32) -> bool {
            if *other > *fact {
                *fact = *other;
                true
            } else {
                false
            }
        }

        fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut u32) {
            if matches!(stmt, Stmt::Assign { .. }) {
                *fact += 1;
            }
        }
    }

    #[test]
    fn forward_fixpoint_on_straight_line() {
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(2)),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        let sol = solve(&body, &cfg, &CountAssigns);
        assert_eq!(sol.before[2], 2);
        assert_eq!(sol.after[1], 2);
        assert_eq!(sol.before[0], 0);
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // 0: assign
        // 1: if -> 0 (loop back)
        // 2: return
        let body = Body {
            locals: vec![LocalDecl {
                name: "v0".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Assign {
                    local: LocalId(0),
                    rvalue: Rvalue::Use(Operand::IntConst(1)),
                },
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: nck_ir::StmtId(0),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&body);
        // A max-lattice with unbounded growth would diverge; cap it via a
        // saturating count to prove termination behavior of the solver.
        struct Saturating;
        impl Analysis for Saturating {
            type Fact = u32;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn bottom(&self) -> u32 {
                0
            }
            fn join(&self, fact: &mut u32, other: &u32) -> bool {
                if *other > *fact {
                    *fact = *other;
                    true
                } else {
                    false
                }
            }
            fn transfer(&self, _id: StmtId, stmt: &Stmt, fact: &mut u32) {
                if matches!(stmt, Stmt::Assign { .. }) {
                    *fact = (*fact + 1).min(5);
                }
            }
        }
        let sol = solve(&body, &cfg, &Saturating);
        assert_eq!(sol.before[2], 5);
    }
}
