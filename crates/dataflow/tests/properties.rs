//! Property tests for the dataflow framework: the bit set against a
//! model, and structural invariants of the analyses on random CFGs.

use nck_dataflow::{BitSet, ConstProp, Liveness, ReachingDefs};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_ir::cfg::Cfg;
use nck_ir::dom::{dominators, post_dominators};
use nck_ir::{Body, LocalId, StmtId};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------- BitSet vs. BTreeSet model ----------

#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize),
    Remove(usize),
    UnionWith(Vec<usize>),
    IntersectWith(Vec<usize>),
    Subtract(Vec<usize>),
    Clear,
}

fn arb_setop(cap: usize) -> impl Strategy<Value = SetOp> {
    let elem = move || 0..cap;
    prop_oneof![
        elem().prop_map(SetOp::Insert),
        elem().prop_map(SetOp::Remove),
        proptest::collection::vec(elem(), 0..8).prop_map(SetOp::UnionWith),
        proptest::collection::vec(elem(), 0..8).prop_map(SetOp::IntersectWith),
        proptest::collection::vec(elem(), 0..8).prop_map(SetOp::Subtract),
        Just(SetOp::Clear),
    ]
}

proptest! {
    #[test]
    fn bitset_matches_btreeset_model(ops in proptest::collection::vec(arb_setop(150), 0..60)) {
        const CAP: usize = 150;
        let mut bs = BitSet::new(CAP);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        let to_bitset = |items: &[usize]| {
            let mut s = BitSet::new(CAP);
            for &i in items {
                s.insert(i);
            }
            s
        };
        for op in ops {
            match op {
                SetOp::Insert(i) => {
                    let was_new = bs.insert(i);
                    prop_assert_eq!(was_new, model.insert(i));
                }
                SetOp::Remove(i) => {
                    let was_there = bs.remove(i);
                    prop_assert_eq!(was_there, model.remove(&i));
                }
                SetOp::UnionWith(items) => {
                    bs.union_with(&to_bitset(&items));
                    model.extend(items);
                }
                SetOp::IntersectWith(items) => {
                    bs.intersect_with(&to_bitset(&items));
                    let keep: BTreeSet<usize> = items.into_iter().collect();
                    model.retain(|x| keep.contains(x));
                }
                SetOp::Subtract(items) => {
                    bs.subtract(&to_bitset(&items));
                    for i in items {
                        model.remove(&i);
                    }
                }
                SetOp::Clear => {
                    bs.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(bs.len(), model.len());
            prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        }
    }
}

// ---------- Random bodies for structural invariants ----------

/// Builds a body with `n` diamond blocks over 4 locals, then returns it.
fn random_body(n_blocks: usize, seed_consts: &[i32]) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lp/P;", |c| {
        c.method(
            "f",
            "(I)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            4,
            |m| {
                let p = m.param(0).unwrap();
                for (i, &v) in seed_consts.iter().take(3).enumerate() {
                    m.const_int(m.reg(i as u16), i64::from(v));
                }
                for i in 0..n_blocks {
                    let alt = m.new_label();
                    let join = m.new_label();
                    m.ifz(CondOp::Eq, p, alt);
                    m.binop(BinOp::Add, m.reg(0), m.reg(0), m.reg(1));
                    m.goto(join);
                    m.bind(alt);
                    m.binop(
                        if i % 2 == 0 { BinOp::Xor } else { BinOp::Sub },
                        m.reg(1),
                        m.reg(1),
                        m.reg(2),
                    );
                    m.bind(join);
                }
                m.ret(Some(m.reg(0)));
            },
        );
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reaching definitions: every definition reported as reaching a use
    /// really defines the queried local, and the def site precedes the
    /// use in some CFG path (weakly checked via reachability).
    #[test]
    fn reaching_defs_are_well_formed(
        n in 1usize..12,
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(n, &consts);
        let cfg = Cfg::build(&body);
        let rd = ReachingDefs::compute(&body, &cfg);
        for (id, stmt) in body.iter() {
            for local in stmt.uses() {
                for def in rd.reaching(id, local) {
                    prop_assert_eq!(body.stmt(def).def(), Some(local));
                }
            }
        }
    }

    /// Liveness: a local is live before any statement that uses it.
    #[test]
    fn used_locals_are_live(
        n in 1usize..12,
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(n, &consts);
        let cfg = Cfg::build(&body);
        let live = Liveness::compute(&body, &cfg);
        for (id, stmt) in body.iter() {
            for local in stmt.uses() {
                prop_assert!(
                    live.live_before(id, local),
                    "local {local:?} used at {id:?} but not live"
                );
            }
        }
    }

    /// Dominance: the entry dominates every reachable statement, and
    /// post-dominance is the dual on the reversed graph.
    #[test]
    fn entry_dominates_everything_reachable(
        n in 1usize..12,
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(n, &consts);
        let cfg = Cfg::build(&body);
        let dom = dominators(&cfg);
        let pdom = post_dominators(&cfg);
        let reach = cfg.reachable();
        for (i, &r) in reach.iter().enumerate() {
            if r {
                prop_assert!(dom.dominates(StmtId(0), StmtId(i as u32)));
                prop_assert!(pdom.dominates(cfg.exit(), StmtId(i as u32)));
            }
        }
    }

    /// Constant propagation is sound under joins: a proven constant on a
    /// diamond output must be insensitive to which arm executed. We check
    /// the weaker structural property that re-running the analysis is
    /// deterministic and that facts only involve declared locals.
    #[test]
    fn constprop_is_deterministic(
        n in 1usize..10,
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(n, &consts);
        let cfg = Cfg::build(&body);
        let a = ConstProp::compute(&body, &cfg);
        let b = ConstProp::compute(&body, &cfg);
        for (id, _) in body.iter() {
            for l in 0..body.locals.len() {
                prop_assert_eq!(
                    a.value_before(id, LocalId(l as u32)),
                    b.value_before(id, LocalId(l as u32))
                );
            }
        }
    }
}
