//! Differential suite for the dense hot path: the bitset-domain analyses
//! driven by the RPO-priority solver against naive reference
//! implementations (chaotic iteration over `BTreeSet` facts, whole-body
//! rescan for object flow) on randomized bodies with branches, loops,
//! traps, and field traffic. Any divergence between the optimized engine
//! and the obviously-correct one is a bug in the optimization.

use nck_dataflow::{object_flow, FlowOptions, Liveness, ObjectFlow, ReachingDefs};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_ir::body::{Body, FieldKey, LocalId, Operand, Rvalue, Stmt, StmtId};
use nck_ir::cfg::Cfg;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------- Random body generation ----------

/// One structural region of a generated method body.
#[derive(Debug, Clone, Copy)]
enum Block {
    /// A few straight-line arithmetic statements.
    Straight,
    /// An if/else diamond.
    Diamond,
    /// A counted back-edge loop.
    Loop,
    /// A call covered by a typed trap handler (exceptional edges).
    Trapped,
}

fn arb_blocks() -> impl Strategy<Value = Vec<Block>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Block::Straight),
            Just(Block::Diamond),
            Just(Block::Loop),
            Just(Block::Trapped),
        ],
        1..8,
    )
}

/// Lifts a method made of `blocks` over four registers, seeded with
/// `consts`.
fn random_body(blocks: &[Block], consts: &[i32]) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lp/D;", |c| {
        c.method(
            "f",
            "(I)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            4,
            |m| {
                let p = m.param(0).unwrap();
                for (i, &v) in consts.iter().take(3).enumerate() {
                    m.const_int(m.reg(i as u16), i64::from(v));
                }
                for (i, block) in blocks.iter().enumerate() {
                    match block {
                        Block::Straight => {
                            m.binop(BinOp::Add, m.reg(0), m.reg(0), m.reg(1));
                            m.binop(BinOp::Xor, m.reg(1), m.reg(1), m.reg(2));
                        }
                        Block::Diamond => {
                            let alt = m.new_label();
                            let join = m.new_label();
                            m.ifz(CondOp::Eq, p, alt);
                            m.binop(BinOp::Add, m.reg(0), m.reg(0), m.reg(1));
                            m.goto(join);
                            m.bind(alt);
                            m.binop(
                                if i % 2 == 0 { BinOp::Mul } else { BinOp::Sub },
                                m.reg(1),
                                m.reg(1),
                                m.reg(2),
                            );
                            m.bind(join);
                        }
                        Block::Loop => {
                            let head = m.new_label();
                            let done = m.new_label();
                            m.const_int(m.reg(2), 0);
                            m.bind(head);
                            m.if_(CondOp::Ge, m.reg(2), p, done);
                            m.binop(BinOp::Add, m.reg(0), m.reg(0), m.reg(2));
                            m.binop_lit(BinOp::Add, m.reg(2), m.reg(2), 1);
                            m.goto(head);
                            m.bind(done);
                        }
                        Block::Trapped => {
                            let handler = m.new_label();
                            let after = m.new_label();
                            let scope = m.begin_try();
                            m.invoke_static("Lp/Ext;", "io", "(I)I", &[m.reg(0)]);
                            m.move_result(m.reg(0));
                            m.end_try(scope, &[(Some("Ljava/io/IOException;"), handler)]);
                            m.goto(after);
                            m.bind(handler);
                            m.move_exception(m.reg(3));
                            m.binop(BinOp::Or, m.reg(1), m.reg(1), m.reg(2));
                            m.bind(after);
                        }
                    }
                }
                m.ret(Some(m.reg(0)));
            },
        );
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

// ---------- Reference engines (chaotic iteration over BTreeSet) ----------

/// Real (non-exit) successors of `i` over both edge kinds.
fn real_succs(cfg: &Cfg, i: usize) -> Vec<usize> {
    cfg.succ_iter(StmtId(i as u32))
        .filter(|t| t.index() < cfg.len)
        .map(StmtId::index)
        .collect()
}

/// Reaching definitions by chaotic iteration: sweep all statements in
/// index order until nothing changes. Facts are plain `BTreeSet<StmtId>`
/// of defining statements.
fn ref_reaching_before(body: &Body, cfg: &Cfg) -> Vec<BTreeSet<StmtId>> {
    let n = body.len();
    let mut before: Vec<BTreeSet<StmtId>> = vec![BTreeSet::new(); n];
    let mut after: Vec<BTreeSet<StmtId>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut inset = BTreeSet::new();
            for p in &cfg.preds[i] {
                inset.extend(after[p.index()].iter().copied());
            }
            let mut outset = inset.clone();
            if let Some(local) = body.stmt(StmtId(i as u32)).def() {
                outset.retain(|d| body.stmt(*d).def() != Some(local));
                outset.insert(StmtId(i as u32));
            }
            changed |= inset != before[i] || outset != after[i];
            before[i] = inset;
            after[i] = outset;
        }
        if !changed {
            return before;
        }
    }
}

/// Live variables by chaotic iteration over `BTreeSet<LocalId>`.
fn ref_liveness(body: &Body, cfg: &Cfg) -> (Vec<BTreeSet<LocalId>>, Vec<BTreeSet<LocalId>>) {
    let n = body.len();
    let mut before: Vec<BTreeSet<LocalId>> = vec![BTreeSet::new(); n];
    let mut after: Vec<BTreeSet<LocalId>> = vec![BTreeSet::new(); n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let mut outset = BTreeSet::new();
            for s in real_succs(cfg, i) {
                outset.extend(before[s].iter().copied());
            }
            let stmt = body.stmt(StmtId(i as u32));
            let mut inset = outset.clone();
            if let Some(d) = stmt.def() {
                inset.remove(&d);
            }
            inset.extend(stmt.uses());
            changed |= inset != before[i] || outset != after[i];
            before[i] = inset;
            after[i] = outset;
        }
        if !changed {
            return (before, after);
        }
    }
}

/// Object flow by the pre-union-find algorithm: rescan the whole body,
/// applying every bidirectional propagation rule, until the tainted sets
/// stop growing; then read the derived facts off the closure.
fn ref_object_flow(body: &Body, seed: LocalId, opts: FlowOptions) -> ObjectFlow {
    let mut locals: BTreeSet<LocalId> = BTreeSet::new();
    let mut fields: BTreeSet<FieldKey> = BTreeSet::new();
    locals.insert(seed);
    loop {
        let before = (locals.len(), fields.len());
        for (_, stmt) in body.iter() {
            match stmt {
                Stmt::Assign { local, rvalue } => match rvalue {
                    Rvalue::Use(Operand::Local(src))
                    | Rvalue::Cast {
                        op: Operand::Local(src),
                        ..
                    } if locals.contains(local) || locals.contains(src) => {
                        locals.insert(*local);
                        locals.insert(*src);
                    }
                    Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field }
                        if opts.through_fields
                            && (locals.contains(local) || fields.contains(field)) =>
                    {
                        locals.insert(*local);
                        fields.insert(*field);
                    }
                    Rvalue::Invoke(inv) if opts.fluent_returns => {
                        if let Some(Operand::Local(recv)) = inv.receiver() {
                            if locals.contains(local) || locals.contains(&recv) {
                                locals.insert(*local);
                                locals.insert(recv);
                            }
                        }
                    }
                    _ => {}
                },
                Stmt::StoreInstanceField { field, value, .. }
                | Stmt::StoreStaticField { field, value }
                    if opts.through_fields =>
                {
                    if let Operand::Local(v) = value {
                        if locals.contains(v) || fields.contains(field) {
                            locals.insert(*v);
                            fields.insert(*field);
                        }
                    }
                }
                _ => {}
            }
        }
        if (locals.len(), fields.len()) == before {
            break;
        }
    }

    let mut flow = ObjectFlow {
        locals,
        fields,
        ..ObjectFlow::default()
    };
    for (id, stmt) in body.iter() {
        if let Stmt::Assign { local, rvalue } = stmt {
            if flow.locals.contains(local) {
                match rvalue {
                    Rvalue::New { .. } | Rvalue::NewArray { .. } => flow.alloc_sites.push(id),
                    Rvalue::Invoke(inv) => {
                        let self_returning = matches!(
                            inv.receiver(),
                            Some(Operand::Local(r)) if flow.locals.contains(&r)
                        );
                        if !self_returning {
                            flow.alloc_sites.push(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(inv) = stmt.invoke_expr() {
            if let Some(Operand::Local(recv)) = inv.receiver() {
                if flow.locals.contains(&recv) {
                    flow.invoked_on.push(id);
                }
            }
        }
    }
    flow
}

/// A body exercising the object-flow rules: a builder object threaded
/// through moves, fluent calls, and a field round-trip, with an unrelated
/// second object as a negative control.
fn flow_body(chain: usize, via_field: bool) -> Body {
    let mut b = AdxBuilder::new();
    b.class("Lp/F;", |c| {
        c.method("g", "()V", AccessFlags::PUBLIC, 6, |m| {
            let cur = m.reg(0);
            let next = m.reg(1);
            let other = m.reg(2);
            m.new_instance(cur, "Lnet/Builder;");
            m.invoke_direct("Lnet/Builder;", "<init>", "()V", &[cur]);
            m.new_instance(other, "Lnet/Other;");
            m.invoke_direct("Lnet/Other;", "<init>", "()V", &[other]);
            for _ in 0..chain {
                m.invoke_virtual(
                    "Lnet/Builder;",
                    "timeout",
                    "(I)Lnet/Builder;",
                    &[cur, m.reg(3)],
                );
                m.move_result(next);
                m.mov(cur, next);
            }
            if via_field {
                m.sput(cur, "Lp/F;", "shared", "Lnet/Builder;");
                m.sget(m.reg(4), "Lp/F;", "shared", "Lnet/Builder;");
                m.invoke_virtual("Lnet/Builder;", "build", "()V", &[m.reg(4)]);
            }
            m.invoke_virtual("Lnet/Other;", "poke", "()V", &[other]);
            m.ret(None);
        });
    });
    let program = nck_ir::lift_file(&b.finish().unwrap()).unwrap();
    program.methods[0].body.as_deref().unwrap().clone()
}

// ---------- The differentials ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dense reaching-definitions engine agrees with chaotic
    /// iteration over `BTreeSet` facts at every (statement, local) pair.
    #[test]
    fn reaching_defs_matches_reference(
        blocks in arb_blocks(),
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(&blocks, &consts);
        let cfg = Cfg::build(&body);
        let rd = ReachingDefs::compute(&body, &cfg);
        let reference = ref_reaching_before(&body, &cfg);
        for (id, _) in body.iter() {
            for l in 0..body.locals.len() {
                let local = LocalId(l as u32);
                let fast = rd.reaching(id, local);
                let slow: Vec<StmtId> = reference[id.index()]
                    .iter()
                    .copied()
                    .filter(|d| body.stmt(*d).def() == Some(local))
                    .collect();
                prop_assert_eq!(&fast, &slow, "reaching({:?}, {:?}) diverged", id, local);
            }
        }
    }

    /// The dense liveness engine agrees with chaotic iteration at every
    /// (statement, local) pair, before and after.
    #[test]
    fn liveness_matches_reference(
        blocks in arb_blocks(),
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(&blocks, &consts);
        let cfg = Cfg::build(&body);
        let live = Liveness::compute(&body, &cfg);
        let (before, after) = ref_liveness(&body, &cfg);
        for (id, _) in body.iter() {
            for l in 0..body.locals.len() {
                let local = LocalId(l as u32);
                prop_assert_eq!(
                    live.live_before(id, local),
                    before[id.index()].contains(&local),
                    "live_before({:?}, {:?}) diverged", id, local
                );
                prop_assert_eq!(
                    live.live_after(id, local),
                    after[id.index()].contains(&local),
                    "live_after({:?}, {:?}) diverged", id, local
                );
            }
        }
    }

    /// The union-find object-flow closure agrees with the whole-body
    /// rescan fixpoint it replaced, on every output field.
    #[test]
    fn object_flow_matches_reference(
        chain in 0usize..6,
        via_field in any::<bool>(),
        fluent in any::<bool>(),
        through_fields in any::<bool>(),
    ) {
        let body = flow_body(chain, via_field);
        let opts = FlowOptions { fluent_returns: fluent, through_fields };
        let seed = LocalId(0);
        let fast = object_flow(&body, seed, opts);
        let slow = ref_object_flow(&body, seed, opts);
        prop_assert_eq!(&fast.locals, &slow.locals);
        prop_assert_eq!(&fast.fields, &slow.fields);
        prop_assert_eq!(&fast.alloc_sites, &slow.alloc_sites);
        prop_assert_eq!(&fast.invoked_on, &slow.invoked_on);
    }

    /// Solving the same body twice (and through a rebuilt CFG) yields
    /// identical answers: the priority caches on the CFG must not leak
    /// state between solves.
    #[test]
    fn repeated_solves_are_stable(
        blocks in arb_blocks(),
        consts in proptest::collection::vec(any::<i32>(), 3),
    ) {
        let body = random_body(&blocks, &consts);
        let cfg = Cfg::build(&body);
        let rd1 = ReachingDefs::compute(&body, &cfg);
        let _live = Liveness::compute(&body, &cfg); // Populates the backward cache.
        let rd2 = ReachingDefs::compute(&body, &cfg);
        let fresh = ReachingDefs::compute(&body, &Cfg::build(&body));
        for (id, _) in body.iter() {
            for l in 0..body.locals.len() {
                let local = LocalId(l as u32);
                let a = rd1.reaching(id, local);
                prop_assert_eq!(&a, &rd2.reaching(id, local));
                prop_assert_eq!(&a, &fresh.reaching(id, local));
            }
        }
    }
}
