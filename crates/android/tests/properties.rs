//! Property tests for the manifest format and the APK container.

use nck_android::apk::Apk;
use nck_android::manifest::{ComponentKind, Manifest};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = ComponentKind> {
    prop_oneof![
        Just(ComponentKind::Activity),
        Just(ComponentKind::Service),
        Just(ComponentKind::Receiver),
        Just(ComponentKind::Provider),
    ]
}

prop_compose! {
    fn arb_manifest()(
        package in "[a-z][a-z0-9]{0,8}(\\.[a-z][a-z0-9]{0,8}){0,3}",
        perms in proptest::collection::vec("[a-zA-Z][a-zA-Z0-9._]{0,40}", 0..6),
        comps in proptest::collection::vec(
            ("L[a-zA-Z][a-zA-Z0-9/$]{0,30};", arb_kind(), any::<bool>()),
            0..8
        ),
    ) -> Manifest {
        let mut m = Manifest::new(&package);
        for p in &perms {
            m.permission(p);
        }
        for (class, kind, exported) in &comps {
            m.component(class, *kind);
            m.components.last_mut().expect("just pushed").exported = *exported;
        }
        m
    }
}

proptest! {
    #[test]
    fn manifest_roundtrips(m in arb_manifest()) {
        let text = m.to_text();
        let parsed = Manifest::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed, m);
    }

    #[test]
    fn manifest_parse_never_panics(text in "\\PC{0,400}") {
        let _ = Manifest::parse(&text);
    }

    #[test]
    fn apk_container_roundtrips(m in arb_manifest()) {
        let apk = Apk::new(m, nck_dex::AdxFile::new());
        let bytes = apk.to_bytes();
        let parsed = Apk::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(parsed.manifest, apk.manifest);
    }

    #[test]
    fn apk_parse_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Apk::from_bytes(&bytes);
    }

    #[test]
    fn apk_truncation_always_errors(m in arb_manifest(), cut in 1usize..64) {
        let apk = Apk::new(m, nck_dex::AdxFile::new());
        let bytes = apk.to_bytes();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(Apk::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }
}
