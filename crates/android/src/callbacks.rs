//! UI callback interfaces and implicit framework invocation rules.
//!
//! Android never calls `doInBackground` or `onClick` through an explicit
//! call site; the framework invokes them. FlowDroid models these as entry
//! points and implicit edges — this module is the rule table our call
//! graph builder consumes.

/// A UI callback interface method that becomes a component entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackSpec {
    /// Interface descriptor the listener class implements.
    pub interface: &'static str,
    /// Callback method name.
    pub method: &'static str,
    /// Callback method signature.
    pub sig: &'static str,
    /// `true` when the callback is triggered by direct user interaction
    /// (clicks, menu selections) — requests reached only from such
    /// callbacks are user-initiated/time-sensitive in the paper's sense.
    pub user_triggered: bool,
}

/// The UI callback interfaces NChecker recognizes.
pub const UI_CALLBACKS: &[CallbackSpec] = &[
    CallbackSpec {
        interface: "Landroid/view/View$OnClickListener;",
        method: "onClick",
        sig: "(Landroid/view/View;)V",
        user_triggered: true,
    },
    CallbackSpec {
        interface: "Landroid/view/View$OnLongClickListener;",
        method: "onLongClick",
        sig: "(Landroid/view/View;)Z",
        user_triggered: true,
    },
    CallbackSpec {
        interface: "Landroid/widget/AdapterView$OnItemClickListener;",
        method: "onItemClick",
        sig: "(Landroid/widget/AdapterView;Landroid/view/View;IJ)V",
        user_triggered: true,
    },
    CallbackSpec {
        interface: "Landroid/view/MenuItem$OnMenuItemClickListener;",
        method: "onMenuItemClick",
        sig: "(Landroid/view/MenuItem;)Z",
        user_triggered: true,
    },
    CallbackSpec {
        interface: "Landroid/widget/TextView$OnEditorActionListener;",
        method: "onEditorAction",
        sig: "(Landroid/widget/TextView;ILandroid/view/KeyEvent;)Z",
        user_triggered: true,
    },
    CallbackSpec {
        interface: "Landroid/content/BroadcastReceiver;",
        method: "onReceive",
        sig: "(Landroid/content/Context;Landroid/content/Intent;)V",
        user_triggered: false,
    },
];

/// Looks up the callback spec matching an implemented `interface` and a
/// defined method `(name, sig)`.
pub fn ui_callback_for(interface: &str, name: &str, sig: &str) -> Option<&'static CallbackSpec> {
    UI_CALLBACKS
        .iter()
        .find(|c| c.interface == interface && c.method == name && c.sig == sig)
}

/// An implicit framework edge: calling `trigger` on an instance of (a
/// subclass of) `trigger_class` causes the framework to invoke `targets`
/// on the receiver (or on a `Runnable`-like argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitEdgeSpec {
    /// Base class/interface of the receiver (descriptor).
    pub trigger_class: &'static str,
    /// Triggering method name.
    pub trigger: &'static str,
    /// Methods invoked by the framework on the flow target.
    pub targets: &'static [(&'static str, &'static str)],
    /// When `true` the flow target is the first argument (e.g.
    /// `Handler.post(Runnable)`), otherwise the receiver itself.
    pub via_argument: bool,
}

/// The implicit invocation rules for threading and task APIs.
pub const IMPLICIT_EDGES: &[ImplicitEdgeSpec] = &[
    ImplicitEdgeSpec {
        trigger_class: "Landroid/os/AsyncTask;",
        trigger: "execute",
        targets: &[
            ("onPreExecute", "()V"),
            ("doInBackground", "([Ljava/lang/Object;)Ljava/lang/Object;"),
            ("onPostExecute", "(Ljava/lang/Object;)V"),
        ],
        via_argument: false,
    },
    ImplicitEdgeSpec {
        trigger_class: "Ljava/lang/Thread;",
        trigger: "start",
        targets: &[("run", "()V")],
        via_argument: false,
    },
    ImplicitEdgeSpec {
        trigger_class: "Landroid/os/Handler;",
        trigger: "post",
        targets: &[("run", "()V")],
        via_argument: true,
    },
    ImplicitEdgeSpec {
        trigger_class: "Landroid/os/Handler;",
        trigger: "postDelayed",
        targets: &[("run", "()V")],
        via_argument: true,
    },
    ImplicitEdgeSpec {
        trigger_class: "Ljava/util/concurrent/Executor;",
        trigger: "execute",
        targets: &[("run", "()V")],
        via_argument: true,
    },
];

/// Returns the implicit-edge rules whose trigger method is `name` (the
/// caller still has to check the receiver's class hierarchy).
pub fn implicit_edges_for(name: &str) -> Vec<&'static ImplicitEdgeSpec> {
    IMPLICIT_EDGES
        .iter()
        .filter(|e| e.trigger == name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onclick_is_user_triggered() {
        let c = ui_callback_for(
            "Landroid/view/View$OnClickListener;",
            "onClick",
            "(Landroid/view/View;)V",
        )
        .unwrap();
        assert!(c.user_triggered);
    }

    #[test]
    fn wrong_sig_does_not_match() {
        assert!(ui_callback_for("Landroid/view/View$OnClickListener;", "onClick", "()V").is_none());
    }

    #[test]
    fn async_task_execute_has_three_targets() {
        let edges = implicit_edges_for("execute");
        let at = edges
            .iter()
            .find(|e| e.trigger_class == "Landroid/os/AsyncTask;")
            .unwrap();
        assert_eq!(at.targets.len(), 3);
        assert!(!at.via_argument);
    }

    #[test]
    fn handler_post_flows_via_argument() {
        let edges = implicit_edges_for("post");
        assert!(edges.iter().any(|e| e.via_argument));
    }
}
