//! The app manifest: package, components, and permissions.
//!
//! Real Android apps carry `AndroidManifest.xml`; our APK bundles carry the
//! same information in a simple line-oriented text form with a parser and
//! serializer. NChecker reads it to classify request contexts: requests
//! reached from an `Activity` entry point are user-initiated, requests
//! reached from a `Service` are background (§4.4.2).

use std::fmt;

/// The kind of an Android component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// A user-facing screen.
    Activity,
    /// A background service.
    Service,
    /// A broadcast receiver.
    Receiver,
    /// A content provider.
    Provider,
}

impl ComponentKind {
    /// Parses the manifest keyword form.
    pub fn parse(s: &str) -> Option<ComponentKind> {
        match s {
            "activity" => Some(ComponentKind::Activity),
            "service" => Some(ComponentKind::Service),
            "receiver" => Some(ComponentKind::Receiver),
            "provider" => Some(ComponentKind::Provider),
            _ => None,
        }
    }

    /// The manifest keyword of this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::Receiver => "receiver",
            ComponentKind::Provider => "provider",
        }
    }

    /// The framework base class descriptor of this kind.
    pub fn base_class(self) -> &'static str {
        match self {
            ComponentKind::Activity => "Landroid/app/Activity;",
            ComponentKind::Service => "Landroid/app/Service;",
            ComponentKind::Receiver => "Landroid/content/BroadcastReceiver;",
            ComponentKind::Provider => "Landroid/content/ContentProvider;",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One `<activity>`/`<service>`/... declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDecl {
    /// Component class descriptor (`Lcom/app/MainActivity;`).
    pub class: String,
    /// Component kind.
    pub kind: ComponentKind,
    /// Whether other apps may launch the component.
    pub exported: bool,
}

/// The parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Application package name (`com.example.app`).
    pub package: String,
    /// Declared components in declaration order.
    pub components: Vec<ComponentDecl>,
    /// Requested permissions (`android.permission.INTERNET`, ...).
    pub permissions: Vec<String>,
}

/// Errors produced while parsing a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// A line did not match any known directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The manifest lacked a `package` directive.
    MissingPackage,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::BadLine { line, content } => {
                write!(
                    f,
                    "manifest line {line}: unrecognized directive {content:?}"
                )
            }
            ManifestError::MissingPackage => write!(f, "manifest missing package directive"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Creates a manifest for `package` with no components.
    pub fn new(package: &str) -> Manifest {
        Manifest {
            package: package.to_owned(),
            components: vec![],
            permissions: vec![],
        }
    }

    /// Adds a component declaration.
    pub fn component(&mut self, class: &str, kind: ComponentKind) -> &mut Self {
        self.components.push(ComponentDecl {
            class: class.to_owned(),
            kind,
            exported: false,
        });
        self
    }

    /// Adds a permission request.
    pub fn permission(&mut self, name: &str) -> &mut Self {
        self.permissions.push(name.to_owned());
        self
    }

    /// Returns the declaration of `class`, if any.
    pub fn component_of(&self, class: &str) -> Option<&ComponentDecl> {
        self.components.iter().find(|c| c.class == class)
    }

    /// Returns `true` when the app requests `android.permission.INTERNET`.
    pub fn has_internet_permission(&self) -> bool {
        self.permissions
            .iter()
            .any(|p| p == "android.permission.INTERNET")
    }

    /// Returns `true` when the app may query connectivity state.
    pub fn has_network_state_permission(&self) -> bool {
        self.permissions
            .iter()
            .any(|p| p == "android.permission.ACCESS_NETWORK_STATE")
    }

    /// Serializes to the line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut out = format!("package {}\n", self.package);
        for p in &self.permissions {
            out.push_str(&format!("uses-permission {p}\n"));
        }
        for c in &self.components {
            let exported = if c.exported { " exported" } else { "" };
            out.push_str(&format!("{} {}{}\n", c.kind.keyword(), c.class, exported));
        }
        out
    }

    /// Parses the line-oriented text form.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut manifest = Manifest::default();
        let mut have_package = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap_or_default();
            let bad = || ManifestError::BadLine {
                line: i + 1,
                content: raw.to_owned(),
            };
            match head {
                "package" => {
                    manifest.package = parts.next().ok_or_else(bad)?.to_owned();
                    have_package = true;
                }
                "uses-permission" => {
                    manifest
                        .permissions
                        .push(parts.next().ok_or_else(bad)?.to_owned());
                }
                kw => {
                    let kind = ComponentKind::parse(kw).ok_or_else(bad)?;
                    let class = parts.next().ok_or_else(bad)?.to_owned();
                    let exported = parts.next() == Some("exported");
                    manifest.components.push(ComponentDecl {
                        class,
                        kind,
                        exported,
                    });
                }
            }
        }
        if !have_package {
            return Err(ManifestError::MissingPackage);
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = Manifest::new("com.example.app");
        m.permission("android.permission.INTERNET")
            .permission("android.permission.ACCESS_NETWORK_STATE")
            .component("Lcom/example/app/MainActivity;", ComponentKind::Activity)
            .component("Lcom/example/app/SyncService;", ComponentKind::Service);
        let text = m.to_text();
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(m, parsed);
        assert!(parsed.has_internet_permission());
        assert!(parsed.has_network_state_permission());
    }

    #[test]
    fn component_lookup() {
        let mut m = Manifest::new("a.b");
        m.component("La/b/S;", ComponentKind::Service);
        assert_eq!(
            m.component_of("La/b/S;").map(|c| c.kind),
            Some(ComponentKind::Service)
        );
        assert!(m.component_of("La/b/T;").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Manifest::parse("package a\nwibble x"),
            Err(ManifestError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("activity La/B;"),
            Err(ManifestError::MissingPackage)
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m = Manifest::parse("# hello\n\npackage x.y\n# done\n").unwrap();
        assert_eq!(m.package, "x.y");
    }

    #[test]
    fn exported_flag_roundtrips() {
        let text = "package p\nactivity Lp/A; exported\n";
        let m = Manifest::parse(text).unwrap();
        assert!(m.components[0].exported);
        assert_eq!(m.to_text(), text);
    }
}
