//! Entry-point discovery: which methods the framework can invoke, and for
//! which component.
//!
//! This is the FlowDroid "dummy main" role: lifecycle methods of declared
//! components plus UI callbacks of listener classes, each attributed to a
//! component so the checker can classify requests as user-initiated
//! (Activity) or background (Service) — §4.4.2 of the paper.

use crate::callbacks::{ui_callback_for, UI_CALLBACKS};
use crate::component::lifecycle_methods;
use crate::manifest::{ComponentKind, Manifest};
use nck_ir::body::{MethodId, Program, Rvalue, Stmt};
use nck_ir::symbols::Symbol;

/// What made a method an entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A component lifecycle method (`onCreate`, `onStartCommand`, ...).
    Lifecycle,
    /// A UI callback (`onClick`, ...); `user_triggered` distinguishes
    /// direct interaction from passive callbacks.
    UiCallback {
        /// `true` for click-like callbacks.
        user_triggered: bool,
    },
}

/// One framework-invocable method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPoint {
    /// The entry method.
    pub method: MethodId,
    /// The component the entry is attributed to, when attribution
    /// succeeded.
    pub component: Option<Symbol>,
    /// The kind of the attributed component (defaults to
    /// [`ComponentKind::Activity`] for unattributed callbacks, the
    /// conservative choice for user-facing checks).
    pub component_kind: ComponentKind,
    /// Why this is an entry.
    pub kind: EntryKind,
}

impl EntryPoint {
    /// Returns `true` when requests reached from this entry are
    /// user-initiated in the paper's sense.
    pub fn is_user_context(&self) -> bool {
        match self.kind {
            EntryKind::UiCallback { user_triggered } => user_triggered,
            EntryKind::Lifecycle => self.component_kind == ComponentKind::Activity,
        }
    }
}

/// Finds the component class that instantiates `listener` anywhere in its
/// methods, searching all declared components.
fn attributing_component(
    program: &Program,
    manifest: &Manifest,
    listener: Symbol,
) -> Option<(Symbol, ComponentKind)> {
    for decl in &manifest.components {
        let Some(comp_sym) = program.symbols.get(&decl.class) else {
            continue;
        };
        let Some(class) = program.class(comp_sym) else {
            continue;
        };
        for &mid in &class.methods {
            let Some(body) = &program.method(mid).body else {
                continue;
            };
            for (_, stmt) in body.iter() {
                if let Stmt::Assign {
                    rvalue: Rvalue::New { ty },
                    ..
                } = stmt
                {
                    if *ty == listener {
                        return Some((comp_sym, decl.kind));
                    }
                }
            }
        }
    }
    None
}

/// Attributes an inner class (`Lcom/app/Main$1;`) to its outer class when
/// the outer class is a declared component.
fn outer_component(
    program: &Program,
    manifest: &Manifest,
    listener_name: &str,
) -> Option<(Symbol, ComponentKind)> {
    let dollar = listener_name.find('$')?;
    let outer = format!("{};", &listener_name[..dollar]);
    let decl = manifest.component_of(&outer)?;
    let sym = program.symbols.get(&outer)?;
    Some((sym, decl.kind))
}

/// Computes all entry points of `program` under `manifest`.
pub fn entry_points(program: &Program, manifest: &Manifest) -> Vec<EntryPoint> {
    let mut out = Vec::new();

    // 1. Lifecycle methods of declared components.
    for decl in &manifest.components {
        let Some(comp_sym) = program.symbols.get(&decl.class) else {
            continue;
        };
        let Some(class) = program.class(comp_sym) else {
            continue;
        };
        for &mid in &class.methods {
            let m = program.method(mid);
            let name = program.symbols.resolve(m.key.name);
            let sig = program.symbols.resolve(m.key.sig);
            if lifecycle_methods(decl.kind)
                .iter()
                .any(|l| l.name == name && l.sig == sig)
            {
                out.push(EntryPoint {
                    method: mid,
                    component: Some(comp_sym),
                    component_kind: decl.kind,
                    kind: EntryKind::Lifecycle,
                });
            }
        }
    }

    // 2. UI callbacks of listener classes (including components that
    //    implement listener interfaces themselves).
    for class in &program.classes {
        let interfaces = program.all_interfaces(class.name);
        if interfaces.is_empty() {
            continue;
        }
        let iface_names: Vec<&str> = interfaces
            .iter()
            .map(|&i| program.symbols.resolve(i))
            .collect();
        if !iface_names
            .iter()
            .any(|i| UI_CALLBACKS.iter().any(|c| c.interface == *i))
        {
            continue;
        }
        let class_name = program.symbols.resolve(class.name).to_owned();
        for &mid in &class.methods {
            let m = program.method(mid);
            let name = program.symbols.resolve(m.key.name);
            let sig = program.symbols.resolve(m.key.sig);
            let Some(spec) = iface_names
                .iter()
                .find_map(|i| ui_callback_for(i, name, sig))
            else {
                continue;
            };
            // Attribute: the class itself if it is a component; else its
            // outer class; else the component that instantiates it.
            let attribution = manifest
                .component_of(&class_name)
                .map(|d| (class.name, d.kind))
                .or_else(|| outer_component(program, manifest, &class_name))
                .or_else(|| attributing_component(program, manifest, class.name));
            let (component, component_kind) = match attribution {
                Some((c, k)) => (Some(c), k),
                None => (None, ComponentKind::Activity),
            };
            out.push(EntryPoint {
                method: mid,
                component,
                component_kind,
                kind: EntryKind::UiCallback {
                    user_triggered: spec.user_triggered,
                },
            });
        }
    }

    out.sort_by_key(|e| e.method);
    out.dedup_by_key(|e| e.method);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;

    fn activity_with_listener() -> (Program, Manifest) {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                4,
                |m| {
                    // new Main$1() — registers the click listener.
                    m.new_instance(m.reg(0), "Lcom/app/Main$1;");
                    m.invoke_direct("Lcom/app/Main$1;", "<init>", "()V", &[m.reg(0)]);
                    m.ret(None);
                },
            );
        });
        b.class("Lcom/app/Main$1;", |c| {
            c.interface("Landroid/view/View$OnClickListener;");
            c.method(
                "onClick",
                "(Landroid/view/View;)V",
                AccessFlags::PUBLIC,
                4,
                |m| m.ret(None),
            );
        });
        b.class("Lcom/app/Sync;", |c| {
            c.super_class("Landroid/app/Service;");
            c.method(
                "onStartCommand",
                "(Landroid/content/Intent;II)I",
                AccessFlags::PUBLIC,
                4,
                |m| {
                    m.const_int(m.reg(0), 0);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("com.app");
        manifest
            .component("Lcom/app/Main;", ComponentKind::Activity)
            .component("Lcom/app/Sync;", ComponentKind::Service);
        (program, manifest)
    }

    #[test]
    fn lifecycle_entries_found() {
        let (p, m) = activity_with_listener();
        let entries = entry_points(&p, &m);
        let lifecycles: Vec<_> = entries
            .iter()
            .filter(|e| e.kind == EntryKind::Lifecycle)
            .collect();
        assert_eq!(lifecycles.len(), 2); // onCreate + onStartCommand.
        assert!(lifecycles
            .iter()
            .any(|e| e.component_kind == ComponentKind::Service));
    }

    #[test]
    fn inner_class_callback_attributed_to_outer_component() {
        let (p, m) = activity_with_listener();
        let entries = entry_points(&p, &m);
        let cb = entries
            .iter()
            .find(|e| matches!(e.kind, EntryKind::UiCallback { .. }))
            .unwrap();
        assert_eq!(cb.component_kind, ComponentKind::Activity);
        assert_eq!(
            cb.component.map(|c| p.symbols.resolve(c).to_owned()),
            Some("Lcom/app/Main;".to_owned())
        );
        assert!(cb.is_user_context());
    }

    #[test]
    fn service_lifecycle_is_background_context() {
        let (p, m) = activity_with_listener();
        let entries = entry_points(&p, &m);
        let svc = entries
            .iter()
            .find(|e| e.component_kind == ComponentKind::Service)
            .unwrap();
        assert!(!svc.is_user_context());
    }

    #[test]
    fn listener_attributed_by_instantiation_site() {
        // Listener class with an unrelated name, instantiated inside the
        // Service.
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/Sync;", |c| {
            c.super_class("Landroid/app/Service;");
            c.method("onCreate", "()V", AccessFlags::PUBLIC, 4, |m| {
                m.new_instance(m.reg(0), "Lcom/app/Helper;");
                m.invoke_direct("Lcom/app/Helper;", "<init>", "()V", &[m.reg(0)]);
                m.ret(None);
            });
        });
        b.class("Lcom/app/Helper;", |c| {
            c.interface("Landroid/view/View$OnClickListener;");
            c.method(
                "onClick",
                "(Landroid/view/View;)V",
                AccessFlags::PUBLIC,
                4,
                |m| m.ret(None),
            );
        });
        let p = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("com.app");
        manifest.component("Lcom/app/Sync;", ComponentKind::Service);
        let entries = entry_points(&p, &manifest);
        let cb = entries
            .iter()
            .find(|e| matches!(e.kind, EntryKind::UiCallback { .. }))
            .unwrap();
        assert_eq!(cb.component_kind, ComponentKind::Service);
    }

    #[test]
    fn unattributed_callback_defaults_to_activity_context() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/Orphan;", |c| {
            c.interface("Landroid/view/View$OnClickListener;");
            c.method(
                "onClick",
                "(Landroid/view/View;)V",
                AccessFlags::PUBLIC,
                4,
                |m| m.ret(None),
            );
        });
        let p = lift_file(&b.finish().unwrap()).unwrap();
        let manifest = Manifest::new("com.app");
        let entries = entry_points(&p, &manifest);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].component.is_none());
        assert_eq!(entries[0].component_kind, ComponentKind::Activity);
    }
}
