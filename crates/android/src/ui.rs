//! UI notification classes — how NChecker decides a callback "shows the
//! user something" (§4.4.3).
//!
//! The paper: "Android mostly uses 5 classes to show alert messages:
//! `AlertDialog`, `DialogFragment`, `Toast`, `TextView` and `ImageView`.
//! If none of these classes' methods appear in the callback, NChecker
//! raises an alarm."

/// Class descriptors whose method calls count as user-visible alerts.
pub const ALERT_CLASSES: &[&str] = &[
    "Landroid/app/AlertDialog;",
    "Landroid/app/AlertDialog$Builder;",
    "Landroid/app/DialogFragment;",
    "Landroid/widget/Toast;",
    "Landroid/widget/TextView;",
    "Landroid/widget/ImageView;",
];

/// Returns `true` when a call to `class.method` displays something in the
/// UI.
///
/// Matching is by class: any method invoked on an alert class counts, as
/// in the paper's check. `Snackbar` (a support-library equivalent) is also
/// accepted.
pub fn is_alert_call(class: &str, _method: &str) -> bool {
    ALERT_CLASSES.contains(&class) || class == "Landroid/support/design/widget/Snackbar;"
}

/// Returns `true` when `class` is the framework `Handler`, through which a
/// background thread can reach the UI thread (the paper's second
/// notification route).
pub fn is_handler_class(class: &str) -> bool {
    class == "Landroid/os/Handler;"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toast_show_is_an_alert() {
        assert!(is_alert_call("Landroid/widget/Toast;", "show"));
        assert!(is_alert_call("Landroid/widget/Toast;", "makeText"));
    }

    #[test]
    fn textview_settext_is_an_alert() {
        assert!(is_alert_call("Landroid/widget/TextView;", "setText"));
    }

    #[test]
    fn arbitrary_classes_are_not_alerts() {
        assert!(!is_alert_call("Lcom/app/Helper;", "show"));
        assert!(!is_alert_call("Landroid/util/Log;", "d"));
    }

    #[test]
    fn handler_detection() {
        assert!(is_handler_class("Landroid/os/Handler;"));
        assert!(!is_handler_class("Lcom/app/Handler;"));
    }
}
