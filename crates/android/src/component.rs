//! Lifecycle methods of the four component kinds.

use crate::manifest::ComponentKind;

/// A lifecycle method specification: name plus signature descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleMethod {
    /// Method name (`onCreate`).
    pub name: &'static str,
    /// Signature descriptor.
    pub sig: &'static str,
}

/// Returns the lifecycle methods the framework invokes on components of
/// `kind`, in their canonical order.
pub fn lifecycle_methods(kind: ComponentKind) -> &'static [LifecycleMethod] {
    match kind {
        ComponentKind::Activity => &[
            LifecycleMethod {
                name: "onCreate",
                sig: "(Landroid/os/Bundle;)V",
            },
            LifecycleMethod {
                name: "onStart",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onResume",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onPause",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onStop",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onRestart",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onDestroy",
                sig: "()V",
            },
        ],
        ComponentKind::Service => &[
            LifecycleMethod {
                name: "onCreate",
                sig: "()V",
            },
            LifecycleMethod {
                name: "onStartCommand",
                sig: "(Landroid/content/Intent;II)I",
            },
            LifecycleMethod {
                name: "onBind",
                sig: "(Landroid/content/Intent;)Landroid/os/IBinder;",
            },
            LifecycleMethod {
                name: "onDestroy",
                sig: "()V",
            },
        ],
        ComponentKind::Receiver => &[LifecycleMethod {
            name: "onReceive",
            sig: "(Landroid/content/Context;Landroid/content/Intent;)V",
        }],
        ComponentKind::Provider => &[LifecycleMethod {
            name: "onCreate",
            sig: "()Z",
        }],
    }
}

/// Returns `true` when `(name, sig)` is a lifecycle method of `kind`.
pub fn is_lifecycle_method(kind: ComponentKind, name: &str, sig: &str) -> bool {
    lifecycle_methods(kind)
        .iter()
        .any(|m| m.name == name && m.sig == sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_lifecycle_contains_oncreate() {
        assert!(is_lifecycle_method(
            ComponentKind::Activity,
            "onCreate",
            "(Landroid/os/Bundle;)V"
        ));
        assert!(!is_lifecycle_method(
            ComponentKind::Activity,
            "onCreate",
            "()V"
        ));
    }

    #[test]
    fn service_lifecycle_contains_onstartcommand() {
        assert!(is_lifecycle_method(
            ComponentKind::Service,
            "onStartCommand",
            "(Landroid/content/Intent;II)I"
        ));
        assert!(!is_lifecycle_method(
            ComponentKind::Service,
            "onResume",
            "()V"
        ));
    }

    #[test]
    fn every_kind_has_lifecycle() {
        for k in [
            ComponentKind::Activity,
            ComponentKind::Service,
            ComponentKind::Receiver,
            ComponentKind::Provider,
        ] {
            assert!(!lifecycle_methods(k).is_empty());
        }
    }
}
