//! `nck-android`: the Android application model.
//!
//! Everything NChecker needs to know about the platform lives here: the
//! manifest format ([`manifest`]), the APK bundle container ([`apk`]),
//! component lifecycles ([`component`]), UI callback interfaces and
//! implicit framework invocation rules ([`callbacks`]), entry-point
//! discovery ([`entrypoints`]), and the UI alert classes used by the
//! failure-notification check ([`ui`]).
//!
//! # Examples
//!
//! ```
//! use nck_android::manifest::{ComponentKind, Manifest};
//!
//! let mut m = Manifest::new("com.example.app");
//! m.permission("android.permission.INTERNET")
//!     .component("Lcom/example/app/Main;", ComponentKind::Activity);
//! let parsed = Manifest::parse(&m.to_text()).unwrap();
//! assert!(parsed.has_internet_permission());
//! ```

pub mod apk;
pub mod callbacks;
pub mod component;
pub mod entrypoints;
pub mod manifest;
pub mod ui;

pub use apk::{Apk, ApkError};
pub use callbacks::{implicit_edges_for, ui_callback_for, CallbackSpec, ImplicitEdgeSpec};
pub use component::{is_lifecycle_method, lifecycle_methods, LifecycleMethod};
pub use entrypoints::{entry_points, EntryKind, EntryPoint};
pub use manifest::{ComponentDecl, ComponentKind, Manifest, ManifestError};
