//! The APK bundle: a manifest plus an ADX binary in one container.
//!
//! This is the on-disk artifact NChecker consumes, playing the role of the
//! real APK (zip of `AndroidManifest.xml` + `classes.dex`).

use crate::manifest::{Manifest, ManifestError};
use nck_dex::wire::{Reader, Writer};
use nck_dex::{write_adx, AdxError, AdxFile};

/// Container magic bytes.
pub const APK_MAGIC: &[u8; 4] = b"APK1";

/// An in-memory APK bundle.
#[derive(Debug, Clone, Default)]
pub struct Apk {
    /// The app manifest.
    pub manifest: Manifest,
    /// The app code.
    pub adx: AdxFile,
}

/// Errors produced while reading an APK bundle.
#[derive(Debug)]
pub enum ApkError {
    /// The container magic was wrong.
    BadMagic,
    /// The container was shorter than its header promised.
    Truncated,
    /// The embedded manifest failed to parse.
    Manifest(ManifestError),
    /// The embedded ADX failed to parse.
    Adx(AdxError),
    /// An I/O error while reading or writing a file.
    Io(std::io::Error),
}

impl std::fmt::Display for ApkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApkError::BadMagic => write!(f, "bad APK magic"),
            ApkError::Truncated => write!(f, "truncated APK container"),
            ApkError::Manifest(e) => write!(f, "manifest: {e}"),
            ApkError::Adx(e) => write!(f, "adx: {e}"),
            ApkError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ApkError {}

impl From<ManifestError> for ApkError {
    fn from(e: ManifestError) -> Self {
        ApkError::Manifest(e)
    }
}

impl From<AdxError> for ApkError {
    fn from(e: AdxError) -> Self {
        ApkError::Adx(e)
    }
}

impl From<std::io::Error> for ApkError {
    fn from(e: std::io::Error) -> Self {
        ApkError::Io(e)
    }
}

impl Apk {
    /// Creates a bundle from parts.
    pub fn new(manifest: Manifest, adx: AdxFile) -> Apk {
        Apk { manifest, adx }
    }

    /// Serializes the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(APK_MAGIC);
        w.str(&self.manifest.to_text());
        let adx = write_adx(&self.adx);
        w.u32(adx.len() as u32);
        w.bytes(&adx);
        w.into_bytes()
    }

    /// Parses a bundle, validating the embedded manifest and ADX payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Apk, ApkError> {
        Apk::from_bytes_obs(bytes, &nck_obs::Metrics::disabled())
    }

    /// Like [`Apk::from_bytes`], recording parser volume metrics
    /// (`parse.bytes`, `parse.classes`, ...) into `metrics`.
    pub fn from_bytes_obs(bytes: &[u8], metrics: &nck_obs::Metrics) -> Result<Apk, ApkError> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8().map_err(|_| ApkError::Truncated)?;
        }
        if &magic != APK_MAGIC {
            return Err(ApkError::BadMagic);
        }
        let manifest_text = r.str().map_err(|_| ApkError::Truncated)?;
        let manifest = Manifest::parse(&manifest_text)?;
        let adx_len = r.u32().map_err(|_| ApkError::Truncated)? as usize;
        if r.remaining() < adx_len {
            return Err(ApkError::Truncated);
        }
        let start = bytes.len() - r.remaining();
        let adx = nck_dex::read_adx_obs(&bytes[start..start + adx_len], metrics)?;
        Ok(Apk { manifest, adx })
    }

    /// Writes the bundle to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<(), ApkError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a bundle from `path`.
    pub fn load(path: &std::path::Path) -> Result<Apk, ApkError> {
        let bytes = std::fs::read(path)?;
        Apk::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ComponentKind;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;

    fn sample() -> Apk {
        let mut m = Manifest::new("com.example");
        m.permission("android.permission.INTERNET")
            .component("Lcom/example/Main;", ComponentKind::Activity);
        let mut b = AdxBuilder::new();
        b.class("Lcom/example/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                4,
                |m| m.ret(None),
            );
        });
        Apk::new(m, b.finish().unwrap())
    }

    #[test]
    fn roundtrip() {
        let apk = sample();
        let bytes = apk.to_bytes();
        let parsed = Apk::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.manifest, apk.manifest);
        assert_eq!(parsed.adx.classes.len(), 1);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'Z';
        assert!(matches!(Apk::from_bytes(&bytes), Err(ApkError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [1usize, 5, 10, bytes.len() / 2] {
            assert!(Apk::from_bytes(&bytes[..bytes.len() - cut]).is_err());
        }
    }

    #[test]
    fn corrupted_adx_payload_rejected() {
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(Apk::from_bytes(&bytes), Err(ApkError::Adx(_))));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("nck-apk-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.apk");
        let apk = sample();
        apk.save(&path).unwrap();
        let loaded = Apk::load(&path).unwrap();
        assert_eq!(loaded.manifest.package, "com.example");
        std::fs::remove_file(&path).ok();
    }
}
