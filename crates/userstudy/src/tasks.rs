//! The user-study tasks — Table 10.

use nchecker::{DefectKind, OverRetryContext};

/// One NPD-fixing task given to the volunteers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Task name as printed in Table 10 / Figure 10.
    pub name: &'static str,
    /// The defect being fixed.
    pub defect: DefectKind,
    /// The correct fix (Table 10 column 2).
    pub correct_fix: &'static str,
    /// Base fix time in minutes for a novice following the NChecker
    /// report (model parameter; see `model`).
    pub base_minutes: f64,
    /// Probability a volunteer produces the correct fix at all; only the
    /// retried-exception task is hard enough to fail (1 of 20 volunteers
    /// succeeded).
    pub success_prob: f64,
    /// Whether the task appears in Figure 10 (the retried-exception task
    /// is excluded because most volunteers could not finish it).
    pub in_figure10: bool,
}

/// Table 10's seven tasks.
pub const TASKS: &[Task] = &[
    Task {
        name: "AnkiDroid no conn. check",
        defect: DefectKind::MissedConnectivityCheck,
        correct_fix: "Add connectivity check before the request. Show error message if not \
                      connected.",
        base_minutes: 1.5,
        success_prob: 1.0,
        in_figure10: true,
    },
    Task {
        name: "GPSLogger no timeout",
        defect: DefectKind::MissedTimeout,
        correct_fix: "Add timeout API to set timeout value",
        base_minutes: 1.4,
        success_prob: 1.0,
        in_figure10: true,
    },
    Task {
        name: "GPSLogger no retry times",
        defect: DefectKind::MissedRetry,
        correct_fix: "Add retry API to set retry times",
        base_minutes: 1.6,
        success_prob: 1.0,
        in_figure10: true,
    },
    Task {
        name: "GPSLogger no retried exception",
        defect: DefectKind::MissedRetry,
        correct_fix: "Add another retry API to set exception class that should be retried",
        base_minutes: 6.0,
        success_prob: 0.05,
        in_figure10: false,
    },
    Task {
        name: "DevFest no err msg",
        defect: DefectKind::MissedFailureNotification,
        correct_fix: "Add error message in callback according to the error status.",
        base_minutes: 1.9,
        success_prob: 1.0,
        in_figure10: true,
    },
    Task {
        name: "DevFest invalid resp",
        defect: DefectKind::MissedResponseCheck,
        correct_fix: "Add null check and status check on the response before reading its body",
        base_minutes: 2.1,
        success_prob: 1.0,
        in_figure10: true,
    },
    Task {
        name: "Maoshishu over retry",
        defect: DefectKind::OverRetry {
            context: OverRetryContext::Service,
            default_caused: true,
        },
        correct_fix: "Add retry API and set retry time to be 0",
        base_minutes: 1.7,
        success_prob: 1.0,
        in_figure10: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_tasks_six_in_figure() {
        assert_eq!(TASKS.len(), 7);
        assert_eq!(TASKS.iter().filter(|t| t.in_figure10).count(), 6);
    }

    #[test]
    fn figure_tasks_average_near_paper_mean() {
        let mean: f64 = TASKS
            .iter()
            .filter(|t| t.in_figure10)
            .map(|t| t.base_minutes)
            .sum::<f64>()
            / 6.0;
        assert!((mean - 1.7).abs() < 0.05, "base means average to {mean}");
    }

    #[test]
    fn only_the_exception_task_is_hard() {
        let hard: Vec<_> = TASKS.iter().filter(|t| t.success_prob < 0.5).collect();
        assert_eq!(hard.len(), 1);
        assert!(hard[0].name.contains("retried exception"));
    }
}
