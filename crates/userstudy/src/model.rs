//! A Monte-Carlo developer model reproducing the controlled user study
//! (§5.4, Figure 10).
//!
//! The paper recruited 20 undergraduates averaging six months of Android
//! experience, gave them NChecker reports, and measured fix times:
//! 1.7 ± 0.14 minutes at a 95% confidence interval. We model a volunteer
//! as a lognormal multiplier over each task's base time, with an
//! experience discount and a large penalty when the report is withheld
//! (the with/without-report contrast is this reproduction's ablation).

use crate::tasks::{Task, TASKS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated volunteer.
#[derive(Debug, Clone, Copy)]
pub struct Volunteer {
    /// Android experience in months (paper average: 6).
    pub experience_months: f64,
    /// Whether they have any network programming background (rare; some
    /// volunteers explicitly had none).
    pub network_background: bool,
}

impl Volunteer {
    /// Samples a volunteer from the study's population.
    pub fn sample(rng: &mut StdRng) -> Volunteer {
        Volunteer {
            experience_months: rng.gen_range(2.0..=12.0),
            network_background: rng.gen::<f64>() < 0.25,
        }
    }
}

/// A standard normal sample via Box–Muller (no external distributions
/// crate needed).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One fix attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempt {
    /// Minutes spent.
    pub minutes: f64,
    /// Whether the produced fix was correct.
    pub correct: bool,
}

/// Simulates one volunteer fixing one task.
///
/// `with_report` controls whether the NChecker warning report (location,
/// impact, context, fix suggestion) is available.
pub fn fix_attempt(task: &Task, v: &Volunteer, with_report: bool, rng: &mut StdRng) -> Attempt {
    let mut base = task.base_minutes;
    if !with_report {
        // Without the report the volunteer must localize the defect and
        // derive the fix from API docs: the paper argues this takes far
        // longer for non-experts (order tens of minutes).
        base *= 8.0;
    }
    // Experience discount, centered so the study population (uniform
    // 2-12 months, mean 7) averages to a factor of 1.0: the task base
    // times then *are* the population means.
    let exp_factor = 1.233 - 0.4 * (v.experience_months / 12.0).min(1.0);
    // Network background shaves a bit more.
    let bg_factor = if v.network_background { 0.9 } else { 1.0 };
    let noise = (0.30 * std_normal(rng)).exp();
    let minutes = (base * exp_factor * bg_factor * noise).max(0.2);
    let correct = rng.gen::<f64>() < task.success_prob;
    Attempt { minutes, correct }
}

/// Aggregate statistics for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStat {
    /// Task name.
    pub name: &'static str,
    /// Mean fix time over correct attempts, minutes.
    pub mean_minutes: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Fraction of volunteers who produced a correct fix.
    pub success_rate: f64,
}

/// The simulated study result.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResult {
    /// Per-task statistics (Figure 10 bars), tasks in Table 10 order,
    /// excluding tasks not in the figure.
    pub per_task: Vec<TaskStat>,
    /// Overall mean and CI over all Figure 10 attempts.
    pub overall: TaskStat,
}

fn mean_ci(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    let ci = 1.96 * (var / n).sqrt();
    (mean, ci)
}

/// Runs the study with `volunteers` participants.
pub fn simulate(volunteers: usize, with_report: bool, seed: u64) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let vols: Vec<Volunteer> = (0..volunteers)
        .map(|_| Volunteer::sample(&mut rng))
        .collect();

    let mut per_task = Vec::new();
    let mut all: Vec<f64> = Vec::new();
    for task in TASKS.iter().filter(|t| t.in_figure10) {
        let mut times = Vec::new();
        let mut correct = 0usize;
        for v in &vols {
            let a = fix_attempt(task, v, with_report, &mut rng);
            if a.correct {
                correct += 1;
                times.push(a.minutes);
                all.push(a.minutes);
            }
        }
        let (mean, ci) = mean_ci(&times);
        per_task.push(TaskStat {
            name: task.name,
            mean_minutes: mean,
            ci95: ci,
            success_rate: correct as f64 / vols.len() as f64,
        });
    }
    let (mean, ci) = mean_ci(&all);
    StudyResult {
        per_task,
        overall: TaskStat {
            name: "Overall",
            mean_minutes: mean,
            ci95: ci,
            success_rate: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_report_matches_the_paper_envelope() {
        let r = simulate(20, true, 2016);
        // Paper: 1.7 ± 0.14 minutes at 95% CI.
        assert!(
            (r.overall.mean_minutes - 1.7).abs() < 0.3,
            "mean {}",
            r.overall.mean_minutes
        );
        assert!(r.overall.ci95 < 0.3, "ci {}", r.overall.ci95);
        assert_eq!(r.per_task.len(), 6);
        for t in &r.per_task {
            assert!(t.mean_minutes < 4.0, "{}: {}", t.name, t.mean_minutes);
            assert!((t.success_rate - 1.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn without_report_is_dramatically_slower() {
        let with = simulate(20, true, 7);
        let without = simulate(20, false, 7);
        assert!(
            without.overall.mean_minutes > with.overall.mean_minutes * 4.0,
            "with {} vs without {}",
            with.overall.mean_minutes,
            without.overall.mean_minutes
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        assert_eq!(simulate(20, true, 5), simulate(20, true, 5));
        assert_ne!(simulate(20, true, 5), simulate(20, true, 6));
    }

    #[test]
    fn retried_exception_task_mostly_fails() {
        // Run the excluded task directly: at most a few of 20 succeed.
        let mut rng = StdRng::seed_from_u64(3);
        let task = crate::tasks::TASKS.iter().find(|t| !t.in_figure10).unwrap();
        let vols: Vec<Volunteer> = (0..20).map(|_| Volunteer::sample(&mut rng)).collect();
        let correct = vols
            .iter()
            .filter(|v| fix_attempt(task, v, true, &mut rng).correct)
            .count();
        assert!(correct <= 4, "{correct} of 20 succeeded");
    }
}
