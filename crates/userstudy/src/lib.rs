//! `nck-userstudy`: the §5.4 controlled user study as a Monte-Carlo
//! developer model.
//!
//! The original study put 7 real NPDs (Table 10, [`tasks`]) in front of
//! 20 volunteers and timed their fixes with NChecker reports in hand
//! (Figure 10). Humans are not redistributable; [`model`] replaces them
//! with a calibrated stochastic developer whose with/without-report
//! contrast doubles as an ablation of the report's value.

pub mod model;
pub mod tasks;

pub use model::{fix_attempt, simulate, Attempt, StudyResult, TaskStat, Volunteer};
pub use tasks::{Task, TASKS};
