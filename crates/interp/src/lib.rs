//! `nck-interp`: an interpreter for lifted IR programs.
//!
//! Execution delegates every framework/library call to a pluggable
//! [`Env`], which is what makes the crate useful here: the dynamic
//! baseline checker ([`nck-dyntest`](../nck_dyntest/index.html)) plugs in
//! a fault-injecting network environment and *runs* apps under simulated
//! disruptions — the VanarSena/Caiipa approach the paper contrasts with
//! in §7 — and the test suite uses a differential harness (interpreter
//! vs. constant propagation) to validate the dataflow framework.

pub mod machine;
pub mod value;

pub use machine::{Env, EnvCtx, ExecError, ExtResult, Machine, NopEnv, Outcome, Thrown};
pub use value::{Heap, ObjId, Object, Value};
