//! Runtime values and the object heap of the IR interpreter.

use nck_ir::symbols::Symbol;
use std::collections::HashMap;

/// A heap object handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integers, booleans, chars — everything numeric.
    Int(i64),
    /// A string.
    Str(String),
    /// The null reference.
    Null,
    /// A heap object.
    Obj(ObjId),
    /// A class literal.
    Class(Symbol),
}

impl Value {
    /// Integer view; `Null` reads as 0 (reference comparisons against the
    /// zero literal are how null checks lift).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Null => Some(0),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for branch evaluation: zero and null are false-like.
    pub fn cond_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Null => 0,
            // References and strings compare as non-zero identities.
            Value::Obj(o) => i64::from(o.0) + 1,
            Value::Str(_) | Value::Class(_) => 1,
        }
    }
}

/// One heap object: its class and fields.
#[derive(Debug, Clone, Default)]
pub struct Object {
    /// Runtime class descriptor symbol.
    pub class: Option<Symbol>,
    /// Instance fields, keyed by field name symbol.
    pub fields: HashMap<Symbol, Value>,
}

/// The interpreter heap.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
    /// Static fields, keyed by (class, name) symbols.
    statics: HashMap<(Symbol, Symbol), Value>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates an object of `class`.
    pub fn alloc(&mut self, class: Symbol) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            class: Some(class),
            fields: HashMap::new(),
        });
        id
    }

    /// Returns the object's class.
    pub fn class_of(&self, id: ObjId) -> Option<Symbol> {
        self.objects.get(id.0 as usize)?.class
    }

    /// Reads an instance field (defaults to `Null` when unset).
    pub fn get_field(&self, id: ObjId, name: Symbol) -> Value {
        self.objects
            .get(id.0 as usize)
            .and_then(|o| o.fields.get(&name).cloned())
            .unwrap_or(Value::Null)
    }

    /// Writes an instance field.
    pub fn set_field(&mut self, id: ObjId, name: Symbol, value: Value) {
        if let Some(o) = self.objects.get_mut(id.0 as usize) {
            o.fields.insert(name, value);
        }
    }

    /// Reads a static field.
    pub fn get_static(&self, class: Symbol, name: Symbol) -> Value {
        self.statics
            .get(&(class, name))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes a static field.
    pub fn set_static(&mut self, class: Symbol, name: Symbol, value: Value) {
        self.statics.insert((class, name), value);
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_fields() {
        let mut interner = nck_ir::Interner::new();
        let cls = interner.intern("La/B;");
        let f = interner.intern("count");
        let mut heap = Heap::new();
        let o = heap.alloc(cls);
        assert_eq!(heap.class_of(o), Some(cls));
        assert_eq!(heap.get_field(o, f), Value::Null);
        heap.set_field(o, f, Value::Int(7));
        assert_eq!(heap.get_field(o, f), Value::Int(7));
    }

    #[test]
    fn statics_default_to_null() {
        let mut interner = nck_ir::Interner::new();
        let cls = interner.intern("La/B;");
        let f = interner.intern("flag");
        let mut heap = Heap::new();
        assert_eq!(heap.get_static(cls, f), Value::Null);
        heap.set_static(cls, f, Value::Int(1));
        assert_eq!(heap.get_static(cls, f), Value::Int(1));
    }

    #[test]
    fn value_truthiness() {
        assert_eq!(Value::Null.cond_int(), 0);
        assert_eq!(Value::Int(3).cond_int(), 3);
        assert_ne!(Value::Obj(ObjId(0)).cond_int(), 0);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), Some(0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }
}
