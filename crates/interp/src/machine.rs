//! The IR interpreter: a small register machine over lifted programs.
//!
//! Framework and library calls are delegated to a pluggable [`Env`],
//! which is how the dynamic checker injects network faults and observes
//! app behaviour. Execution is bounded by a step limit so the Figure 2
//! reconnect loop terminates the run instead of the test suite.

use crate::value::{Heap, Value};
#[cfg(test)]
use nck_dex::{BinOp, CondOp};
use nck_dex::{InvokeKind, UnOp};
use nck_ir::body::{
    Body, IdentityKind, InvokeExpr, MethodId, MethodKey, Operand, Program, Rvalue, Stmt, StmtId,
};
use nck_ir::symbols::{Interner, Symbol};

/// A thrown (possibly in-flight) exception.
#[derive(Debug, Clone, PartialEq)]
pub struct Thrown {
    /// Exception class descriptor (`Ljava/io/IOException;`).
    pub class: String,
    /// Diagnostic message.
    pub message: String,
}

impl Thrown {
    /// Creates an exception.
    pub fn new(class: &str, message: &str) -> Thrown {
        Thrown {
            class: class.to_owned(),
            message: message.to_owned(),
        }
    }
}

/// Why execution could not continue.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The step budget ran out (e.g. an unbounded retry loop).
    StepLimit,
    /// The program reached a state the interpreter cannot represent.
    BadState(&'static str),
}

/// The result of running a method to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Normal return.
    Returned(Option<Value>),
    /// An exception escaped the outermost frame — an app crash.
    Threw(Thrown),
}

/// What an external (framework/library) call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtResult {
    /// Normal completion with an optional value.
    Return(Option<Value>),
    /// The call threw.
    Throw(Thrown),
    /// The framework delivers a callback before the call returns: the
    /// machine invokes `method` on `receiver` (resolved on its runtime
    /// class) with `args` appended after the receiver, then completes the
    /// original call with `result`. This is how a fault-injecting
    /// environment drives `onErrorResponse`/`onFailure` listeners.
    CallThen {
        /// The callback receiver (usually a listener object).
        receiver: Value,
        /// Callback method name.
        method: String,
        /// Arguments after the receiver.
        args: Vec<Value>,
        /// The original call's final result.
        result: Option<Value>,
    },
}

/// Host services available to [`Env`] implementations.
pub struct EnvCtx<'a> {
    /// The interpreter heap.
    pub heap: &'a mut Heap,
    /// Symbol interner (a private copy; safe to extend).
    pub symbols: &'a mut Interner,
}

impl EnvCtx<'_> {
    /// Allocates an object of the named external class.
    pub fn alloc(&mut self, class: &str) -> Value {
        let sym = self.symbols.intern(class);
        Value::Obj(self.heap.alloc(sym))
    }
}

/// The external world: every call whose target is not defined in the
/// program lands here.
pub trait Env {
    /// Handles one external call. `receiver` is `None` for static calls.
    fn call_external(
        &mut self,
        ctx: &mut EnvCtx<'_>,
        class: &str,
        name: &str,
        sig: &str,
        args: &[Value],
    ) -> ExtResult;
}

/// A do-nothing environment: every external call returns `null`/void.
#[derive(Debug, Default)]
pub struct NopEnv;

impl Env for NopEnv {
    fn call_external(
        &mut self,
        _ctx: &mut EnvCtx<'_>,
        _class: &str,
        _name: &str,
        sig: &str,
        _args: &[Value],
    ) -> ExtResult {
        if sig.ends_with(")V") {
            ExtResult::Return(None)
        } else {
            ExtResult::Return(Some(Value::Null))
        }
    }
}

const NPE: &str = "Ljava/lang/NullPointerException;";
const ARITH: &str = "Ljava/lang/ArithmeticException;";

/// The interpreter.
pub struct Machine<'p, E: Env> {
    program: &'p Program,
    /// The environment handling external calls.
    pub env: E,
    /// The heap.
    pub heap: Heap,
    /// Private interner seeded from the program's (same symbol ids).
    pub symbols: Interner,
    steps: u64,
    step_limit: u64,
    call_depth: usize,
}

impl<'p, E: Env> Machine<'p, E> {
    /// Creates a machine over `program` with the given environment.
    pub fn new(program: &'p Program, env: E) -> Machine<'p, E> {
        Machine {
            program,
            env,
            heap: Heap::new(),
            symbols: program.symbols.clone(),
            steps: 0,
            step_limit: 100_000,
            call_depth: 0,
        }
    }

    /// Overrides the step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn resolve_str(&self, s: Symbol) -> &str {
        self.symbols.resolve(s)
    }

    /// Calls `method` with `args` (receiver first for instance methods).
    pub fn call(&mut self, method: MethodId, args: Vec<Value>) -> Result<Outcome, ExecError> {
        if self.call_depth > 128 {
            return Err(ExecError::BadState("call depth exceeded"));
        }
        self.call_depth += 1;
        let result = self.run_body(method, args);
        self.call_depth -= 1;
        result
    }

    fn run_body(&mut self, method: MethodId, args: Vec<Value>) -> Result<Outcome, ExecError> {
        let m = self.program.method(method);
        let Some(body) = &m.body else {
            return Err(ExecError::BadState("call to a bodiless method"));
        };
        let mut locals: Vec<Value> = vec![Value::Null; body.locals.len()];
        let mut pc = StmtId(0);
        let mut pending: Option<Thrown> = None;

        loop {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(ExecError::StepLimit);
            }
            if pc.index() >= body.stmts.len() {
                return Err(ExecError::BadState("fell off the end of a body"));
            }
            let stmt = body.stmt(pc);

            let step = self.exec_stmt(body, stmt, &mut locals, &args, &mut pending);
            match step {
                Err(e) => return Err(e),
                Ok(Control::Next) => pc = StmtId(pc.0 + 1),
                Ok(Control::Jump(t)) => pc = t,
                Ok(Control::Return(v)) => return Ok(Outcome::Returned(v)),
                Ok(Control::Throw(t)) => {
                    // Find a matching handler covering this pc.
                    let handler = body.traps_at(pc).find(|trap| {
                        trap.exception
                            .map(|e| exception_matches(&t.class, self.resolve_str(e)))
                            .unwrap_or(true)
                    });
                    match handler {
                        Some(trap) => {
                            pending = Some(t);
                            pc = trap.handler;
                        }
                        None => return Ok(Outcome::Threw(t)),
                    }
                }
            }
        }
    }

    fn eval(&self, locals: &[Value], op: Operand) -> Value {
        match op {
            Operand::Local(l) => locals[l.0 as usize].clone(),
            Operand::IntConst(v) => Value::Int(v),
            Operand::StrConst(s) => Value::Str(self.resolve_str(s).to_owned()),
            Operand::Null => Value::Null,
            Operand::ClassConst(c) => Value::Class(c),
        }
    }

    fn exec_stmt(
        &mut self,
        body: &Body,
        stmt: &Stmt,
        locals: &mut [Value],
        args: &[Value],
        pending: &mut Option<Thrown>,
    ) -> Result<Control, ExecError> {
        Ok(match stmt {
            Stmt::Nop => Control::Next,
            Stmt::Identity { local, kind } => {
                let v = match kind {
                    IdentityKind::This => args
                        .first()
                        .cloned()
                        .ok_or(ExecError::BadState("missing receiver"))?,
                    IdentityKind::Param(i) => {
                        // Instance methods: args[0] is the receiver.
                        let receiver = usize::from(body.iter().any(|(_, s)| {
                            matches!(
                                s,
                                Stmt::Identity {
                                    kind: IdentityKind::This,
                                    ..
                                }
                            )
                        }));
                        args.get(receiver + *i as usize)
                            .cloned()
                            .unwrap_or(Value::Null)
                    }
                    IdentityKind::CaughtException => {
                        // Bind the in-flight exception as an object-ish
                        // value; represent it as a string for simplicity.
                        match pending.take() {
                            Some(t) => Value::Str(t.class),
                            None => Value::Null,
                        }
                    }
                };
                locals[local.0 as usize] = v;
                Control::Next
            }
            Stmt::Assign { local, rvalue } => match self.eval_rvalue(body, rvalue, locals)? {
                Ok(v) => {
                    locals[local.0 as usize] = v;
                    Control::Next
                }
                Err(t) => Control::Throw(t),
            },
            Stmt::Invoke(inv) => match self.do_invoke(inv, locals)? {
                Ok(_) => Control::Next,
                Err(t) => Control::Throw(t),
            },
            Stmt::StoreInstanceField { base, field, value } => {
                let base = self.eval(locals, *base);
                let v = self.eval(locals, *value);
                match base {
                    Value::Obj(o) => {
                        self.heap.set_field(o, field.name, v);
                        Control::Next
                    }
                    Value::Null => Control::Throw(Thrown::new(NPE, "field store on null")),
                    _ => Control::Next,
                }
            }
            Stmt::StoreStaticField { field, value } => {
                let v = self.eval(locals, *value);
                self.heap.set_static(field.class, field.name, v);
                Control::Next
            }
            Stmt::StoreArrayElem { array, .. } => {
                if self.eval(locals, *array).is_null() {
                    Control::Throw(Thrown::new(NPE, "array store on null"))
                } else {
                    Control::Next
                }
            }
            Stmt::If { cond, a, b, target } => {
                let a = self.eval(locals, *a).cond_int();
                let b = self.eval(locals, *b).cond_int();
                if cond.eval(a, b) {
                    Control::Jump(*target)
                } else {
                    Control::Next
                }
            }
            Stmt::Goto { target } => Control::Jump(*target),
            Stmt::Switch { key, arms } => {
                let k = self.eval(locals, *key).cond_int();
                arms.iter()
                    .find(|(v, _)| i64::from(*v) == k)
                    .map(|&(_, t)| Control::Jump(t))
                    .unwrap_or(Control::Next)
            }
            Stmt::Return { value } => Control::Return(value.map(|v| self.eval(locals, v))),
            Stmt::Throw { value } => {
                let v = self.eval(locals, *value);
                let class = match v {
                    Value::Obj(o) => self
                        .heap
                        .class_of(o)
                        .map(|c| self.resolve_str(c).to_owned())
                        .unwrap_or_else(|| "Ljava/lang/Throwable;".to_owned()),
                    Value::Str(s) => s,
                    Value::Null => {
                        return Ok(Control::Throw(Thrown::new(NPE, "throw null")));
                    }
                    _ => "Ljava/lang/Throwable;".to_owned(),
                };
                Control::Throw(Thrown::new(&class, "explicit throw"))
            }
        })
    }

    #[allow(clippy::type_complexity)]
    fn eval_rvalue(
        &mut self,
        _body: &Body,
        rvalue: &Rvalue,
        locals: &[Value],
    ) -> Result<Result<Value, Thrown>, ExecError> {
        Ok(match rvalue {
            Rvalue::Use(op) => Ok(self.eval(locals, *op)),
            Rvalue::BinOp { op, a, b } => {
                let a = self.eval(locals, *a).cond_int();
                let b = self.eval(locals, *b).cond_int();
                match op.eval(a, b) {
                    Some(v) => Ok(Value::Int(v)),
                    None => Err(Thrown::new(ARITH, "divide by zero")),
                }
            }
            Rvalue::UnOp { op, a } => {
                let a = self.eval(locals, *a).cond_int();
                Ok(Value::Int(match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => !a,
                }))
            }
            Rvalue::Cast { op, .. } => Ok(self.eval(locals, *op)),
            Rvalue::InstanceOf { ty, op } => {
                let v = self.eval(locals, *op);
                let is = match v {
                    Value::Obj(o) => self.heap.class_of(o) == Some(*ty),
                    _ => false,
                };
                Ok(Value::Int(i64::from(is)))
            }
            Rvalue::New { ty } => Ok(Value::Obj(self.heap.alloc(*ty))),
            Rvalue::NewArray { ty, .. } => Ok(Value::Obj(self.heap.alloc(*ty))),
            Rvalue::InstanceField { base, field } => match self.eval(locals, *base) {
                Value::Obj(o) => Ok(self.heap.get_field(o, field.name)),
                Value::Null => Err(Thrown::new(NPE, "field load on null")),
                _ => Ok(Value::Null),
            },
            Rvalue::StaticField { field } => Ok(self.heap.get_static(field.class, field.name)),
            Rvalue::ArrayElem { array, .. } => match self.eval(locals, *array) {
                Value::Null => Err(Thrown::new(NPE, "array load on null")),
                _ => Ok(Value::Null),
            },
            Rvalue::ArrayLength { array } => match self.eval(locals, *array) {
                Value::Null => Err(Thrown::new(NPE, "length of null")),
                _ => Ok(Value::Int(0)),
            },
            Rvalue::Invoke(inv) => {
                return self
                    .do_invoke(inv, locals)
                    .map(|r| r.map(|v| v.unwrap_or(Value::Null)));
            }
        })
    }

    /// Resolves and performs a call; `Err(Thrown)` in the inner result is
    /// an exception propagating to the caller's handler search.
    #[allow(clippy::type_complexity)]
    fn do_invoke(
        &mut self,
        inv: &InvokeExpr,
        locals: &[Value],
    ) -> Result<Result<Option<Value>, Thrown>, ExecError> {
        let args: Vec<Value> = inv.args.iter().map(|&a| self.eval(locals, a)).collect();

        // Null receiver on instance calls.
        if inv.kind.has_receiver() {
            match args.first() {
                Some(Value::Null) | None => {
                    return Ok(Err(Thrown::new(NPE, "call on null receiver")));
                }
                _ => {}
            }
        }

        // Internal dispatch: virtual/interface calls resolve on the
        // receiver's *runtime* class first (walking up the hierarchy),
        // falling back to the statically named class.
        let mut target = None;
        if matches!(inv.kind, InvokeKind::Virtual | InvokeKind::Interface) {
            if let Some(Value::Obj(o)) = args.first() {
                if let Some(runtime_class) = self.heap.class_of(*o) {
                    for cls in self.program.hierarchy(runtime_class) {
                        let key = MethodKey {
                            class: cls,
                            ..inv.callee
                        };
                        if let Some(id) = self.program.lookup_method(key) {
                            target = Some(id);
                            break;
                        }
                    }
                }
            }
        }
        if target.is_none() {
            target = self.program.lookup_method(inv.callee);
        }

        if let Some(id) = target {
            if self.program.method(id).body.is_some() {
                return match self.call(id, args)? {
                    Outcome::Returned(v) => Ok(Ok(v)),
                    Outcome::Threw(t) => Ok(Err(t)),
                };
            }
        }

        // Implicit framework dispatch: `task.execute()` runs the task's
        // lifecycle methods, `thread.start()` runs `run`, etc. — the
        // dynamic analogue of the call graph's implicit edges.
        let name_str = self.resolve_str(inv.callee.name).to_owned();
        for rule in nck_android::implicit_edges_for(&name_str) {
            let flow = if rule.via_argument {
                args.get(usize::from(inv.kind.has_receiver())).cloned()
            } else {
                args.first().cloned()
            };
            let Some(Value::Obj(o)) = flow else { continue };
            let Some(runtime_class) = self.heap.class_of(o) else {
                continue;
            };
            let extends = self
                .program
                .hierarchy(runtime_class)
                .iter()
                .any(|&s| self.resolve_str(s) == rule.trigger_class)
                || rule.via_argument;
            if !extends {
                continue;
            }
            for &(tname, _tsig) in rule.targets {
                if let Some(id) = self.find_on_hierarchy(runtime_class, tname) {
                    // Frame: receiver plus nulls for declared parameters.
                    let m = self.program.method(id);
                    let sig = self.resolve_str(m.key.sig).to_owned();
                    let nparams = nck_dex::parse_signature(&sig)
                        .map(|(p, _)| p.len())
                        .unwrap_or(0);
                    let mut cargs = vec![Value::Obj(o)];
                    cargs.extend(std::iter::repeat_with(|| Value::Null).take(nparams));
                    match self.call(id, cargs)? {
                        Outcome::Returned(_) => {}
                        Outcome::Threw(t) => return Ok(Err(t)),
                    }
                }
            }
            return Ok(Ok(Some(Value::Null)));
        }

        // External call.
        let class = self.resolve_str(inv.callee.class).to_owned();
        let sig = self.resolve_str(inv.callee.sig).to_owned();
        let mut ctx = EnvCtx {
            heap: &mut self.heap,
            symbols: &mut self.symbols,
        };
        match self
            .env
            .call_external(&mut ctx, &class, &name_str, &sig, &args)
        {
            ExtResult::Return(v) => Ok(Ok(v)),
            ExtResult::Throw(t) => Ok(Err(t)),
            ExtResult::CallThen {
                receiver,
                method,
                args: cb_args,
                result,
            } => {
                if let Value::Obj(o) = receiver {
                    if let Some(runtime_class) = self.heap.class_of(o) {
                        if let Some(id) = self.find_on_hierarchy(runtime_class, &method) {
                            let mut cargs = vec![receiver];
                            cargs.extend(cb_args);
                            // Pad with nulls to the declared arity.
                            let m = self.program.method(id);
                            let sig = self.resolve_str(m.key.sig).to_owned();
                            let nparams = nck_dex::parse_signature(&sig)
                                .map(|(p, _)| p.len())
                                .unwrap_or(0);
                            while cargs.len() < nparams + 1 {
                                cargs.push(Value::Null);
                            }
                            cargs.truncate(nparams + 1);
                            match self.call(id, cargs)? {
                                Outcome::Returned(_) => {}
                                Outcome::Threw(t) => return Ok(Err(t)),
                            }
                        }
                    }
                }
                Ok(Ok(result))
            }
        }
    }

    /// Finds a program method named `name` on `class` or a superclass.
    fn find_on_hierarchy(&self, class: Symbol, name: &str) -> Option<MethodId> {
        for cls in self.program.hierarchy(class) {
            let found = self.program.iter_methods().find(|(_, m)| {
                m.key.class == cls
                    && self.program.symbols.resolve(m.key.name) == name
                    && m.body.is_some()
            });
            if let Some((id, _)) = found {
                return Some(id);
            }
        }
        None
    }
}

enum Control {
    Next,
    Jump(StmtId),
    Return(Option<Value>),
    Throw(Thrown),
}

/// Returns `true` when an exception of class `thrown` is caught by a
/// handler declared for `caught`, using the small built-in hierarchy of
/// the exception classes this substrate throws.
pub fn exception_matches(thrown: &str, caught: &str) -> bool {
    if thrown == caught {
        return true;
    }
    let supers: &[&str] = match thrown {
        "Ljava/net/SocketTimeoutException;" => &[
            "Ljava/io/InterruptedIOException;",
            "Ljava/io/IOException;",
            "Ljava/lang/Exception;",
            "Ljava/lang/Throwable;",
        ],
        "Ljava/net/UnknownHostException;" | "Ljava/net/ConnectException;" => &[
            "Ljava/io/IOException;",
            "Ljava/lang/Exception;",
            "Ljava/lang/Throwable;",
        ],
        "Ljava/io/IOException;" => &["Ljava/lang/Exception;", "Ljava/lang/Throwable;"],
        "Ljava/lang/NullPointerException;" | "Ljava/lang/ArithmeticException;" => &[
            "Ljava/lang/RuntimeException;",
            "Ljava/lang/Exception;",
            "Ljava/lang/Throwable;",
        ],
        _ => &["Ljava/lang/Exception;", "Ljava/lang/Throwable;"],
    };
    supers.contains(&caught)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;

    fn program_of(build: impl FnOnce(&mut AdxBuilder)) -> Program {
        let mut b = AdxBuilder::new();
        build(&mut b);
        lift_file(&b.finish().unwrap()).unwrap()
    }

    fn method(p: &Program, name: &str) -> MethodId {
        p.iter_methods()
            .find(|(_, m)| p.symbols.resolve(m.key.name) == name)
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn arithmetic_and_branches() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method(
                    "f",
                    "(I)I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    4,
                    |m| {
                        // return x > 10 ? x * 2 : x + 1
                        let x = m.param(0).unwrap();
                        let big = m.new_label();
                        let ten = m.reg(0);
                        m.const_int(ten, 10);
                        m.if_(CondOp::Gt, x, ten, big);
                        m.binop_lit(BinOp::Add, x, x, 1);
                        m.ret(Some(x));
                        m.bind(big);
                        m.binop_lit(BinOp::Mul, x, x, 2);
                        m.ret(Some(x));
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        assert_eq!(
            mach.call(f, vec![Value::Int(3)]).unwrap(),
            Outcome::Returned(Some(Value::Int(4)))
        );
        assert_eq!(
            mach.call(f, vec![Value::Int(20)]).unwrap(),
            Outcome::Returned(Some(Value::Int(40)))
        );
    }

    #[test]
    fn loops_terminate_and_compute() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                // sum 1..=n
                c.method(
                    "sum",
                    "(I)I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    6,
                    |m| {
                        let n = m.param(0).unwrap();
                        let acc = m.reg(0);
                        let i = m.reg(1);
                        let head = m.new_label();
                        let done = m.new_label();
                        m.const_int(acc, 0);
                        m.const_int(i, 1);
                        m.bind(head);
                        m.if_(CondOp::Gt, i, n, done);
                        m.binop(BinOp::Add, acc, acc, i);
                        m.binop_lit(BinOp::Add, i, i, 1);
                        m.goto(head);
                        m.bind(done);
                        m.ret(Some(acc));
                    },
                );
            });
        });
        let f = method(&p, "sum");
        let mut mach = Machine::new(&p, NopEnv);
        assert_eq!(
            mach.call(f, vec![Value::Int(10)]).unwrap(),
            Outcome::Returned(Some(Value::Int(55)))
        );
    }

    #[test]
    fn infinite_loop_hits_the_step_limit() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method(
                    "spin",
                    "()V",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    2,
                    |m| {
                        let head = m.new_label();
                        m.bind(head);
                        m.goto(head);
                    },
                );
            });
        });
        let f = method(&p, "spin");
        let mut mach = Machine::new(&p, NopEnv).with_step_limit(1000);
        assert_eq!(mach.call(f, vec![]), Err(ExecError::StepLimit));
    }

    #[test]
    fn exceptions_route_to_matching_handlers() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method(
                    "f",
                    "()I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    6,
                    |m| {
                        // try { 1 / 0 } catch (Arithmetic) { return 42 }
                        let a = m.reg(0);
                        let z = m.reg(1);
                        let handler = m.new_label();
                        m.const_int(a, 1);
                        m.const_int(z, 0);
                        let t = m.begin_try();
                        m.binop(BinOp::Div, a, a, z);
                        m.end_try(t, &[(Some("Ljava/lang/ArithmeticException;"), handler)]);
                        m.ret(Some(a));
                        m.bind(handler);
                        m.move_exception(m.reg(2));
                        m.const_int(a, 42);
                        m.ret(Some(a));
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        assert_eq!(
            mach.call(f, vec![]).unwrap(),
            Outcome::Returned(Some(Value::Int(42)))
        );
    }

    #[test]
    fn uncaught_exception_is_a_crash() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method(
                    "f",
                    "()I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    4,
                    |m| {
                        let a = m.reg(0);
                        let z = m.reg(1);
                        m.const_int(a, 1);
                        m.const_int(z, 0);
                        m.binop(BinOp::Div, a, a, z);
                        m.ret(Some(a));
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        match mach.call(f, vec![]).unwrap() {
            Outcome::Threw(t) => assert_eq!(t.class, ARITH),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn null_receiver_raises_npe() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method(
                    "f",
                    "()V",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    2,
                    |m| {
                        let x = m.reg(0);
                        m.const_null(x);
                        m.invoke_virtual("Lx/Y;", "poke", "()V", &[x]);
                        m.ret(None);
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        match mach.call(f, vec![]).unwrap() {
            Outcome::Threw(t) => assert_eq!(t.class, NPE),
            other => panic!("expected NPE, got {other:?}"),
        }
    }

    #[test]
    fn virtual_dispatch_uses_runtime_class() {
        let p = program_of(|b| {
            b.class("La/Base;", |c| {
                c.method("val", "()I", AccessFlags::PUBLIC, 2, |m| {
                    m.const_int(m.reg(0), 1);
                    m.ret(Some(m.reg(0)));
                });
            });
            b.class("La/Derived;", |c| {
                c.super_class("La/Base;");
                c.method("val", "()I", AccessFlags::PUBLIC, 2, |m| {
                    m.const_int(m.reg(0), 2);
                    m.ret(Some(m.reg(0)));
                });
            });
            b.class("La/Main;", |c| {
                c.method(
                    "f",
                    "()I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    4,
                    |m| {
                        let o = m.reg(0);
                        m.new_instance(o, "La/Derived;");
                        // Static callee type is Base; runtime type is Derived.
                        m.invoke_virtual("La/Base;", "val", "()I", &[o]);
                        m.move_result(m.reg(1));
                        m.ret(Some(m.reg(1)));
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        assert_eq!(
            mach.call(f, vec![]).unwrap(),
            Outcome::Returned(Some(Value::Int(2)))
        );
    }

    #[test]
    fn fields_persist_across_calls() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method("set", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                    let this = m.param(0).unwrap();
                    let v = m.param(1).unwrap();
                    m.iput(v, this, "La/A;", "x", "I");
                    m.ret(None);
                });
                c.method("get", "()I", AccessFlags::PUBLIC, 4, |m| {
                    let this = m.param(0).unwrap();
                    m.iget(m.reg(0), this, "La/A;", "x", "I");
                    m.ret(Some(m.reg(0)));
                });
                c.method(
                    "f",
                    "()I",
                    AccessFlags::PUBLIC | AccessFlags::STATIC,
                    4,
                    |m| {
                        let o = m.reg(0);
                        let v = m.reg(1);
                        m.new_instance(o, "La/A;");
                        m.const_int(v, 9);
                        m.invoke_virtual("La/A;", "set", "(I)V", &[o, v]);
                        m.invoke_virtual("La/A;", "get", "()I", &[o]);
                        m.move_result(v);
                        m.ret(Some(v));
                    },
                );
            });
        });
        let f = method(&p, "f");
        let mut mach = Machine::new(&p, NopEnv);
        assert_eq!(
            mach.call(f, vec![]).unwrap(),
            Outcome::Returned(Some(Value::Int(9)))
        );
    }
}
