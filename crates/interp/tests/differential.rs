//! Differential testing: the interpreter and the dataflow framework's
//! constant propagation must agree on straight-line arithmetic.
//!
//! For a random straight-line program over integer locals, whatever value
//! constant propagation proves for the returned local must be exactly
//! the value the interpreter computes.

use nck_dataflow::constprop::{CVal, ConstProp};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, UnOp};
use nck_interp::{Machine, NopEnv, Outcome, Value};
use nck_ir::cfg::Cfg;
use nck_ir::{LocalId, StmtId};
use proptest::prelude::*;

const LOCALS: u16 = 4;

/// One straight-line operation on the local pool.
#[derive(Debug, Clone)]
enum Op {
    Const {
        dst: u16,
        v: i32,
    },
    Bin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    BinLit {
        op: BinOp,
        dst: u16,
        a: u16,
        lit: i32,
    },
    Un {
        op: UnOp,
        dst: u16,
        a: u16,
    },
    Copy {
        dst: u16,
        src: u16,
    },
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    let reg = || 0..LOCALS;
    prop_oneof![
        (reg(), any::<i32>()).prop_map(|(dst, v)| Op::Const { dst, v }),
        (arb_binop(), reg(), reg(), reg()).prop_map(|(op, dst, a, b)| Op::Bin { op, dst, a, b }),
        (arb_binop(), reg(), reg(), any::<i32>()).prop_map(|(op, dst, a, lit)| Op::BinLit {
            op,
            dst,
            a,
            lit
        }),
        (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], reg(), reg())
            .prop_map(|(op, dst, a)| Op::Un { op, dst, a }),
        (reg(), reg()).prop_map(|(dst, src)| Op::Copy { dst, src }),
    ]
}

fn build(ops: &[Op], ret: u16) -> nck_ir::Program {
    let mut b = AdxBuilder::new();
    b.class("Lgen/D;", |c| {
        c.method(
            "f",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            LOCALS,
            |m| {
                // Deterministic initialization of every local.
                for r in 0..LOCALS {
                    m.const_int(m.reg(r), i64::from(r) + 1);
                }
                for op in ops {
                    match *op {
                        Op::Const { dst, v } => m.const_int(m.reg(dst), i64::from(v)),
                        Op::Bin { op, dst, a, b } => m.binop(op, m.reg(dst), m.reg(a), m.reg(b)),
                        Op::BinLit { op, dst, a, lit } => {
                            m.binop_lit(op, m.reg(dst), m.reg(a), lit)
                        }
                        Op::Un { op, dst, a } => m.unop(op, m.reg(dst), m.reg(a)),
                        Op::Copy { dst, src } => m.mov(m.reg(dst), m.reg(src)),
                    }
                }
                m.ret(Some(m.reg(ret)));
            },
        );
    });
    nck_ir::lift_file(&b.finish().unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn constprop_agrees_with_the_interpreter(
        ops in proptest::collection::vec(arb_op(), 0..24),
        ret in 0..LOCALS,
    ) {
        let program = build(&ops, ret);
        let body = program.methods[0].body.as_ref().unwrap();
        let cfg = Cfg::build(body);
        let cp = ConstProp::compute(body, &cfg);
        // The return statement is the last one.
        let ret_stmt = StmtId(body.stmts.len() as u32 - 1);
        let proved = cp.value_before(ret_stmt, LocalId(u32::from(ret)));

        let f = program
            .iter_methods()
            .find(|(_, m)| program.symbols.resolve(m.key.name) == "f")
            .map(|(id, _)| id)
            .unwrap();
        let mut machine = Machine::new(&program, NopEnv);
        let outcome = machine.call(f, vec![]);

        match (proved, outcome) {
            // A proven constant must be exactly what execution returns.
            (CVal::Int(v), Ok(Outcome::Returned(Some(Value::Int(got))))) => {
                prop_assert_eq!(v, got);
            }
            // Constprop proves values *for executions that reach the
            // return*; a division elsewhere may throw first, which the
            // value analysis deliberately does not model.
            (CVal::NonConst, Ok(_)) => {}
            (CVal::Int(_), Ok(Outcome::Threw(t))) => {
                prop_assert_eq!(
                    t.class.as_str(),
                    "Ljava/lang/ArithmeticException;",
                    "only arithmetic faults may preempt a proven return"
                );
            }
            (proved, outcome) => {
                prop_assert!(false, "unexpected pair: {proved:?} vs {outcome:?}");
            }
        }
    }
}
