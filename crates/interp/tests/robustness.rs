//! Robustness: the interpreter must never panic on any verifier-clean
//! program, terminating with a result, a crash outcome, or the step
//! limit.

use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_interp::{Machine, NopEnv, Value};
use proptest::prelude::*;

/// A little structured-program generator: nested blocks of arithmetic,
/// branches, loops, try/catch, and calls to a sibling method.
#[derive(Debug, Clone)]
enum Block {
    Arith { dst: u16, a: u16, b: u16, op: BinOp },
    Branch { cond_reg: u16, then_len: u8 },
    Loop { counter: u16, bound: i8 },
    TryDiv { a: u16, b: u16 },
    CallSibling,
}

fn arb_block() -> impl Strategy<Value = Block> {
    let reg = || 0..6u16;
    prop_oneof![
        (
            reg(),
            reg(),
            reg(),
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div),
                Just(BinOp::Rem),
                Just(BinOp::Xor),
            ]
        )
            .prop_map(|(dst, a, b, op)| Block::Arith { dst, a, b, op }),
        (reg(), 0u8..4).prop_map(|(cond_reg, then_len)| Block::Branch { cond_reg, then_len }),
        (reg(), -3i8..6).prop_map(|(counter, bound)| Block::Loop { counter, bound }),
        (reg(), reg()).prop_map(|(a, b)| Block::TryDiv { a, b }),
        Just(Block::CallSibling),
    ]
}

fn build(blocks: &[Block]) -> nck_ir::Program {
    let mut b = AdxBuilder::new();
    b.class("Lr/R;", |c| {
        c.method(
            "sib",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            2,
            |m| {
                m.const_int(m.reg(0), 7);
                m.ret(Some(m.reg(0)));
            },
        );
        c.method(
            "f",
            "(I)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            8,
            |m| {
                for r in 0..6 {
                    m.const_int(m.reg(r), i64::from(r) + 1);
                }
                for block in blocks {
                    match *block {
                        Block::Arith { dst, a, b, op } => {
                            m.binop(op, m.reg(dst), m.reg(a), m.reg(b))
                        }
                        Block::Branch { cond_reg, then_len } => {
                            let skip = m.new_label();
                            m.ifz(CondOp::Eq, m.reg(cond_reg), skip);
                            for k in 0..then_len {
                                m.binop_lit(
                                    BinOp::Add,
                                    m.reg(u16::from(k % 6)),
                                    m.reg(cond_reg),
                                    1,
                                );
                            }
                            m.bind(skip);
                        }
                        Block::Loop { counter, bound } => {
                            let head = m.new_label();
                            let done = m.new_label();
                            let lim = m.reg(6);
                            m.const_int(m.reg(counter), 0);
                            m.const_int(lim, i64::from(bound));
                            m.bind(head);
                            m.if_(CondOp::Ge, m.reg(counter), lim, done);
                            m.binop_lit(BinOp::Add, m.reg(counter), m.reg(counter), 1);
                            m.goto(head);
                            m.bind(done);
                        }
                        Block::TryDiv { a, b } => {
                            let handler = m.new_label();
                            let out = m.new_label();
                            let t = m.begin_try();
                            m.binop(BinOp::Div, m.reg(a), m.reg(a), m.reg(b));
                            m.end_try(t, &[(Some("Ljava/lang/ArithmeticException;"), handler)]);
                            m.goto(out);
                            m.bind(handler);
                            m.move_exception(m.reg(7));
                            m.const_int(m.reg(a), 0);
                            m.bind(out);
                        }
                        Block::CallSibling => {
                            m.invoke_static("Lr/R;", "sib", "()I", &[]);
                            m.move_result(m.reg(5));
                        }
                    }
                }
                m.ret(Some(m.reg(0)));
            },
        );
    });
    let file = b.finish().expect("labels bound");
    assert!(nck_dex::verify::verify(&file).is_empty());
    nck_ir::lift_file(&file).expect("liftable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interpreter_never_panics(
        blocks in proptest::collection::vec(arb_block(), 0..16),
        arg in any::<i32>(),
    ) {
        let program = build(&blocks);
        let f = program
            .iter_methods()
            .find(|(_, m)| program.symbols.resolve(m.key.name) == "f")
            .map(|(id, _)| id)
            .unwrap();
        let mut machine = Machine::new(&program, NopEnv).with_step_limit(20_000);
        // Any of Ok(Returned/Threw) or Err(StepLimit) is acceptable;
        // panicking or BadState is not.
        match machine.call(f, vec![Value::Int(i64::from(arg))]) {
            Ok(_) => {}
            Err(nck_interp::ExecError::StepLimit) => {}
            Err(e) => prop_assert!(false, "unexpected interpreter error: {e:?}"),
        }
    }

    #[test]
    fn interpreter_is_deterministic(
        blocks in proptest::collection::vec(arb_block(), 0..12),
        arg in any::<i16>(),
    ) {
        let program = build(&blocks);
        let f = program
            .iter_methods()
            .find(|(_, m)| program.symbols.resolve(m.key.name) == "f")
            .map(|(id, _)| id)
            .unwrap();
        let run = || {
            let mut machine = Machine::new(&program, NopEnv).with_step_limit(20_000);
            machine.call(f, vec![Value::Int(i64::from(arg))])
        };
        prop_assert_eq!(run(), run());
    }
}
