//! `nck-netlibs`: annotations of the six mobile network libraries.
//!
//! NChecker detects NPDs "when developers misuse network library APIs"
//! (§4); the tool itself never inspects library internals — it consumes a
//! registry of *annotated* APIs (§4.3). This crate is that registry:
//!
//! - [`library`]: the six libraries and their default behaviours;
//! - [`api`]: the 14 target, 77 config, and 2 response-checking APIs plus
//!   connectivity APIs and callback interfaces;
//! - [`mod@capability`]: the Table 4 matrix (auto ⋆ vs. manual ©);
//! - [`patterns`]: the Table 5 misuse pattern catalogue.
//!
//! # Examples
//!
//! ```
//! use nck_netlibs::api::Registry;
//! use nck_netlibs::library::Library;
//!
//! let registry = Registry::standard();
//! let t = registry
//!     .target("Lcom/android/volley/RequestQueue;", "add")
//!     .unwrap();
//! assert_eq!(t.library, Library::Volley);
//! ```

pub mod api;
pub mod capability;
pub mod library;
pub mod patterns;

pub use api::{
    volley_method_constant, ApiRef, CallbackApi, ConfigApi, ConfigKind, HttpMethod,
    MethodDetermination, Registry, ResponseCheckApi, TargetApi, CONNECTIVITY_APIS,
};
pub use capability::{capability, render_table4, NpdCause, Support, ALL_CAUSES};
pub use library::{defaults, Library, LibraryDefaults, ALL_LIBRARIES};
pub use patterns::{render_table5, MisusePattern, PatternRow, ALL_PATTERNS, TABLE5};
