//! The six mobile network libraries NChecker annotates (§3, Table 4) plus
//! their default behaviours.

use std::fmt;

/// One of the annotated network libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Library {
    /// `java.net.HttpURLConnection` — Android native.
    HttpUrlConnection,
    /// Apache `HttpClient` — Android native (until API 22).
    ApacheHttpClient,
    /// Google Volley.
    Volley,
    /// Square OkHttp.
    OkHttp,
    /// Android Asynchronous Http Client (loopj).
    AndroidAsyncHttp,
    /// Basic Http Client (turbomanage).
    BasicHttpClient,
}

/// All libraries in Table 4 column order.
pub const ALL_LIBRARIES: &[Library] = &[
    Library::HttpUrlConnection,
    Library::ApacheHttpClient,
    Library::Volley,
    Library::OkHttp,
    Library::AndroidAsyncHttp,
    Library::BasicHttpClient,
];

impl Library {
    /// Human-readable name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Library::HttpUrlConnection => "HttpURLConnection",
            Library::ApacheHttpClient => "Apache HttpClient",
            Library::Volley => "Volley",
            Library::OkHttp => "OkHttp",
            Library::AndroidAsyncHttp => "Android Async HTTP",
            Library::BasicHttpClient => "Basic HTTP",
        }
    }

    /// Returns `true` for the two Android native libraries.
    pub fn is_native(self) -> bool {
        matches!(self, Library::HttpUrlConnection | Library::ApacheHttpClient)
    }

    /// Returns `true` when the library exposes retry-policy APIs.
    pub fn has_retry_api(self) -> bool {
        matches!(
            self,
            Library::Volley | Library::AndroidAsyncHttp | Library::BasicHttpClient
        )
    }

    /// Returns `true` when the library exposes timeout APIs (all do).
    pub fn has_timeout_api(self) -> bool {
        true
    }

    /// Returns `true` when the library exposes a response-validity API.
    pub fn has_response_check_api(self) -> bool {
        matches!(self, Library::OkHttp | Library::ApacheHttpClient)
    }

    /// Returns `true` when the library's request path offers an explicit
    /// error callback interface (vs. requiring a `Handler` round trip).
    pub fn has_explicit_error_callback(self) -> bool {
        matches!(
            self,
            Library::Volley | Library::OkHttp | Library::AndroidAsyncHttp
        )
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Default behaviours of a library when the developer configures nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibraryDefaults {
    /// Default request timeout in milliseconds; `None` means no timeout
    /// (a blocking connect that can hang for minutes — §2.3 cause 3.1).
    pub timeout_ms: Option<u32>,
    /// Default automatic retry count on transient failure.
    pub retries: u32,
    /// Whether the default retries also apply to POST requests (violating
    /// HTTP/1.1's non-idempotent retry rule when they do).
    pub retries_apply_to_post: bool,
    /// Whether the library checks connectivity before sending.
    pub auto_connectivity_check: bool,
    /// Whether the library validates responses before handing them over.
    pub auto_response_check: bool,
}

/// Returns the defaults of `lib` as modeled from the paper (§1.2, §3,
/// §5.2.2).
pub fn defaults(lib: Library) -> LibraryDefaults {
    match lib {
        // Blocking connect; since Android 4.4 the OkHttp backend retries
        // alternate addresses on connect failure (§7).
        Library::HttpUrlConnection => LibraryDefaults {
            timeout_ms: None,
            retries: 1,
            retries_apply_to_post: false,
            auto_connectivity_check: false,
            auto_response_check: false,
        },
        Library::ApacheHttpClient => LibraryDefaults {
            timeout_ms: None,
            retries: 0,
            retries_apply_to_post: false,
            auto_connectivity_check: false,
            auto_response_check: false,
        },
        // "the default timeout is 2500ms... the library will automatically
        // retry once" (§1.2, Figure 3). Volley also auto-checks response
        // validity (Table 4).
        Library::Volley => LibraryDefaults {
            timeout_ms: Some(2500),
            retries: 1,
            retries_apply_to_post: true,
            auto_connectivity_check: false,
            auto_response_check: true,
        },
        // "OkHttp does not set request timeouts by default" (§3); it does
        // retry connection failures automatically.
        Library::OkHttp => LibraryDefaults {
            timeout_ms: None,
            retries: 1,
            retries_apply_to_post: false,
            auto_connectivity_check: false,
            auto_response_check: false,
        },
        // "Android Async HTTP library retries 5 times for all kinds of
        // requests by default" (§4.2 pattern 2), default timeout 10 s.
        Library::AndroidAsyncHttp => LibraryDefaults {
            timeout_ms: Some(10_000),
            retries: 5,
            retries_apply_to_post: true,
            auto_connectivity_check: false,
            auto_response_check: false,
        },
        Library::BasicHttpClient => LibraryDefaults {
            timeout_ms: Some(2000),
            retries: 1,
            retries_apply_to_post: false,
            auto_connectivity_check: false,
            auto_response_check: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_classification() {
        assert!(Library::HttpUrlConnection.is_native());
        assert!(Library::ApacheHttpClient.is_native());
        assert!(!Library::Volley.is_native());
    }

    #[test]
    fn volley_defaults_match_the_paper() {
        let d = defaults(Library::Volley);
        assert_eq!(d.timeout_ms, Some(2500));
        assert_eq!(d.retries, 1);
        assert!(d.retries_apply_to_post);
        assert!(d.auto_response_check);
    }

    #[test]
    fn async_http_retries_five_times() {
        let d = defaults(Library::AndroidAsyncHttp);
        assert_eq!(d.retries, 5);
        assert!(d.retries_apply_to_post);
    }

    #[test]
    fn okhttp_has_no_default_timeout() {
        assert_eq!(defaults(Library::OkHttp).timeout_ms, None);
    }

    #[test]
    fn retry_api_availability() {
        let with: Vec<_> = ALL_LIBRARIES.iter().filter(|l| l.has_retry_api()).collect();
        assert_eq!(with.len(), 3);
    }
}
