//! The four API misuse patterns NChecker detects — Table 5 of the paper.

/// One of the four misuse pattern families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisusePattern {
    /// Pattern 1: missing request setting APIs (connectivity check, retry,
    /// timeout).
    MissingRequestSettings,
    /// Pattern 2: improper API parameters (over-retry in services/POST).
    ImproperParameters,
    /// Pattern 3: no or implicit error messages in request callbacks.
    NoErrorMessage,
    /// Pattern 4: missing response checking APIs.
    MissingResponseCheck,
}

/// All patterns in Table 5 row order.
pub const ALL_PATTERNS: &[MisusePattern] = &[
    MisusePattern::MissingRequestSettings,
    MisusePattern::ImproperParameters,
    MisusePattern::NoErrorMessage,
    MisusePattern::MissingResponseCheck,
];

/// One row of Table 5.
#[derive(Debug, Clone, Copy)]
pub struct PatternRow {
    /// The pattern.
    pub pattern: MisusePattern,
    /// Table 5 column 1.
    pub label: &'static str,
    /// Table 5 column 2: the NPD causes this pattern maps to.
    pub causes: &'static [&'static str],
    /// Table 5 column 3: an example of identifying the misuse in code.
    pub example: &'static str,
}

/// The contents of Table 5.
pub const TABLE5: &[PatternRow] = &[
    PatternRow {
        pattern: MisusePattern::MissingRequestSettings,
        label: "Miss request setting APIs",
        causes: &[
            "No connectivity check",
            "No retry on transient error",
            "No timeout",
        ],
        example: "Do not call getNetworkInfo to check connectivity / setMaxRetries to set \
                  retry times / setReadTimeout to set timeout before sending a network request",
    },
    PatternRow {
        pattern: MisusePattern::ImproperParameters,
        label: "Improper API parameters",
        causes: &["Over retry"],
        example: "Set retries >= 0 in setMaxRetries in Android Service or POST request",
    },
    PatternRow {
        pattern: MisusePattern::NoErrorMessage,
        label: "No/implicit error message",
        causes: &["No failure notification"],
        example: "Do not call Toast.show to display a UI message in onErrorResponse() in \
                  request callbacks of a network request made by user",
    },
    PatternRow {
        pattern: MisusePattern::MissingResponseCheck,
        label: "Miss resp. checking APIs",
        causes: &["No invalid resp. check"],
        example: "Do not call isSuccessful() to check the response status before reading \
                  the response body",
    },
];

/// Renders Table 5 as text.
pub fn render_table5() -> String {
    let mut out = String::new();
    for row in TABLE5 {
        out.push_str(&format!(
            "{:28} | {:32} | {}\n",
            row.label,
            row.causes.join("; "),
            row.example
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_patterns() {
        assert_eq!(TABLE5.len(), 4);
        assert_eq!(ALL_PATTERNS.len(), 4);
    }

    #[test]
    fn pattern_one_covers_three_causes() {
        assert_eq!(TABLE5[0].causes.len(), 3);
    }

    #[test]
    fn table_renders() {
        let t = render_table5();
        assert!(t.contains("Improper API parameters"));
        assert!(t.contains("isSuccessful"));
    }
}
