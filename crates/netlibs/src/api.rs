//! The API annotation registry (§4.3): target, config, response-checking,
//! and connectivity APIs of the six libraries, plus callback interfaces.
//!
//! NChecker's analyses are entirely driven by these annotations — exactly
//! 14 target APIs, 77 config APIs, and 2 response-checking APIs, matching
//! the counts the paper reports.

use crate::library::Library;
use std::collections::HashMap;

/// A static reference to a framework/library method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApiRef {
    /// Declaring class descriptor.
    pub class: &'static str,
    /// Method name.
    pub name: &'static str,
    /// Signature descriptor.
    pub sig: &'static str,
}

/// The HTTP method of a request, where statically determinable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpMethod {
    /// Idempotent read.
    Get,
    /// Non-idempotent write: must not be auto-retried (HTTP/1.1).
    Post,
    /// PUT (idempotent write).
    Put,
    /// DELETE.
    Delete,
    /// HEAD.
    Head,
}

/// How the HTTP method of a target API call is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodDetermination {
    /// The API always issues this method (e.g. `AsyncHttpClient.post`).
    Always(HttpMethod),
    /// An integer argument selects the method, using Volley's
    /// `Request.Method` constants (`0`=GET, `1`=POST, `2`=PUT, `3`=DELETE).
    ByIntArg {
        /// Zero-based argument index (receiver excluded).
        arg: usize,
    },
    /// The runtime type of an argument selects it (Apache: `HttpPost`
    /// vs. `HttpGet` request objects).
    ByArgType {
        /// Zero-based argument index (receiver excluded).
        arg: usize,
    },
    /// A config API on the client selects it (`setRequestMethod("POST")`).
    ByConfigApi,
    /// Not statically determinable.
    Unknown,
}

/// Decodes Volley's `Request.Method` integer constants.
pub fn volley_method_constant(v: i64) -> Option<HttpMethod> {
    match v {
        -1 | 0 => Some(HttpMethod::Get), // DEPRECATED_GET_OR_POST treated as GET.
        1 => Some(HttpMethod::Post),
        2 => Some(HttpMethod::Put),
        3 => Some(HttpMethod::Delete),
        4 => Some(HttpMethod::Head),
        _ => None,
    }
}

/// A request-sending (target) API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetApi {
    /// The method itself.
    pub api: ApiRef,
    /// Which library it belongs to.
    pub library: Library,
    /// How the HTTP method is determined.
    pub method: MethodDetermination,
    /// `true` when the call is asynchronous and completion is delivered
    /// through callbacks.
    pub is_async: bool,
}

/// What a config API configures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// Connect-phase timeout.
    ConnectTimeout,
    /// Read/socket timeout.
    ReadTimeout,
    /// A single API covering both phases.
    CombinedTimeout,
    /// Retry count / policy; `count_arg` is the argument carrying the
    /// retry count when there is one.
    Retry {
        /// Zero-based argument index (receiver excluded) of the count.
        count_arg: Option<usize>,
    },
    /// Selects which exception classes are retried.
    RetryException,
    /// A single API carrying both a timeout and a retry count, like
    /// Volley's `DefaultRetryPolicy(timeoutMs, maxRetries, backoff)`.
    TimeoutAndRetry {
        /// Zero-based argument index of the timeout in milliseconds.
        timeout_arg: usize,
        /// Zero-based argument index of the retry count.
        count_arg: usize,
    },
    /// Any other reliability-relevant knob.
    Other,
}

impl ConfigKind {
    /// Returns `true` for any timeout-setting flavour.
    pub fn is_timeout(self) -> bool {
        matches!(
            self,
            ConfigKind::ConnectTimeout
                | ConfigKind::ReadTimeout
                | ConfigKind::CombinedTimeout
                | ConfigKind::TimeoutAndRetry { .. }
        )
    }

    /// Returns `true` for retry configuration.
    pub fn is_retry(self) -> bool {
        matches!(
            self,
            ConfigKind::Retry { .. }
                | ConfigKind::RetryException
                | ConfigKind::TimeoutAndRetry { .. }
        )
    }

    /// Returns the argument index carrying a retry count, if any.
    pub fn retry_count_arg(self) -> Option<usize> {
        match self {
            ConfigKind::Retry { count_arg } => count_arg,
            ConfigKind::TimeoutAndRetry { count_arg, .. } => Some(count_arg),
            _ => None,
        }
    }
}

/// A request-configuration API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigApi {
    /// The method itself.
    pub api: ApiRef,
    /// Which library it belongs to.
    pub library: Library,
    /// What it configures.
    pub kind: ConfigKind,
}

/// A response-validity-checking API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCheckApi {
    /// The method itself.
    pub api: ApiRef,
    /// Which library it belongs to.
    pub library: Library,
}

/// An error/success callback interface associated with a library's async
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallbackApi {
    /// Interface descriptor.
    pub interface: &'static str,
    /// Callback method name.
    pub method: &'static str,
    /// Callback method signature.
    pub sig: &'static str,
    /// Which library it belongs to.
    pub library: Library,
    /// `true` for the error (vs. success) callback.
    pub is_error: bool,
    /// `true` when the callback's argument exposes typed error causes the
    /// developer can branch on (only Volley's `VolleyError`, §4.4.3).
    pub exposes_error_types: bool,
}

/// Connectivity-state APIs (Android framework, not library-specific).
pub const CONNECTIVITY_APIS: &[ApiRef] = &[
    ApiRef {
        class: "Landroid/net/ConnectivityManager;",
        name: "getActiveNetworkInfo",
        sig: "()Landroid/net/NetworkInfo;",
    },
    ApiRef {
        class: "Landroid/net/ConnectivityManager;",
        name: "getNetworkInfo",
        sig: "(I)Landroid/net/NetworkInfo;",
    },
    ApiRef {
        class: "Landroid/net/NetworkInfo;",
        name: "isConnected",
        sig: "()Z",
    },
    ApiRef {
        class: "Landroid/net/NetworkInfo;",
        name: "isConnectedOrConnecting",
        sig: "()Z",
    },
    ApiRef {
        class: "Landroid/net/NetworkInfo;",
        name: "isAvailable",
        sig: "()Z",
    },
];

fn target_apis() -> Vec<TargetApi> {
    use Library::*;
    use MethodDetermination::*;
    let t = |class, name, sig, library, method, is_async| TargetApi {
        api: ApiRef { class, name, sig },
        library,
        method,
        is_async,
    };
    vec![
        // HttpURLConnection: the request is sent when the response is
        // first demanded.
        t(
            "Ljava/net/HttpURLConnection;",
            "getInputStream",
            "()Ljava/io/InputStream;",
            HttpUrlConnection,
            ByConfigApi,
            false,
        ),
        t(
            "Ljava/net/HttpURLConnection;",
            "getResponseCode",
            "()I",
            HttpUrlConnection,
            ByConfigApi,
            false,
        ),
        t(
            "Ljava/net/HttpURLConnection;",
            "connect",
            "()V",
            HttpUrlConnection,
            ByConfigApi,
            false,
        ),
        // Apache HttpClient.
        t(
            "Lorg/apache/http/client/HttpClient;",
            "execute",
            "(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;",
            ApacheHttpClient,
            ByArgType { arg: 0 },
            false,
        ),
        t(
            "Lorg/apache/http/impl/client/DefaultHttpClient;",
            "execute",
            "(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;",
            ApacheHttpClient,
            ByArgType { arg: 0 },
            false,
        ),
        // Volley: requests are dispatched by adding them to the queue; the
        // request constructor's first int argument is the HTTP method.
        t(
            "Lcom/android/volley/RequestQueue;",
            "add",
            "(Lcom/android/volley/Request;)Lcom/android/volley/Request;",
            Volley,
            ByIntArg { arg: 0 },
            true,
        ),
        // OkHttp.
        t(
            "Lcom/squareup/okhttp/Call;",
            "execute",
            "()Lcom/squareup/okhttp/Response;",
            OkHttp,
            ByConfigApi,
            false,
        ),
        t(
            "Lcom/squareup/okhttp/Call;",
            "enqueue",
            "(Lcom/squareup/okhttp/Callback;)V",
            OkHttp,
            ByConfigApi,
            true,
        ),
        // Android Async HTTP.
        t(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "get",
            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
            AndroidAsyncHttp,
            Always(HttpMethod::Get),
            true,
        ),
        t(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "post",
            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
            AndroidAsyncHttp,
            Always(HttpMethod::Post),
            true,
        ),
        t(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "put",
            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
            AndroidAsyncHttp,
            Always(HttpMethod::Put),
            true,
        ),
        t(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "delete",
            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
            AndroidAsyncHttp,
            Always(HttpMethod::Delete),
            true,
        ),
        // Basic HTTP client.
        t(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "get",
            "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
            BasicHttpClient,
            Always(HttpMethod::Get),
            false,
        ),
        t(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "post",
            "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
            BasicHttpClient,
            Always(HttpMethod::Post),
            false,
        ),
    ]
}

fn config_apis() -> Vec<ConfigApi> {
    use ConfigKind::*;
    use Library::*;
    let c = |class, name, sig, library, kind| ConfigApi {
        api: ApiRef { class, name, sig },
        library,
        kind,
    };
    vec![
        // --- HttpURLConnection (10) ---
        c(
            "Ljava/net/HttpURLConnection;",
            "setConnectTimeout",
            "(I)V",
            HttpUrlConnection,
            ConnectTimeout,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setReadTimeout",
            "(I)V",
            HttpUrlConnection,
            ReadTimeout,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setRequestMethod",
            "(Ljava/lang/String;)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setDoOutput",
            "(Z)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setDoInput",
            "(Z)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setUseCaches",
            "(Z)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setRequestProperty",
            "(Ljava/lang/String;Ljava/lang/String;)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setInstanceFollowRedirects",
            "(Z)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setChunkedStreamingMode",
            "(I)V",
            HttpUrlConnection,
            Other,
        ),
        c(
            "Ljava/net/HttpURLConnection;",
            "setFixedLengthStreamingMode",
            "(I)V",
            HttpUrlConnection,
            Other,
        ),
        // --- Apache HttpClient (16) ---
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setConnectionTimeout",
            "(Lorg/apache/http/params/HttpParams;I)V",
            ApacheHttpClient,
            ConnectTimeout,
        ),
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setSoTimeout",
            "(Lorg/apache/http/params/HttpParams;I)V",
            ApacheHttpClient,
            ReadTimeout,
        ),
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setSocketBufferSize",
            "(Lorg/apache/http/params/HttpParams;I)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setLinger",
            "(Lorg/apache/http/params/HttpParams;I)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setStaleCheckingEnabled",
            "(Lorg/apache/http/params/HttpParams;Z)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpConnectionParams;",
            "setTcpNoDelay",
            "(Lorg/apache/http/params/HttpParams;Z)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpParams;",
            "setParameter",
            "(Ljava/lang/String;Ljava/lang/Object;)Lorg/apache/http/params/HttpParams;",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpParams;",
            "setIntParameter",
            "(Ljava/lang/String;I)Lorg/apache/http/params/HttpParams;",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpParams;",
            "setLongParameter",
            "(Ljava/lang/String;J)Lorg/apache/http/params/HttpParams;",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/params/HttpParams;",
            "setBooleanParameter",
            "(Ljava/lang/String;Z)Lorg/apache/http/params/HttpParams;",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/impl/client/DefaultHttpClient;",
            "setHttpRequestRetryHandler",
            "(Lorg/apache/http/client/HttpRequestRetryHandler;)V",
            ApacheHttpClient,
            Retry { count_arg: None },
        ),
        c(
            "Lorg/apache/http/impl/client/DefaultHttpClient;",
            "setRedirectHandler",
            "(Lorg/apache/http/client/RedirectHandler;)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/impl/client/DefaultHttpClient;",
            "setKeepAliveStrategy",
            "(Lorg/apache/http/conn/ConnectionKeepAliveStrategy;)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/impl/client/DefaultHttpClient;",
            "setReuseStrategy",
            "(Lorg/apache/http/ConnectionReuseStrategy;)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/client/params/HttpClientParams;",
            "setRedirecting",
            "(Lorg/apache/http/params/HttpParams;Z)V",
            ApacheHttpClient,
            Other,
        ),
        c(
            "Lorg/apache/http/client/params/HttpClientParams;",
            "setAuthenticating",
            "(Lorg/apache/http/params/HttpParams;Z)V",
            ApacheHttpClient,
            Other,
        ),
        // --- Volley (9) ---
        c(
            "Lcom/android/volley/Request;",
            "setRetryPolicy",
            "(Lcom/android/volley/RetryPolicy;)Lcom/android/volley/Request;",
            Volley,
            Retry { count_arg: None },
        ),
        c(
            "Lcom/android/volley/DefaultRetryPolicy;",
            "<init>",
            "(IIF)V",
            Volley,
            TimeoutAndRetry {
                timeout_arg: 0,
                count_arg: 1,
            },
        ),
        c(
            "Lcom/android/volley/Request;",
            "setShouldCache",
            "(Z)Lcom/android/volley/Request;",
            Volley,
            Other,
        ),
        c(
            "Lcom/android/volley/Request;",
            "setTag",
            "(Ljava/lang/Object;)Lcom/android/volley/Request;",
            Volley,
            Other,
        ),
        c(
            "Lcom/android/volley/Request;",
            "setPriority",
            "(Lcom/android/volley/Request$Priority;)Lcom/android/volley/Request;",
            Volley,
            Other,
        ),
        c(
            "Lcom/android/volley/Request;",
            "setSequence",
            "(I)Lcom/android/volley/Request;",
            Volley,
            Other,
        ),
        c(
            "Lcom/android/volley/Request;",
            "setShouldRetryServerErrors",
            "(Z)Lcom/android/volley/Request;",
            Volley,
            Retry { count_arg: None },
        ),
        c(
            "Lcom/android/volley/Request;",
            "setRequestQueue",
            "(Lcom/android/volley/RequestQueue;)Lcom/android/volley/Request;",
            Volley,
            Other,
        ),
        c(
            "Lcom/android/volley/RequestQueue;",
            "start",
            "()V",
            Volley,
            Other,
        ),
        // --- OkHttp (20) ---
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setConnectTimeout",
            "(JLjava/util/concurrent/TimeUnit;)V",
            OkHttp,
            ConnectTimeout,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setReadTimeout",
            "(JLjava/util/concurrent/TimeUnit;)V",
            OkHttp,
            ReadTimeout,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setWriteTimeout",
            "(JLjava/util/concurrent/TimeUnit;)V",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setRetryOnConnectionFailure",
            "(Z)V",
            OkHttp,
            Retry { count_arg: None },
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setFollowRedirects",
            "(Z)V",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setFollowSslRedirects",
            "(Z)V",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setCache",
            "(Lcom/squareup/okhttp/Cache;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setConnectionPool",
            "(Lcom/squareup/okhttp/ConnectionPool;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setProtocols",
            "(Ljava/util/List;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setProxy",
            "(Ljava/net/Proxy;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setAuthenticator",
            "(Lcom/squareup/okhttp/Authenticator;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setConnectionSpecs",
            "(Ljava/util/List;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setDns",
            "(Lcom/squareup/okhttp/Dns;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setSocketFactory",
            "(Ljavax/net/SocketFactory;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setSslSocketFactory",
            "(Ljavax/net/ssl/SSLSocketFactory;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setHostnameVerifier",
            "(Ljavax/net/ssl/HostnameVerifier;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setCertificatePinner",
            "(Lcom/squareup/okhttp/CertificatePinner;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setCookieHandler",
            "(Ljava/net/CookieHandler;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "setDispatcher",
            "(Lcom/squareup/okhttp/Dispatcher;)Lcom/squareup/okhttp/OkHttpClient;",
            OkHttp,
            Other,
        ),
        c(
            "Lcom/squareup/okhttp/OkHttpClient;",
            "interceptors",
            "()Ljava/util/List;",
            OkHttp,
            Other,
        ),
        // --- Android Async HTTP (14) ---
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setTimeout",
            "(I)V",
            AndroidAsyncHttp,
            CombinedTimeout,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setConnectTimeout",
            "(I)V",
            AndroidAsyncHttp,
            ConnectTimeout,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setResponseTimeout",
            "(I)V",
            AndroidAsyncHttp,
            ReadTimeout,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setMaxRetriesAndTimeout",
            "(II)V",
            AndroidAsyncHttp,
            Retry { count_arg: Some(0) },
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "allowRetryExceptionClass",
            "(Ljava/lang/Class;)V",
            AndroidAsyncHttp,
            RetryException,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "blockRetryExceptionClass",
            "(Ljava/lang/Class;)V",
            AndroidAsyncHttp,
            RetryException,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setMaxConnections",
            "(I)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setUserAgent",
            "(Ljava/lang/String;)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setEnableRedirects",
            "(Z)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setProxy",
            "(Ljava/lang/String;I)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setSSLSocketFactory",
            "(Lcom/loopj/android/http/MySSLSocketFactory;)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setThreadPool",
            "(Ljava/util/concurrent/ExecutorService;)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setURLEncodingEnabled",
            "(Z)V",
            AndroidAsyncHttp,
            Other,
        ),
        c(
            "Lcom/loopj/android/http/AsyncHttpClient;",
            "setAuthenticationPreemptive",
            "(Z)V",
            AndroidAsyncHttp,
            Other,
        ),
        // --- Basic HTTP client (8) ---
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setConnectionTimeout",
            "(I)V",
            BasicHttpClient,
            ConnectTimeout,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setReadTimeout",
            "(I)V",
            BasicHttpClient,
            ReadTimeout,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setMaxRetries",
            "(I)V",
            BasicHttpClient,
            Retry { count_arg: Some(0) },
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "addHeader",
            "(Ljava/lang/String;Ljava/lang/String;)V",
            BasicHttpClient,
            Other,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setLogger",
            "(Lcom/turbomanage/httpclient/RequestLogger;)V",
            BasicHttpClient,
            Other,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setRequestHandler",
            "(Lcom/turbomanage/httpclient/RequestHandler;)V",
            BasicHttpClient,
            Other,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "setAsync",
            "(Z)V",
            BasicHttpClient,
            Other,
        ),
        c(
            "Lcom/turbomanage/httpclient/BasicHttpClient;",
            "addQueryParameter",
            "(Ljava/lang/String;Ljava/lang/String;)V",
            BasicHttpClient,
            Other,
        ),
    ]
}

fn response_check_apis() -> Vec<ResponseCheckApi> {
    vec![
        ResponseCheckApi {
            api: ApiRef {
                class: "Lcom/squareup/okhttp/Response;",
                name: "isSuccessful",
                sig: "()Z",
            },
            library: Library::OkHttp,
        },
        ResponseCheckApi {
            api: ApiRef {
                class: "Lorg/apache/http/HttpResponse;",
                name: "getStatusLine",
                sig: "()Lorg/apache/http/StatusLine;",
            },
            library: Library::ApacheHttpClient,
        },
    ]
}

fn callback_apis() -> Vec<CallbackApi> {
    use Library::*;
    vec![
        CallbackApi {
            interface: "Lcom/android/volley/Response$ErrorListener;",
            method: "onErrorResponse",
            sig: "(Lcom/android/volley/VolleyError;)V",
            library: Volley,
            is_error: true,
            exposes_error_types: true,
        },
        CallbackApi {
            interface: "Lcom/android/volley/Response$Listener;",
            method: "onResponse",
            sig: "(Ljava/lang/Object;)V",
            library: Volley,
            is_error: false,
            exposes_error_types: false,
        },
        CallbackApi {
            interface: "Lcom/squareup/okhttp/Callback;",
            method: "onFailure",
            sig: "(Lcom/squareup/okhttp/Request;Ljava/io/IOException;)V",
            library: OkHttp,
            is_error: true,
            exposes_error_types: false,
        },
        CallbackApi {
            interface: "Lcom/squareup/okhttp/Callback;",
            method: "onResponse",
            sig: "(Lcom/squareup/okhttp/Response;)V",
            library: OkHttp,
            is_error: false,
            exposes_error_types: false,
        },
        CallbackApi {
            interface: "Lcom/loopj/android/http/AsyncHttpResponseHandler;",
            method: "onFailure",
            sig: "(I[Lorg/apache/http/Header;[BLjava/lang/Throwable;)V",
            library: AndroidAsyncHttp,
            is_error: true,
            exposes_error_types: false,
        },
        CallbackApi {
            interface: "Lcom/loopj/android/http/AsyncHttpResponseHandler;",
            method: "onSuccess",
            sig: "(I[Lorg/apache/http/Header;[B)V",
            library: AndroidAsyncHttp,
            is_error: false,
            exposes_error_types: false,
        },
        // AsyncTask-based native requests deliver completion through
        // onPostExecute — an *implicit* callback with no error/success
        // separation (Table 11 ties this to the guideline on explicit
        // callbacks).
        CallbackApi {
            interface: "Landroid/os/AsyncTask;",
            method: "onPostExecute",
            sig: "(Ljava/lang/Object;)V",
            library: HttpUrlConnection,
            is_error: true,
            exposes_error_types: false,
        },
    ]
}

/// The complete annotation registry with indexed lookups.
#[derive(Debug)]
pub struct Registry {
    targets: Vec<TargetApi>,
    configs: Vec<ConfigApi>,
    response_checks: Vec<ResponseCheckApi>,
    callbacks: Vec<CallbackApi>,
    target_index: HashMap<(&'static str, &'static str), usize>,
    config_index: HashMap<(&'static str, &'static str), usize>,
    response_index: HashMap<(&'static str, &'static str), usize>,
    connectivity: HashMap<(&'static str, &'static str), ()>,
}

impl Registry {
    /// Builds the standard registry of the six libraries.
    pub fn standard() -> Registry {
        let targets = target_apis();
        let configs = config_apis();
        let response_checks = response_check_apis();
        let callbacks = callback_apis();
        let target_index = targets
            .iter()
            .enumerate()
            .map(|(i, t)| ((t.api.class, t.api.name), i))
            .collect();
        let config_index = configs
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.api.class, c.api.name), i))
            .collect();
        let response_index = response_checks
            .iter()
            .enumerate()
            .map(|(i, r)| ((r.api.class, r.api.name), i))
            .collect();
        let connectivity = CONNECTIVITY_APIS
            .iter()
            .map(|a| ((a.class, a.name), ()))
            .collect();
        Registry {
            targets,
            configs,
            response_checks,
            callbacks,
            target_index,
            config_index,
            response_index,
            connectivity,
        }
    }

    /// All target APIs.
    pub fn targets(&self) -> &[TargetApi] {
        &self.targets
    }

    /// All config APIs.
    pub fn configs(&self) -> &[ConfigApi] {
        &self.configs
    }

    /// All response-checking APIs.
    pub fn response_checks(&self) -> &[ResponseCheckApi] {
        &self.response_checks
    }

    /// All library callback interfaces.
    pub fn callbacks(&self) -> &[CallbackApi] {
        &self.callbacks
    }

    /// Looks up a target API by the call's class and method name.
    pub fn target(&self, class: &str, name: &str) -> Option<&TargetApi> {
        // `&str` lookups against `&'static str` keys need owned pairs; use
        // a linear probe through the index map keys instead.
        self.target_index
            .iter()
            .find(|((c, n), _)| *c == class && *n == name)
            .map(|(_, &i)| &self.targets[i])
    }

    /// Looks up a config API by class and method name.
    pub fn config(&self, class: &str, name: &str) -> Option<&ConfigApi> {
        self.config_index
            .iter()
            .find(|((c, n), _)| *c == class && *n == name)
            .map(|(_, &i)| &self.configs[i])
    }

    /// Looks up a response-checking API by class and method name.
    pub fn response_check(&self, class: &str, name: &str) -> Option<&ResponseCheckApi> {
        self.response_index
            .iter()
            .find(|((c, n), _)| *c == class && *n == name)
            .map(|(_, &i)| &self.response_checks[i])
    }

    /// Returns `true` when `class.name` is a connectivity-state API.
    pub fn is_connectivity_check(&self, class: &str, name: &str) -> bool {
        self.connectivity
            .keys()
            .any(|(c, n)| *c == class && *n == name)
    }

    /// Returns the error callback of `library`, if it has an explicit one.
    pub fn error_callback(&self, library: Library) -> Option<&CallbackApi> {
        self.callbacks
            .iter()
            .find(|c| c.library == library && c.is_error)
    }

    /// Looks up a library callback spec by interface and method name.
    pub fn callback(&self, interface: &str, method: &str) -> Option<&CallbackApi> {
        self.callbacks
            .iter()
            .find(|c| c.interface == interface && c.method == method)
    }

    /// Whether `(class, name)` is a request-creating target API.
    pub fn is_target_api(&self, class: &str, name: &str) -> bool {
        self.target(class, name).is_some()
    }

    /// Whether `(class, name)` names *any* API the checkers care about:
    /// a request target, a config setter, a response check, or a
    /// connectivity check. This is the prescan predicate — an app whose
    /// constant pool references none of these can be skipped outright.
    pub fn is_relevant_api(&self, class: &str, name: &str) -> bool {
        self.is_target_api(class, name)
            || self.config(class, name).is_some()
            || self.response_check(class, name).is_some()
            || self.is_connectivity_check(class, name)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        let r = Registry::standard();
        assert_eq!(r.targets().len(), 14, "paper annotates 14 target APIs");
        assert_eq!(r.configs().len(), 77, "paper annotates 77 config APIs");
        assert_eq!(
            r.response_checks().len(),
            2,
            "paper annotates 2 response checking APIs"
        );
    }

    #[test]
    fn target_lookup() {
        let r = Registry::standard();
        let t = r
            .target("Lcom/android/volley/RequestQueue;", "add")
            .unwrap();
        assert_eq!(t.library, Library::Volley);
        assert!(t.is_async);
        assert!(r
            .target("Lcom/android/volley/RequestQueue;", "remove")
            .is_none());
    }

    #[test]
    fn config_lookup_and_kinds() {
        let r = Registry::standard();
        let c = r
            .config(
                "Lcom/turbomanage/httpclient/BasicHttpClient;",
                "setMaxRetries",
            )
            .unwrap();
        assert_eq!(c.kind, ConfigKind::Retry { count_arg: Some(0) });
        assert!(c.kind.is_retry());
        let t = r
            .config("Ljava/net/HttpURLConnection;", "setReadTimeout")
            .unwrap();
        assert!(t.kind.is_timeout());
    }

    #[test]
    fn connectivity_apis_recognized() {
        let r = Registry::standard();
        assert!(
            r.is_connectivity_check("Landroid/net/ConnectivityManager;", "getActiveNetworkInfo")
        );
        assert!(r.is_connectivity_check("Landroid/net/NetworkInfo;", "isConnected"));
        assert!(!r.is_connectivity_check("Lcom/app/Net;", "isConnected"));
    }

    #[test]
    fn volley_error_callback_exposes_types() {
        let r = Registry::standard();
        let cb = r.error_callback(Library::Volley).unwrap();
        assert!(cb.exposes_error_types);
        let ok = r.error_callback(Library::OkHttp).unwrap();
        assert!(!ok.exposes_error_types);
    }

    #[test]
    fn volley_method_constants() {
        assert_eq!(volley_method_constant(1), Some(HttpMethod::Post));
        assert_eq!(volley_method_constant(0), Some(HttpMethod::Get));
        assert_eq!(volley_method_constant(99), None);
    }

    #[test]
    fn every_library_has_a_timeout_config() {
        let r = Registry::standard();
        for &lib in crate::library::ALL_LIBRARIES {
            assert!(
                r.configs()
                    .iter()
                    .any(|c| c.library == lib && c.kind.is_timeout()),
                "{lib} lacks a timeout config API"
            );
        }
    }

    #[test]
    fn retry_capable_libraries_have_retry_configs() {
        let r = Registry::standard();
        for &lib in crate::library::ALL_LIBRARIES {
            if lib.has_retry_api() {
                assert!(
                    r.configs()
                        .iter()
                        .any(|c| c.library == lib && c.kind.is_retry()),
                    "{lib} claims retry APIs but has none annotated"
                );
            }
        }
    }
}
