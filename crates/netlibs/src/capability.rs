//! The library capability matrix — Table 4 of the paper.

use crate::library::{Library, ALL_LIBRARIES};

/// The eight NPD causes of Table 4's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpdCause {
    /// No connectivity check before the request.
    NoConnectivityCheck,
    /// No retry on transient errors.
    NoRetryOnTransient,
    /// Over-retry (background services, POST requests).
    OverRetry,
    /// No timeout configured.
    NoTimeout,
    /// No or misleading failure notification.
    NoFailureNotification,
    /// No validity check on the response.
    NoInvalidResponseCheck,
    /// No reconnection on network switch.
    NoReconnectOnNetSwitch,
    /// No automatic failure recovery.
    NoAutoFailureRecovery,
}

/// All causes in Table 4 row order.
pub const ALL_CAUSES: &[NpdCause] = &[
    NpdCause::NoConnectivityCheck,
    NpdCause::NoRetryOnTransient,
    NpdCause::OverRetry,
    NpdCause::NoTimeout,
    NpdCause::NoFailureNotification,
    NpdCause::NoInvalidResponseCheck,
    NpdCause::NoReconnectOnNetSwitch,
    NpdCause::NoAutoFailureRecovery,
];

impl NpdCause {
    /// The row label used in Table 4.
    pub fn label(self) -> &'static str {
        match self {
            NpdCause::NoConnectivityCheck => "No connectivity check",
            NpdCause::NoRetryOnTransient => "No retry on transient error",
            NpdCause::OverRetry => "Over retry",
            NpdCause::NoTimeout => "No timeout",
            NpdCause::NoFailureNotification => "No/Misleading Failure notification",
            NpdCause::NoInvalidResponseCheck => "No invalid response check",
            NpdCause::NoReconnectOnNetSwitch => "No reconnetion on net switch",
            NpdCause::NoAutoFailureRecovery => "No auto failure recovery",
        }
    }
}

/// How a library relates to an NPD cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// ⋆ — the library tolerates this NPD automatically.
    Auto,
    /// © — the library offers APIs but the developer must set them.
    Manual,
}

impl Support {
    /// The glyph used in Table 4.
    pub fn glyph(self) -> char {
        match self {
            Support::Auto => '*',
            Support::Manual => 'o',
        }
    }
}

/// Returns Table 4's cell for `(lib, cause)`.
pub fn capability(lib: Library, cause: NpdCause) -> Support {
    use Library::*;
    use NpdCause::*;
    use Support::*;
    match cause {
        // Row: "No retry on transient error" — ⋆ © ⋆ ⋆ © ⋆.
        NoRetryOnTransient => match lib {
            HttpUrlConnection | Volley | OkHttp | BasicHttpClient => Auto,
            ApacheHttpClient | AndroidAsyncHttp => Manual,
        },
        // Row: "No timeout" — © © ⋆ © ⋆ ⋆.
        NoTimeout => match lib {
            Volley | AndroidAsyncHttp | BasicHttpClient => Auto,
            HttpUrlConnection | ApacheHttpClient | OkHttp => Manual,
        },
        // Row: "No invalid response check" — © © ⋆ © © ©.
        NoInvalidResponseCheck => match lib {
            Volley => Auto,
            _ => Manual,
        },
        // Every other row is all ©.
        _ => Manual,
    }
}

/// Renders the full Table 4 matrix as aligned text.
pub fn render_table4() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:38}", "NPD Causes"));
    for lib in ALL_LIBRARIES {
        out.push_str(&format!("{:>20}", lib.name()));
    }
    out.push('\n');
    for &cause in ALL_CAUSES {
        out.push_str(&format!("{:38}", cause.label()));
        for &lib in ALL_LIBRARIES {
            out.push_str(&format!("{:>20}", capability(lib, cause).glyph()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volley_auto_checks_responses() {
        assert_eq!(
            capability(Library::Volley, NpdCause::NoInvalidResponseCheck),
            Support::Auto
        );
        assert_eq!(
            capability(Library::OkHttp, NpdCause::NoInvalidResponseCheck),
            Support::Manual
        );
    }

    #[test]
    fn timeout_row_matches_paper() {
        use Library::*;
        let expected = [
            (HttpUrlConnection, Support::Manual),
            (ApacheHttpClient, Support::Manual),
            (Volley, Support::Auto),
            (OkHttp, Support::Manual),
            (AndroidAsyncHttp, Support::Auto),
            (BasicHttpClient, Support::Auto),
        ];
        for (lib, support) in expected {
            assert_eq!(capability(lib, NpdCause::NoTimeout), support, "{lib}");
        }
    }

    #[test]
    fn connectivity_row_is_all_manual() {
        for &lib in ALL_LIBRARIES {
            assert_eq!(
                capability(lib, NpdCause::NoConnectivityCheck),
                Support::Manual
            );
        }
    }

    #[test]
    fn network_switch_rows_are_all_manual() {
        for &lib in ALL_LIBRARIES {
            assert_eq!(
                capability(lib, NpdCause::NoReconnectOnNetSwitch),
                Support::Manual
            );
            assert_eq!(
                capability(lib, NpdCause::NoAutoFailureRecovery),
                Support::Manual
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table4();
        assert_eq!(t.lines().count(), 1 + ALL_CAUSES.len());
        assert!(t.contains("Volley"));
        assert!(t.contains("No timeout"));
    }
}
