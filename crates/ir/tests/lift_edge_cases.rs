//! Lifting edge cases: switches, super calls, nested traps, static
//! methods, and whole-file roundtrips through binary and IR.

use nck_dex::builder::AdxBuilder;
use nck_dex::{read_adx, write_adx, AccessFlags, BinOp, CondOp};
use nck_ir::{lift_file, Stmt, StmtId};

#[test]
fn switch_arms_remap_to_statements() {
    let mut b = AdxBuilder::new();
    b.class("Le/S;", |c| {
        c.method(
            "f",
            "(I)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            4,
            |m| {
                let x = m.param(0).unwrap();
                let one = m.new_label();
                let two = m.new_label();
                let out = m.new_label();
                m.switch(x, &[(1, one), (2, two)]);
                m.const_int(m.reg(0), 0);
                m.goto(out);
                m.bind(one);
                m.const_int(m.reg(0), 10);
                m.goto(out);
                m.bind(two);
                m.const_int(m.reg(0), 20);
                m.bind(out);
                m.ret(Some(m.reg(0)));
            },
        );
    });
    let p = lift_file(&b.finish().unwrap()).unwrap();
    let body = p.methods[0].body.as_ref().unwrap();
    let switch = body
        .iter()
        .find_map(|(_, s)| match s {
            Stmt::Switch { arms, .. } => Some(arms.clone()),
            _ => None,
        })
        .expect("switch lifted");
    assert_eq!(switch.len(), 2);
    // Each arm must land on a constant assignment.
    for (_, target) in switch {
        assert!(
            matches!(body.stmt(target), Stmt::Assign { .. }),
            "{target:?}"
        );
    }
}

#[test]
fn super_calls_resolve_in_the_call_graph_sense() {
    let mut b = AdxBuilder::new();
    b.class("Le/Base;", |c| {
        c.method("g", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
    });
    b.class("Le/Derived;", |c| {
        c.super_class("Le/Base;");
        c.method("g", "()V", AccessFlags::PUBLIC, 2, |m| {
            m.invoke_super("Le/Base;", "g", "()V", &[m.param(0).unwrap()]);
            m.ret(None);
        });
    });
    let p = lift_file(&b.finish().unwrap()).unwrap();
    // The derived override's body calls the base implementation.
    let derived_g = p
        .iter_methods()
        .find(|(_, m)| {
            p.symbols.resolve(m.key.class) == "Le/Derived;" && p.symbols.resolve(m.key.name) == "g"
        })
        .map(|(id, _)| id)
        .unwrap();
    let body = p.method(derived_g).body.as_ref().unwrap();
    let call = body
        .iter()
        .find_map(|(_, s)| s.invoke_expr())
        .expect("super call lifted");
    assert_eq!(call.kind, nck_dex::InvokeKind::Super);
    assert_eq!(p.symbols.resolve(call.callee.class), "Le/Base;");
}

#[test]
fn nested_traps_preserve_order_and_coverage() {
    let mut b = AdxBuilder::new();
    b.class("Le/T;", |c| {
        c.method("f", "()V", AccessFlags::PUBLIC, 6, |m| {
            let h_inner = m.new_label();
            let h_outer = m.new_label();
            let done = m.new_label();
            let outer = m.begin_try();
            let inner = m.begin_try();
            m.invoke_virtual("Le/T;", "g", "()V", &[m.param(0).unwrap()]);
            m.end_try(inner, &[(Some("Ljava/io/IOException;"), h_inner)]);
            m.invoke_virtual("Le/T;", "h", "()V", &[m.param(0).unwrap()]);
            m.end_try(outer, &[(None, h_outer)]);
            m.goto(done);
            m.bind(h_inner);
            m.move_exception(m.reg(0));
            m.goto(done);
            m.bind(h_outer);
            m.move_exception(m.reg(1));
            m.bind(done);
            m.ret(None);
        });
        c.method("g", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        c.method("h", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
    });
    let file = b.finish().unwrap();
    assert!(nck_dex::verify::verify(&file).is_empty());
    let p = lift_file(&file).unwrap();
    let body = p.methods[0].body.as_ref().unwrap();
    assert_eq!(body.traps.len(), 2);
    // The first call is covered by both traps, innermost first.
    let call_site = body
        .iter()
        .find(|(_, s)| s.invoke_expr().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let traps: Vec<_> = body.traps_at(call_site).collect();
    assert_eq!(traps.len(), 2);
    assert!(traps[0].exception.is_some(), "inner (typed) trap first");
    assert!(traps[1].exception.is_none());
}

#[test]
fn binary_ir_binary_is_stable() {
    // write → read → lift → (no mutation) → write must be byte-identical.
    let mut b = AdxBuilder::new();
    b.class("Le/R;", |c| {
        c.method(
            "f",
            "(II)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            6,
            |m| {
                let a = m.param(0).unwrap();
                let bb = m.param(1).unwrap();
                let out = m.new_label();
                m.if_(CondOp::Le, a, bb, out);
                m.binop(BinOp::Sub, a, a, bb);
                m.bind(out);
                m.ret(Some(a));
            },
        );
    });
    let file = b.finish().unwrap();
    let bytes1 = write_adx(&file);
    let parsed = read_adx(&bytes1).unwrap();
    let bytes2 = write_adx(&parsed);
    assert_eq!(bytes1, bytes2);
    // And the lift is identical from both.
    let p1 = lift_file(&file).unwrap();
    let p2 = lift_file(&parsed).unwrap();
    assert_eq!(
        p1.methods[0].body.as_ref().unwrap().stmts,
        p2.methods[0].body.as_ref().unwrap().stmts
    );
}

#[test]
fn goto_only_method_lifts_with_correct_targets() {
    let mut b = AdxBuilder::new();
    b.class("Le/G;", |c| {
        c.method(
            "f",
            "()V",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            2,
            |m| {
                let a = m.new_label();
                let bb = m.new_label();
                m.goto(a);
                m.bind(bb);
                m.ret(None);
                m.bind(a);
                m.goto(bb);
            },
        );
    });
    let p = lift_file(&b.finish().unwrap()).unwrap();
    let body = p.methods[0].body.as_ref().unwrap();
    // goto(2), return, goto(1) — static method, no identity preamble.
    assert_eq!(body.stmts.len(), 3);
    assert_eq!(body.stmts[0], Stmt::Goto { target: StmtId(2) });
    assert_eq!(body.stmts[2], Stmt::Goto { target: StmtId(1) });
}
