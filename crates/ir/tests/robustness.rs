//! Robustness properties of the parse → verify → lift front half: no
//! input, however damaged, may panic it.
//!
//! Three layers of adversarial input, matching how damage can reach the
//! pipeline:
//!
//! 1. arbitrary bytes handed to the parser,
//! 2. valid serialized files with raw byte damage (the checksum must
//!    catch every flip; truncation must be a typed error), and
//! 3. well-formed containers whose *parsed content* lies (the verifier
//!    must flag them, the strict lifter must return `Err` not panic,
//!    and the lenient lifter must stay total).

use nck_dex::builder::AdxBuilder;
use nck_dex::{read_adx, write_adx, AccessFlags, AdxFile, Insn, Reg};
use proptest::prelude::*;

/// A small but non-trivial file: two classes, a call, a branch.
fn sample_file() -> AdxFile {
    let mut b = AdxBuilder::new();
    b.class("Lrob/Helper;", |c| {
        c.super_class("Ljava/lang/Object;");
        c.method(
            "answer",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            2,
            |m| {
                m.const_int(m.reg(0), 42);
                m.ret(Some(m.reg(0)));
            },
        );
    });
    b.class("Lrob/Main;", |c| {
        c.super_class("Ljava/lang/Object;");
        c.method(
            "go",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            3,
            |m| {
                m.invoke_static("Lrob/Helper;", "answer", "()I", &[]);
                m.move_result(m.reg(0));
                let done = m.new_label();
                m.ifz(nck_dex::CondOp::Eq, m.reg(0), done);
                m.const_int(m.reg(1), 1);
                m.bind(done);
                m.ret(Some(m.reg(0)));
            },
        );
    });
    b.finish().unwrap()
}

/// Runs the whole front half on a parsed file; every step must return,
/// never panic.
fn front_half_is_total(file: &AdxFile) {
    let errors = nck_dex::verify::verify(file);
    match nck_ir::lift_file(file) {
        Ok(_) | Err(_) => {}
    }
    let (program, skips) = nck_ir::lift_file_lenient(file, &|_| None);
    // Lenient lifting keeps skipped methods bodiless rather than
    // dropping them, so resolution stays intact for the others.
    assert!(program.methods.iter().filter(|m| m.body.is_none()).count() >= skips.len());
    let _ = errors;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Random bytes essentially never carry a valid checksum; any
        // result is fine, panicking is not.
        let _ = read_adx(&bytes);
    }

    #[test]
    fn truncation_of_a_valid_file_is_a_typed_error(cut in 1usize..200) {
        let bytes = write_adx(&sample_file());
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(read_adx(&bytes[..keep]).is_err());
    }

    #[test]
    fn byte_flips_in_a_valid_file_are_rejected(at in 0usize..1024, bit in 0u8..8) {
        let mut bytes = write_adx(&sample_file());
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        // The header is length- and checksum-guarded, the payload is
        // checksummed: every single-bit flip must be detected.
        prop_assert!(read_adx(&bytes).is_err(), "flip at {at} bit {bit} accepted");
    }

    #[test]
    fn damaged_parsed_files_never_panic_verify_or_lift(
        reg in 0u16..64,
        target in 0u32..64,
        ins_lie in 0u16..64,
        which in 0usize..3,
    ) {
        let mut file = sample_file();
        // Damage the parsed model directly, bypassing the parser's own
        // range checks — the strongest adversary verify/lift can face.
        let code = file.classes[1].methods[0].code.as_mut().unwrap();
        match which {
            0 => code.insns[0] = Insn::Move { dst: Reg(reg), src: Reg(reg) },
            1 => code.insns[0] = Insn::Goto { target },
            _ => code.ins = ins_lie,
        }
        front_half_is_total(&file);
    }

    #[test]
    fn lenient_lift_honours_arbitrary_skip_policies(skip_mask in 0u32..8) {
        let file = sample_file();
        let (program, skips) = nck_ir::lift_file_lenient(&file, &|name| {
            let h = name.len() as u32 % 8;
            (h & skip_mask != 0).then(|| "policy".to_owned())
        });
        // Skipped methods stay resolvable (declared, bodiless).
        for skip in &skips {
            assert!(
                program.iter_methods().any(|(_, m)| {
                    program.symbols.resolve(m.key.name) == skip.method
                        || skip.method.contains(program.symbols.resolve(m.key.name))
                }),
                "skipped {} vanished from the program",
                skip.method
            );
        }
    }
}
