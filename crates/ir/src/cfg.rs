//! Statement-level control-flow graphs with explicit exceptional edges.
//!
//! CFG nodes are statement ids; an extra *virtual exit* node (index
//! `body.len()`) is the target of every return and uncaught throw so that
//! post-dominance is well defined.

use crate::body::{Body, Stmt, StmtId};

/// The kind of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary fallthrough or branch.
    Normal,
    /// Exceptional transfer to a trap handler (or the exit for uncaught).
    Exceptional,
}

/// A statement-level CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Normal successors per statement.
    pub normal_succs: Vec<Vec<StmtId>>,
    /// Exceptional successors (handler entries) per statement.
    pub exc_succs: Vec<Vec<StmtId>>,
    /// Predecessors per node (statements plus the virtual exit), combined
    /// over both edge kinds.
    pub preds: Vec<Vec<StmtId>>,
    /// Number of real statements (the virtual exit is node `len`).
    pub len: usize,
}

impl Cfg {
    /// The virtual exit node id.
    pub fn exit(&self) -> StmtId {
        StmtId(self.len as u32)
    }

    /// Builds the CFG of `body`.
    pub fn build(body: &Body) -> Cfg {
        let n = body.len();
        let mut normal_succs: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut exc_succs: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<StmtId>> = vec![Vec::new(); n + 1];

        for (id, stmt) in body.iter() {
            let i = id.index();
            match stmt {
                Stmt::Goto { target } => normal_succs[i].push(*target),
                Stmt::If { target, .. } => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                    normal_succs[i].push(*target);
                }
                Stmt::Switch { arms, .. } => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                    for &(_, t) in arms {
                        normal_succs[i].push(t);
                    }
                }
                Stmt::Return { .. } => normal_succs[i].push(StmtId(n as u32)),
                Stmt::Throw { .. } => {
                    // Handled below via the exceptional machinery; a throw
                    // with no covering trap goes straight to the exit.
                }
                _ => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                }
            }

            if stmt.can_throw() {
                let traps = body.traps_at(id);
                if traps.is_empty() {
                    exc_succs[i].push(StmtId(n as u32));
                } else {
                    // All matching handlers are possible targets: exception
                    // types are not statically known, so every covering
                    // clause gets an edge (sound over-approximation).
                    for t in traps {
                        exc_succs[i].push(t.handler);
                    }
                    // The exception may also be of a type no clause
                    // catches, unless some clause is a catch-all.
                    if !body.traps_at(id).iter().any(|t| t.exception.is_none()) {
                        exc_succs[i].push(StmtId(n as u32));
                    }
                }
            }

            // Dedup successor lists (switch arms may repeat targets).
            normal_succs[i].sort_unstable();
            normal_succs[i].dedup();
            exc_succs[i].sort_unstable();
            exc_succs[i].dedup();
        }

        for i in 0..n {
            let from = StmtId(i as u32);
            for &t in normal_succs[i].iter().chain(exc_succs[i].iter()) {
                preds[t.index()].push(from);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }

        Cfg {
            normal_succs,
            exc_succs,
            preds,
            len: n,
        }
    }

    /// Returns a copy of this CFG with the exceptional edges removed —
    /// the graph on which "is X a control condition of Y" questions make
    /// sense (every possibly-throwing call otherwise controls everything
    /// after it).
    pub fn normal_only(&self) -> Cfg {
        let mut preds: Vec<Vec<StmtId>> = vec![Vec::new(); self.len + 1];
        for (i, succs) in self.normal_succs.iter().enumerate() {
            for &t in succs {
                preds[t.index()].push(StmtId(i as u32));
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        Cfg {
            normal_succs: self.normal_succs.clone(),
            exc_succs: vec![Vec::new(); self.len],
            preds,
            len: self.len,
        }
    }

    /// Iterates all successors (normal then exceptional) of `s`, excluding
    /// the virtual exit when `include_exit` is false.
    pub fn succs(&self, s: StmtId, include_exit: bool) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self.normal_succs[s.index()]
            .iter()
            .chain(self.exc_succs[s.index()].iter())
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        if !include_exit {
            out.retain(|t| t.index() < self.len);
        }
        out
    }

    /// Returns the statements reachable from the entry over all edges.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len];
        if self.len == 0 {
            return seen;
        }
        let mut stack = vec![StmtId(0)];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for t in self.succs(s, false) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Returns a reverse-postorder enumeration of reachable statements
    /// (over all edges, ignoring the virtual exit).
    pub fn reverse_postorder(&self) -> Vec<StmtId> {
        let mut visited = vec![false; self.len];
        let mut order = Vec::with_capacity(self.len);
        if self.len == 0 {
            return order;
        }
        // Iterative DFS with an explicit post stack.
        let mut stack: Vec<(StmtId, usize)> = vec![(StmtId(0), 0)];
        visited[0] = true;
        let mut succ_cache: Vec<Option<Vec<StmtId>>> = vec![None; self.len];
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = succ_cache[node.index()]
                .get_or_insert_with(|| self.succs(node, false))
                .clone();
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Operand, Stmt, Trap};

    fn body_of(stmts: Vec<Stmt>, traps: Vec<Trap>) -> Body {
        Body {
            locals: vec![],
            stmts,
            traps,
        }
    }

    #[test]
    fn straightline_chains() {
        let b = body_of(
            vec![Stmt::Nop, Stmt::Nop, Stmt::Return { value: None }],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1)]);
        assert_eq!(cfg.normal_succs[1], vec![StmtId(2)]);
        assert_eq!(cfg.normal_succs[2], vec![cfg.exit()]);
        assert_eq!(cfg.preds[1], vec![StmtId(0)]);
    }

    #[test]
    fn if_has_two_successors() {
        let b = body_of(
            vec![
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(2),
                },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1), StmtId(2)]);
    }

    #[test]
    fn uncaught_throw_goes_to_exit() {
        let b = body_of(
            vec![Stmt::Throw {
                value: Operand::Null,
            }],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert!(cfg.normal_succs[0].is_empty());
        assert_eq!(cfg.exc_succs[0], vec![cfg.exit()]);
    }

    #[test]
    fn trapped_call_gets_handler_edge_and_escape_edge() {
        let mut p = crate::body::Program::new();
        let key = crate::body::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("f"),
            sig: p.symbols.intern("()V"),
        };
        let io = p.symbols.intern("Ljava/io/IOException;");
        let b = body_of(
            vec![
                Stmt::Invoke(crate::body::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: Some(io),
                handler: StmtId(2),
            }],
        );
        let cfg = Cfg::build(&b);
        // Typed handler: edge to handler plus escape edge to exit.
        assert_eq!(cfg.exc_succs[0], vec![StmtId(2), cfg.exit()]);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1)]);
    }

    #[test]
    fn catch_all_suppresses_escape_edge() {
        let mut p = crate::body::Program::new();
        let key = crate::body::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("f"),
            sig: p.symbols.intern("()V"),
        };
        let b = body_of(
            vec![
                Stmt::Invoke(crate::body::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Return { value: None },
            ],
            vec![Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: None,
                handler: StmtId(2),
            }],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.exc_succs[0], vec![StmtId(2)]);
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let b = body_of(
            vec![
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Nop,
                Stmt::Goto { target: StmtId(4) },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], StmtId(0));
        assert_eq!(rpo.len(), 5);
    }

    #[test]
    fn unreachable_code_is_detected() {
        let b = body_of(
            vec![
                Stmt::Return { value: None },
                Stmt::Nop, // Dead.
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        let reach = cfg.reachable();
        assert_eq!(reach, vec![true, false, false]);
    }
}
