//! Statement-level control-flow graphs with explicit exceptional edges.
//!
//! CFG nodes are statement ids; an extra *virtual exit* node (index
//! `body.len()`) is the target of every return and uncaught throw so that
//! post-dominance is well defined.

use crate::body::{Body, Stmt, StmtId};
use std::sync::OnceLock;

/// The kind of a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary fallthrough or branch.
    Normal,
    /// Exceptional transfer to a trap handler (or the exit for uncaught).
    Exceptional,
}

/// A statement-level CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Normal successors per statement.
    pub normal_succs: Vec<Vec<StmtId>>,
    /// Exceptional successors (handler entries) per statement.
    pub exc_succs: Vec<Vec<StmtId>>,
    /// Predecessors per node (statements plus the virtual exit), combined
    /// over both edge kinds.
    pub preds: Vec<Vec<StmtId>>,
    /// Number of real statements (the virtual exit is node `len`).
    pub len: usize,
    /// Cached reverse-postorder enumeration of reachable statements,
    /// computed once at construction (the solver consults it on every
    /// `solve`, several times per method).
    rpo: Vec<StmtId>,
    /// Lazily cached forward solver priority (see [`Cfg::solve_priority`]).
    fwd_priority: OnceLock<(Vec<u32>, Vec<u32>)>,
    /// Lazily cached backward solver priority.
    bwd_priority: OnceLock<(Vec<u32>, Vec<u32>)>,
}

impl Cfg {
    /// The virtual exit node id.
    pub fn exit(&self) -> StmtId {
        StmtId(self.len as u32)
    }

    /// Builds the CFG of `body`.
    pub fn build(body: &Body) -> Cfg {
        let n = body.len();
        let mut normal_succs: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut exc_succs: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<StmtId>> = vec![Vec::new(); n + 1];

        for (id, stmt) in body.iter() {
            let i = id.index();
            match stmt {
                Stmt::Goto { target } => normal_succs[i].push(*target),
                Stmt::If { target, .. } => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                    normal_succs[i].push(*target);
                }
                Stmt::Switch { arms, .. } => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                    for &(_, t) in arms {
                        normal_succs[i].push(t);
                    }
                }
                Stmt::Return { .. } => normal_succs[i].push(StmtId(n as u32)),
                Stmt::Throw { .. } => {
                    // Handled below via the exceptional machinery; a throw
                    // with no covering trap goes straight to the exit.
                }
                _ => {
                    if i + 1 < n {
                        normal_succs[i].push(StmtId((i + 1) as u32));
                    }
                }
            }

            if stmt.can_throw() {
                // All matching handlers are possible targets: exception
                // types are not statically known, so every covering
                // clause gets an edge (sound over-approximation).
                let mut catch_all = false;
                for t in body.traps_at(id) {
                    exc_succs[i].push(t.handler);
                    catch_all |= t.exception.is_none();
                }
                // The exception may also be of a type no clause catches
                // (or there is no covering trap at all), unless some
                // clause is a catch-all.
                if !catch_all {
                    exc_succs[i].push(StmtId(n as u32));
                }
            }

            // Dedup successor lists (switch arms may repeat targets).
            normal_succs[i].sort_unstable();
            normal_succs[i].dedup();
            exc_succs[i].sort_unstable();
            exc_succs[i].dedup();
        }

        for i in 0..n {
            let from = StmtId(i as u32);
            for &t in normal_succs[i].iter().chain(exc_succs[i].iter()) {
                preds[t.index()].push(from);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }

        let rpo = compute_rpo(&normal_succs, &exc_succs, n);
        Cfg {
            normal_succs,
            exc_succs,
            preds,
            len: n,
            rpo,
            fwd_priority: OnceLock::new(),
            bwd_priority: OnceLock::new(),
        }
    }

    /// Returns a copy of this CFG with the exceptional edges removed —
    /// the graph on which "is X a control condition of Y" questions make
    /// sense (every possibly-throwing call otherwise controls everything
    /// after it).
    pub fn normal_only(&self) -> Cfg {
        let mut preds: Vec<Vec<StmtId>> = vec![Vec::new(); self.len + 1];
        for (i, succs) in self.normal_succs.iter().enumerate() {
            for &t in succs {
                preds[t.index()].push(StmtId(i as u32));
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        let exc_succs = vec![Vec::new(); self.len];
        let rpo = compute_rpo(&self.normal_succs, &exc_succs, self.len);
        Cfg {
            normal_succs: self.normal_succs.clone(),
            exc_succs,
            preds,
            len: self.len,
            rpo,
            fwd_priority: OnceLock::new(),
            bwd_priority: OnceLock::new(),
        }
    }

    /// Iterates all successors (normal then exceptional) of `s`, excluding
    /// the virtual exit when `include_exit` is false.
    pub fn succs(&self, s: StmtId, include_exit: bool) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self.normal_succs[s.index()]
            .iter()
            .chain(self.exc_succs[s.index()].iter())
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        if !include_exit {
            out.retain(|t| t.index() < self.len);
        }
        out
    }

    /// Iterates all successors of `s` (normal then exceptional, virtual
    /// exit included) without allocating. Unlike [`Cfg::succs`] the two
    /// per-kind lists are chained rather than merged, so a target on both
    /// lists appears twice; callers that care must tolerate duplicates.
    pub fn succ_iter(&self, s: StmtId) -> impl Iterator<Item = StmtId> + '_ {
        self.normal_succs[s.index()]
            .iter()
            .chain(self.exc_succs[s.index()].iter())
            .copied()
    }

    /// Returns `true` when `s` has at least one successor other than the
    /// virtual exit.
    pub fn has_real_succs(&self, s: StmtId) -> bool {
        self.succ_iter(s).any(|t| t.index() < self.len)
    }

    /// Returns the statements reachable from the entry over all edges.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len];
        if self.len == 0 {
            return seen;
        }
        let mut stack = vec![StmtId(0)];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for t in self.succ_iter(s) {
                if t.index() < self.len && !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Returns the reverse-postorder enumeration of reachable statements
    /// (over all edges, ignoring the virtual exit), cached at build time.
    pub fn reverse_postorder(&self) -> &[StmtId] {
        &self.rpo
    }

    /// Solver visit priority: `order` lists statement indices in visit
    /// order (reverse-postorder when `forward`, postorder otherwise, with
    /// unreachable statements appended in index order), and `rank` is the
    /// inverse permutation (statement index → position in `order`).
    /// Computed on first use and cached for the lifetime of the CFG, so
    /// repeated solves over the same method pay nothing.
    pub fn solve_priority(&self, forward: bool) -> (&[u32], &[u32]) {
        let slot = if forward {
            &self.fwd_priority
        } else {
            &self.bwd_priority
        };
        let (order, rank) = slot.get_or_init(|| {
            let n = self.len;
            let mut order: Vec<u32> = Vec::with_capacity(n);
            if forward {
                order.extend(self.rpo.iter().map(|s| s.0));
            } else {
                order.extend(self.rpo.iter().rev().map(|s| s.0));
            }
            let mut rank = vec![u32::MAX; n];
            for (r, &s) in order.iter().enumerate() {
                rank[s as usize] = r as u32;
            }
            // Unreachable statements go last, in index order, so every
            // statement still gets visited (their facts stay bottom but
            // downstream code may index them).
            for i in 0..n as u32 {
                if rank[i as usize] == u32::MAX {
                    rank[i as usize] = order.len() as u32;
                    order.push(i);
                }
            }
            (order, rank)
        });
        (order, rank)
    }

    /// Returns `true` when some edge points backwards (or self-loops) in
    /// statement-index order. A CFG without such an edge is a DAG, so it
    /// cannot contain loops of any kind — the cheap pre-filter natural
    /// loop detection uses to skip dominator computation entirely.
    pub fn has_backward_edge(&self) -> bool {
        (0..self.len).any(|i| {
            self.succ_iter(StmtId(i as u32))
                .any(|t| t.index() <= i && t.index() < self.len)
        })
    }
}

/// Reverse-postorder DFS over the given edge lists. Each frame walks the
/// statement's normal list then its exceptional list by index, so no
/// successor vector is ever materialized.
fn compute_rpo(normal_succs: &[Vec<StmtId>], exc_succs: &[Vec<StmtId>], len: usize) -> Vec<StmtId> {
    let mut visited = vec![false; len];
    let mut order = Vec::with_capacity(len);
    if len == 0 {
        return order;
    }
    let mut stack: Vec<(StmtId, usize)> = vec![(StmtId(0), 0)];
    visited[0] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        let normal = &normal_succs[node.index()];
        let exc = &exc_succs[node.index()];
        let next = if *idx < normal.len() {
            Some(normal[*idx])
        } else {
            exc.get(*idx - normal.len()).copied()
        };
        match next {
            Some(next) => {
                *idx += 1;
                if next.index() < len && !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            }
            None => {
                order.push(node);
                stack.pop();
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Operand, Stmt, Trap};

    fn body_of(stmts: Vec<Stmt>, traps: Vec<Trap>) -> Body {
        Body {
            locals: vec![],
            stmts,
            traps,
        }
    }

    #[test]
    fn straightline_chains() {
        let b = body_of(
            vec![Stmt::Nop, Stmt::Nop, Stmt::Return { value: None }],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1)]);
        assert_eq!(cfg.normal_succs[1], vec![StmtId(2)]);
        assert_eq!(cfg.normal_succs[2], vec![cfg.exit()]);
        assert_eq!(cfg.preds[1], vec![StmtId(0)]);
    }

    #[test]
    fn if_has_two_successors() {
        let b = body_of(
            vec![
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(2),
                },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1), StmtId(2)]);
    }

    #[test]
    fn uncaught_throw_goes_to_exit() {
        let b = body_of(
            vec![Stmt::Throw {
                value: Operand::Null,
            }],
            vec![],
        );
        let cfg = Cfg::build(&b);
        assert!(cfg.normal_succs[0].is_empty());
        assert_eq!(cfg.exc_succs[0], vec![cfg.exit()]);
    }

    #[test]
    fn trapped_call_gets_handler_edge_and_escape_edge() {
        let mut p = crate::body::Program::new();
        let key = crate::body::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("f"),
            sig: p.symbols.intern("()V"),
        };
        let io = p.symbols.intern("Ljava/io/IOException;");
        let b = body_of(
            vec![
                Stmt::Invoke(crate::body::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: Some(io),
                handler: StmtId(2),
            }],
        );
        let cfg = Cfg::build(&b);
        // Typed handler: edge to handler plus escape edge to exit.
        assert_eq!(cfg.exc_succs[0], vec![StmtId(2), cfg.exit()]);
        assert_eq!(cfg.normal_succs[0], vec![StmtId(1)]);
    }

    #[test]
    fn catch_all_suppresses_escape_edge() {
        let mut p = crate::body::Program::new();
        let key = crate::body::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("f"),
            sig: p.symbols.intern("()V"),
        };
        let b = body_of(
            vec![
                Stmt::Invoke(crate::body::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Return { value: None },
            ],
            vec![Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: None,
                handler: StmtId(2),
            }],
        );
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.exc_succs[0], vec![StmtId(2)]);
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let b = body_of(
            vec![
                Stmt::If {
                    cond: nck_dex::CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Nop,
                Stmt::Goto { target: StmtId(4) },
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], StmtId(0));
        assert_eq!(rpo.len(), 5);
    }

    #[test]
    fn unreachable_code_is_detected() {
        let b = body_of(
            vec![
                Stmt::Return { value: None },
                Stmt::Nop, // Dead.
                Stmt::Return { value: None },
            ],
            vec![],
        );
        let cfg = Cfg::build(&b);
        let reach = cfg.reachable();
        assert_eq!(reach, vec![true, false, false]);
    }
}
