//! Jimple-style pretty printing of IR bodies, for reports and debugging.

use crate::body::{Body, IdentityKind, InvokeExpr, Operand, Program, Rvalue, Stmt};
use std::fmt::Write as _;

fn fmt_operand(p: &Program, body: &Body, op: Operand) -> String {
    match op {
        Operand::Local(l) => body
            .locals
            .get(l.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("v?{}", l.0)),
        Operand::IntConst(v) => v.to_string(),
        Operand::StrConst(s) => format!("{:?}", p.symbols.resolve(s)),
        Operand::Null => "null".to_owned(),
        Operand::ClassConst(s) => format!("class {}", p.symbols.resolve(s)),
    }
}

fn fmt_invoke(p: &Program, body: &Body, i: &InvokeExpr) -> String {
    let args = i
        .args
        .iter()
        .map(|&a| fmt_operand(p, body, a))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{}.{}{}({args})",
        p.symbols.resolve(i.callee.class),
        p.symbols.resolve(i.callee.name),
        p.symbols.resolve(i.callee.sig)
    )
}

fn fmt_rvalue(p: &Program, body: &Body, rv: &Rvalue) -> String {
    match rv {
        Rvalue::Use(o) => fmt_operand(p, body, *o),
        Rvalue::BinOp { op, a, b } => format!(
            "{} {op:?} {}",
            fmt_operand(p, body, *a),
            fmt_operand(p, body, *b)
        ),
        Rvalue::UnOp { op, a } => format!("{op:?} {}", fmt_operand(p, body, *a)),
        Rvalue::Cast { ty, op } => {
            format!("({}) {}", p.symbols.resolve(*ty), fmt_operand(p, body, *op))
        }
        Rvalue::InstanceOf { ty, op } => format!(
            "{} instanceof {}",
            fmt_operand(p, body, *op),
            p.symbols.resolve(*ty)
        ),
        Rvalue::New { ty } => format!("new {}", p.symbols.resolve(*ty)),
        Rvalue::NewArray { ty, len } => format!(
            "new {}[{}]",
            p.symbols.resolve(*ty),
            fmt_operand(p, body, *len)
        ),
        Rvalue::InstanceField { base, field } => format!(
            "{}.{}",
            fmt_operand(p, body, *base),
            p.symbols.resolve(field.name)
        ),
        Rvalue::StaticField { field } => format!(
            "{}.{}",
            p.symbols.resolve(field.class),
            p.symbols.resolve(field.name)
        ),
        Rvalue::ArrayElem { array, index } => format!(
            "{}[{}]",
            fmt_operand(p, body, *array),
            fmt_operand(p, body, *index)
        ),
        Rvalue::ArrayLength { array } => format!("lengthof {}", fmt_operand(p, body, *array)),
        Rvalue::Invoke(i) => fmt_invoke(p, body, i),
    }
}

/// Renders one statement.
pub fn fmt_stmt(p: &Program, body: &Body, stmt: &Stmt) -> String {
    match stmt {
        Stmt::Identity { local, kind } => {
            let name = &body.locals[local.0 as usize].name;
            let src = match kind {
                IdentityKind::This => "@this".to_owned(),
                IdentityKind::Param(i) => format!("@param{i}"),
                IdentityKind::CaughtException => "@caughtexception".to_owned(),
            };
            format!("{name} := {src}")
        }
        Stmt::Assign { local, rvalue } => format!(
            "{} = {}",
            body.locals[local.0 as usize].name,
            fmt_rvalue(p, body, rvalue)
        ),
        Stmt::Invoke(i) => fmt_invoke(p, body, i),
        Stmt::StoreInstanceField { base, field, value } => format!(
            "{}.{} = {}",
            fmt_operand(p, body, *base),
            p.symbols.resolve(field.name),
            fmt_operand(p, body, *value)
        ),
        Stmt::StoreStaticField { field, value } => format!(
            "{}.{} = {}",
            p.symbols.resolve(field.class),
            p.symbols.resolve(field.name),
            fmt_operand(p, body, *value)
        ),
        Stmt::StoreArrayElem {
            array,
            index,
            value,
        } => format!(
            "{}[{}] = {}",
            fmt_operand(p, body, *array),
            fmt_operand(p, body, *index),
            fmt_operand(p, body, *value)
        ),
        Stmt::If { cond, a, b, target } => format!(
            "if {} {cond:?} {} goto @{}",
            fmt_operand(p, body, *a),
            fmt_operand(p, body, *b),
            target.0
        ),
        Stmt::Goto { target } => format!("goto @{}", target.0),
        Stmt::Switch { key, arms } => {
            let arms = arms
                .iter()
                .map(|(k, t)| format!("{k}=>@{}", t.0))
                .collect::<Vec<_>>()
                .join(", ");
            format!("switch {} {{{arms}}}", fmt_operand(p, body, *key))
        }
        Stmt::Return { value: None } => "return".to_owned(),
        Stmt::Return { value: Some(v) } => format!("return {}", fmt_operand(p, body, *v)),
        Stmt::Throw { value } => format!("throw {}", fmt_operand(p, body, *value)),
        Stmt::Nop => "nop".to_owned(),
    }
}

/// Renders a whole body with statement numbers and trap annotations.
pub fn fmt_body(p: &Program, body: &Body) -> String {
    let mut out = String::new();
    for (id, stmt) in body.iter() {
        let _ = writeln!(out, "  {:4}: {}", id.0, fmt_stmt(p, body, stmt));
    }
    for t in &body.traps {
        let ty = t
            .exception
            .map(|e| p.symbols.resolve(e).to_owned())
            .unwrap_or_else(|| "<any>".to_owned());
        let _ = writeln!(
            out,
            "  catch {ty} from @{} to @{} handler @{}",
            t.start.0, t.end.0, t.handler.0
        );
    }
    out
}

/// Renders a whole program.
pub fn fmt_program(p: &Program) -> String {
    let mut out = String::new();
    for class in &p.classes {
        let _ = writeln!(out, "class {} {{", p.symbols.resolve(class.name));
        for &mid in &class.methods {
            let m = p.method(mid);
            let _ = writeln!(
                out,
                " method {}{} {{",
                p.symbols.resolve(m.key.name),
                p.symbols.resolve(m.key.sig)
            );
            if let Some(body) = &m.body {
                out.push_str(&fmt_body(p, body));
            }
            let _ = writeln!(out, " }}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lift::lift_file;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;

    #[test]
    fn pretty_output_is_readable() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                m.const_str(m.reg(0), "http://x");
                m.invoke_virtual("Lnet/Client;", "get", "(Ljava/lang/String;)V", &[m.reg(0)]);
                m.ret(None);
            });
        });
        let p = lift_file(&b.finish().unwrap()).unwrap();
        let text = super::fmt_program(&p);
        assert!(text.contains("class Lapp/T;"));
        assert!(text.contains("this := @this"));
        assert!(text.contains("v3 := @param0"));
        assert!(text.contains("Lnet/Client;.get(Ljava/lang/String;)V(v0)"));
        assert!(text.contains("return"));
    }
}
