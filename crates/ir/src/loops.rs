//! Natural loop detection, the substrate of NChecker's customized-retry
//! identification (§4.5 of the paper).
//!
//! A back edge is an edge `u → h` where `h` dominates `u`; the natural
//! loop of `h` is everything that can reach `u` without passing through
//! `h`. Loops sharing a header are merged. Exceptional edges participate:
//! a retry loop's body includes its catch handler, which rejoins the
//! header via a normal edge.

use crate::body::{Body, Stmt, StmtId};
use crate::cfg::Cfg;
use crate::dom::DomTree;
use std::collections::BTreeSet;

/// One exit edge of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopExit {
    /// The in-loop statement the edge leaves from.
    pub from: StmtId,
    /// The out-of-loop target; `None` means the method exit (a `return` or
    /// uncaught `throw` inside the loop).
    pub to: Option<StmtId>,
    /// `true` when `from` is a conditional branch (`if`/`switch`), `false`
    /// for unconditional exits (`return`, `throw`, `goto` out).
    pub conditional: bool,
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: StmtId,
    /// All statements in the loop, including the header.
    pub body: BTreeSet<StmtId>,
    /// Sources of the back edges into the header.
    pub back_edges: Vec<StmtId>,
}

impl NaturalLoop {
    /// Returns `true` when `s` belongs to the loop.
    pub fn contains(&self, s: StmtId) -> bool {
        self.body.contains(&s)
    }

    /// Computes the exit edges of this loop.
    pub fn exits(&self, body: &Body, cfg: &Cfg) -> Vec<LoopExit> {
        let mut out = Vec::new();
        for &s in &self.body {
            let stmt = body.stmt(s);
            let conditional = matches!(stmt, Stmt::If { .. } | Stmt::Switch { .. });
            for t in cfg.succs(s, true) {
                if t == cfg.exit() {
                    out.push(LoopExit {
                        from: s,
                        to: None,
                        conditional,
                    });
                } else if !self.contains(t) {
                    out.push(LoopExit {
                        from: s,
                        to: Some(t),
                        conditional,
                    });
                }
            }
        }
        out.sort_by_key(|e| (e.from, e.to.map(|t| t.0)));
        out.dedup();
        out
    }
}

/// Finds all natural loops of `body`, merging loops that share a header.
///
/// Loops are returned in ascending header order.
pub fn natural_loops(cfg: &Cfg, doms: &DomTree) -> Vec<NaturalLoop> {
    use std::collections::BTreeMap;
    let mut by_header: BTreeMap<StmtId, NaturalLoop> = BTreeMap::new();

    for i in 0..cfg.len {
        let u = StmtId(i as u32);
        if !doms.is_reachable(u) {
            continue;
        }
        for h in cfg.succs(u, false) {
            if !doms.dominates(h, u) {
                continue;
            }
            // Back edge u -> h: collect the natural loop.
            let entry = by_header.entry(h).or_insert_with(|| NaturalLoop {
                header: h,
                body: BTreeSet::from([h]),
                back_edges: Vec::new(),
            });
            entry.back_edges.push(u);
            let mut stack = vec![u];
            while let Some(s) = stack.pop() {
                if entry.body.insert(s) {
                    for &p in &cfg.preds[s.index()] {
                        if !entry.body.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }

    by_header
        .into_values()
        .map(|mut l| {
            l.back_edges.sort_unstable();
            l.back_edges.dedup();
            l
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Body, Operand, Stmt};
    use crate::dom::dominators;
    use nck_dex::CondOp;

    fn simple_loop() -> Body {
        // 0: nop (header)
        // 1: if -> 3 (conditional exit)
        // 2: goto 0 (latch)
        // 3: return
        Body {
            locals: vec![],
            stmts: vec![
                Stmt::Nop,
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Goto { target: StmtId(0) },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        }
    }

    #[test]
    fn finds_single_loop() {
        let b = simple_loop();
        let cfg = Cfg::build(&b);
        let doms = dominators(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, StmtId(0));
        assert_eq!(
            l.body.iter().copied().collect::<Vec<_>>(),
            vec![StmtId(0), StmtId(1), StmtId(2)]
        );
        assert_eq!(l.back_edges, vec![StmtId(2)]);
    }

    #[test]
    fn loop_exits_are_classified() {
        let b = simple_loop();
        let cfg = Cfg::build(&b);
        let doms = dominators(&cfg);
        let loops = natural_loops(&cfg, &doms);
        let exits = loops[0].exits(&b, &cfg);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].from, StmtId(1));
        assert_eq!(exits[0].to, Some(StmtId(3)));
        assert!(exits[0].conditional);
    }

    #[test]
    fn return_inside_loop_is_unconditional_exit() {
        // 0: header nop
        // 1: if -> 3
        // 2: goto 0
        // 3: return   <- target of exit, but also:
        // Replace 2 with a return to model exit-by-return in the loop.
        let b = Body {
            locals: vec![],
            stmts: vec![
                Stmt::Nop,
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(0),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&b);
        let doms = dominators(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        let exits = loops[0].exits(&b, &cfg);
        // Exit via fallthrough of the if to stmt 2 (outside the loop).
        assert!(exits
            .iter()
            .any(|e| e.from == StmtId(1) && e.to == Some(StmtId(2))));
    }

    #[test]
    fn nested_loops_share_nothing() {
        // Outer: 0..5, inner 1..3.
        // 0: nop (outer header)
        // 1: nop (inner header)
        // 2: if -> 1 (inner latch, conditional)
        // 3: if -> 0 (outer latch, conditional)
        // 4: return
        let b = Body {
            locals: vec![],
            stmts: vec![
                Stmt::Nop,
                Stmt::Nop,
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(1),
                },
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(0),
                },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&b);
        let doms = dominators(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == StmtId(0)).unwrap();
        let inner = loops.iter().find(|l| l.header == StmtId(1)).unwrap();
        assert!(outer.body.len() > inner.body.len());
        assert!(inner.body.iter().all(|s| outer.contains(*s)));
    }

    #[test]
    fn loop_through_catch_handler_is_detected() {
        // Models: while(true) { try { call(); return; } catch { } }
        // 0: invoke (in try, handler=2)
        // 1: return
        // 2: identity caught
        // 3: goto 0
        let mut p = crate::body::Program::new();
        let key = crate::body::MethodKey {
            class: p.symbols.intern("La/B;"),
            name: p.symbols.intern("send"),
            sig: p.symbols.intern("()V"),
        };
        let b = Body {
            locals: vec![crate::body::LocalDecl {
                name: "e".into(),
                ty: None,
            }],
            stmts: vec![
                Stmt::Invoke(crate::body::InvokeExpr {
                    kind: nck_dex::InvokeKind::Static,
                    callee: key,
                    args: vec![],
                }),
                Stmt::Return { value: None },
                Stmt::Identity {
                    local: crate::body::LocalId(0),
                    kind: crate::body::IdentityKind::CaughtException,
                },
                Stmt::Goto { target: StmtId(0) },
            ],
            traps: vec![crate::body::Trap {
                start: StmtId(0),
                end: StmtId(1),
                exception: None,
                handler: StmtId(2),
            }],
        };
        let cfg = Cfg::build(&b);
        let doms = dominators(&cfg);
        let loops = natural_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, StmtId(0));
        // The catch handler is part of the loop body.
        assert!(l.contains(StmtId(2)));
        assert!(l.contains(StmtId(3)));
        // The loop is left unconditionally via the call's normal successor
        // (the return statement), which only executes when `send` does not
        // throw — the "unconditional exit depends on request success" shape
        // of Figure 6(b).
        let exits = l.exits(&b, &cfg);
        assert_eq!(exits.len(), 1);
        assert_eq!(exits[0].from, StmtId(0));
        assert_eq!(exits[0].to, Some(StmtId(1)));
        assert!(!exits[0].conditional);
    }
}
