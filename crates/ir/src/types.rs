//! The IR type system: JVM-style descriptors parsed into structured types.

/// A lifted type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `V`.
    Void,
    /// `Z`.
    Boolean,
    /// `B`.
    Byte,
    /// `S`.
    Short,
    /// `C`.
    Char,
    /// `I`.
    Int,
    /// `J`.
    Long,
    /// `F`.
    Float,
    /// `D`.
    Double,
    /// `L<name>;` — the stored string keeps the full descriptor form.
    Class(String),
    /// `[<elem>`.
    Array(Box<Type>),
    /// A reference whose class could not be resolved; behaves like `Class`.
    Unknown,
}

impl Type {
    /// Parses a descriptor such as `I`, `Ljava/lang/String;`, or `[[B`.
    ///
    /// Returns `None` on malformed descriptors.
    pub fn parse(descriptor: &str) -> Option<Type> {
        let mut chars = descriptor.chars();
        match chars.next()? {
            'V' if descriptor.len() == 1 => Some(Type::Void),
            'Z' if descriptor.len() == 1 => Some(Type::Boolean),
            'B' if descriptor.len() == 1 => Some(Type::Byte),
            'S' if descriptor.len() == 1 => Some(Type::Short),
            'C' if descriptor.len() == 1 => Some(Type::Char),
            'I' if descriptor.len() == 1 => Some(Type::Int),
            'J' if descriptor.len() == 1 => Some(Type::Long),
            'F' if descriptor.len() == 1 => Some(Type::Float),
            'D' if descriptor.len() == 1 => Some(Type::Double),
            'L' if descriptor.ends_with(';') && descriptor.len() > 2 => {
                Some(Type::Class(descriptor.to_owned()))
            }
            '[' => Some(Type::Array(Box::new(Type::parse(&descriptor[1..])?))),
            _ => None,
        }
    }

    /// Renders the type back to descriptor form.
    pub fn descriptor(&self) -> String {
        match self {
            Type::Void => "V".to_owned(),
            Type::Boolean => "Z".to_owned(),
            Type::Byte => "B".to_owned(),
            Type::Short => "S".to_owned(),
            Type::Char => "C".to_owned(),
            Type::Int => "I".to_owned(),
            Type::Long => "J".to_owned(),
            Type::Float => "F".to_owned(),
            Type::Double => "D".to_owned(),
            Type::Class(c) => c.clone(),
            Type::Array(e) => format!("[{}", e.descriptor()),
            Type::Unknown => "Ljava/lang/Object;".to_owned(),
        }
    }

    /// Returns `true` for class and array types (and [`Type::Unknown`]).
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Class(_) | Type::Array(_) | Type::Unknown)
    }

    /// Returns `true` for numeric and boolean primitives.
    pub fn is_primitive(&self) -> bool {
        !self.is_reference() && !matches!(self, Type::Void)
    }

    /// Returns the human-readable dotted class name for class types
    /// (`Ljava/lang/String;` → `java.lang.String`), or the descriptor
    /// otherwise.
    pub fn pretty(&self) -> String {
        match self {
            Type::Class(c) => c
                .trim_start_matches('L')
                .trim_end_matches(';')
                .replace('/', "."),
            other => other.descriptor(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_primitives() {
        assert_eq!(Type::parse("I"), Some(Type::Int));
        assert_eq!(Type::parse("V"), Some(Type::Void));
        assert_eq!(Type::parse("Z"), Some(Type::Boolean));
    }

    #[test]
    fn parse_class_and_array() {
        assert_eq!(
            Type::parse("Ljava/lang/String;"),
            Some(Type::Class("Ljava/lang/String;".to_owned()))
        );
        assert_eq!(
            Type::parse("[[I"),
            Some(Type::Array(Box::new(Type::Array(Box::new(Type::Int)))))
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(Type::parse("").is_none());
        assert!(Type::parse("Q").is_none());
        assert!(Type::parse("II").is_none());
        assert!(Type::parse("Lfoo").is_none());
        assert!(Type::parse("L;").is_none());
        assert!(Type::parse("[").is_none());
    }

    #[test]
    fn descriptor_roundtrip() {
        for d in ["I", "V", "Ljava/lang/String;", "[[Lfoo/Bar;", "[Z"] {
            assert_eq!(Type::parse(d).unwrap().descriptor(), d);
        }
    }

    #[test]
    fn pretty_names() {
        assert_eq!(
            Type::parse("Ljava/lang/String;").unwrap().pretty(),
            "java.lang.String"
        );
        assert_eq!(Type::Int.pretty(), "I");
    }

    #[test]
    fn reference_classification() {
        assert!(Type::parse("[I").unwrap().is_reference());
        assert!(Type::parse("Lx/Y;").unwrap().is_reference());
        assert!(Type::Int.is_primitive());
        assert!(!Type::Void.is_primitive());
        assert!(!Type::Void.is_reference());
    }
}
