//! The Jimple-like 3-address IR: programs, classes, methods, and bodies.
//!
//! Every ADX instruction lifts to at most one IR statement; `invoke` +
//! `move-result` pairs fuse into a single assigning call. Statements are
//! the unit of all downstream analyses (CFG nodes, dataflow facts, slicing
//! criteria), mirroring how Soot's Jimple units drive FlowDroid.

use crate::symbols::{Interner, Symbol};
use nck_dex::{AccessFlags, BinOp, CondOp, InvokeKind, UnOp};
use std::collections::HashMap;

/// Index of a local variable within a [`Body`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Index of a statement within a [`Body`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a method within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Index of a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Fully qualified method identity: class, name, and signature descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodKey {
    /// Declaring class descriptor symbol (`Lcom/app/Main;`).
    pub class: Symbol,
    /// Simple name symbol (`onCreate`).
    pub name: Symbol,
    /// Signature descriptor symbol (`(Landroid/os/Bundle;)V`).
    pub sig: Symbol,
}

/// Fully qualified field identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldKey {
    /// Declaring class descriptor symbol.
    pub class: Symbol,
    /// Field name symbol.
    pub name: Symbol,
    /// Field type descriptor symbol.
    pub ty: Symbol,
}

/// A value operand: a local or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A local variable.
    Local(LocalId),
    /// An integer constant.
    IntConst(i64),
    /// A string constant.
    StrConst(Symbol),
    /// The `null` reference.
    Null,
    /// A class object constant.
    ClassConst(Symbol),
}

impl Operand {
    /// Returns the local if this operand is one.
    pub fn as_local(self) -> Option<LocalId> {
        match self {
            Operand::Local(l) => Some(l),
            _ => None,
        }
    }
}

/// The source of an identity statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdentityKind {
    /// The receiver of an instance method.
    This,
    /// The `i`-th declared parameter (receiver excluded).
    Param(u16),
    /// The exception caught at a handler entry.
    CaughtException,
}

/// A method call expression.
#[derive(Debug, Clone, PartialEq)]
pub struct InvokeExpr {
    /// Dispatch kind.
    pub kind: InvokeKind,
    /// Callee identity.
    pub callee: MethodKey,
    /// Arguments; the receiver is `args[0]` for non-static kinds.
    pub args: Vec<Operand>,
}

impl InvokeExpr {
    /// Returns the receiver operand for instance calls.
    pub fn receiver(&self) -> Option<Operand> {
        if self.kind.has_receiver() {
            self.args.first().copied()
        } else {
            None
        }
    }
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Rvalue {
    /// A plain operand copy.
    Use(Operand),
    /// Binary operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unary operation.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// Checked cast.
    Cast {
        /// Target type descriptor symbol.
        ty: Symbol,
        /// Value being cast.
        op: Operand,
    },
    /// `instanceof` test.
    InstanceOf {
        /// Tested type descriptor symbol.
        ty: Symbol,
        /// Value being tested.
        op: Operand,
    },
    /// Object allocation.
    New {
        /// Allocated class descriptor symbol.
        ty: Symbol,
    },
    /// Array allocation.
    NewArray {
        /// Array type descriptor symbol.
        ty: Symbol,
        /// Length operand.
        len: Operand,
    },
    /// Instance field read.
    InstanceField {
        /// Base object.
        base: Operand,
        /// Field identity.
        field: FieldKey,
    },
    /// Static field read.
    StaticField {
        /// Field identity.
        field: FieldKey,
    },
    /// Array element read.
    ArrayElem {
        /// Array reference.
        array: Operand,
        /// Index operand.
        index: Operand,
    },
    /// Array length read.
    ArrayLength {
        /// Array reference.
        array: Operand,
    },
    /// Call with a result.
    Invoke(InvokeExpr),
}

impl Rvalue {
    /// Returns the operands read by this rvalue.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Rvalue::Use(o) | Rvalue::UnOp { a: o, .. } => vec![*o],
            Rvalue::BinOp { a, b, .. } => vec![*a, *b],
            Rvalue::Cast { op, .. } | Rvalue::InstanceOf { op, .. } => vec![*op],
            Rvalue::New { .. } | Rvalue::StaticField { .. } => vec![],
            Rvalue::NewArray { len, .. } => vec![*len],
            Rvalue::InstanceField { base, .. } => vec![*base],
            Rvalue::ArrayElem { array, index } => vec![*array, *index],
            Rvalue::ArrayLength { array } => vec![*array],
            Rvalue::Invoke(i) => i.args.clone(),
        }
    }

    /// Visits the operands read by this rvalue without allocating.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Rvalue::Use(o) | Rvalue::UnOp { a: o, .. } => f(*o),
            Rvalue::BinOp { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Rvalue::Cast { op, .. } | Rvalue::InstanceOf { op, .. } => f(*op),
            Rvalue::New { .. } | Rvalue::StaticField { .. } => {}
            Rvalue::NewArray { len, .. } => f(*len),
            Rvalue::InstanceField { base, .. } => f(*base),
            Rvalue::ArrayElem { array, index } => {
                f(*array);
                f(*index);
            }
            Rvalue::ArrayLength { array } => f(*array),
            Rvalue::Invoke(i) => {
                for &a in &i.args {
                    f(a);
                }
            }
        }
    }
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Parameter/receiver/exception binding at method or handler entry.
    Identity {
        /// Bound local.
        local: LocalId,
        /// What the local is bound to.
        kind: IdentityKind,
    },
    /// `local = rvalue`.
    Assign {
        /// Assigned local.
        local: LocalId,
        /// Right-hand side.
        rvalue: Rvalue,
    },
    /// A call whose result (if any) is discarded.
    Invoke(InvokeExpr),
    /// `base.field = value`.
    StoreInstanceField {
        /// Base object.
        base: Operand,
        /// Field identity.
        field: FieldKey,
        /// Stored value.
        value: Operand,
    },
    /// `Class.field = value`.
    StoreStaticField {
        /// Field identity.
        field: FieldKey,
        /// Stored value.
        value: Operand,
    },
    /// `array[index] = value`.
    StoreArrayElem {
        /// Array reference.
        array: Operand,
        /// Index operand.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// Conditional branch; falls through when the condition is false.
    If {
        /// Comparison operator.
        cond: CondOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Branch target when the condition holds.
        target: StmtId,
    },
    /// Unconditional branch.
    Goto {
        /// Branch target.
        target: StmtId,
    },
    /// Multi-way branch; falls through on no match.
    Switch {
        /// Key operand.
        key: Operand,
        /// `(key, target)` arms.
        arms: Vec<(i32, StmtId)>,
    },
    /// Method return.
    Return {
        /// Returned operand, or `None` for `void`.
        value: Option<Operand>,
    },
    /// Exception throw.
    Throw {
        /// Thrown operand.
        value: Operand,
    },
    /// No operation.
    Nop,
}

impl Stmt {
    /// Returns the local defined by this statement, if any.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Stmt::Identity { local, .. } | Stmt::Assign { local, .. } => Some(*local),
            _ => None,
        }
    }

    /// Returns the locals read by this statement.
    pub fn uses(&self) -> Vec<LocalId> {
        let ops: Vec<Operand> = match self {
            Stmt::Identity { .. } | Stmt::Nop | Stmt::Goto { .. } => vec![],
            Stmt::Assign { rvalue, .. } => rvalue.operands(),
            Stmt::Invoke(i) => i.args.clone(),
            Stmt::StoreInstanceField { base, value, .. } => vec![*base, *value],
            Stmt::StoreStaticField { value, .. } => vec![*value],
            Stmt::StoreArrayElem {
                array,
                index,
                value,
            } => vec![*array, *index, *value],
            Stmt::If { a, b, .. } => vec![*a, *b],
            Stmt::Switch { key, .. } => vec![*key],
            Stmt::Return { value } => value.iter().copied().collect(),
            Stmt::Throw { value } => vec![*value],
        };
        ops.into_iter().filter_map(Operand::as_local).collect()
    }

    /// Visits the locals read by this statement without allocating; the
    /// hot-path twin of [`Stmt::uses`], visiting in the same order.
    pub fn for_each_use(&self, mut f: impl FnMut(LocalId)) {
        let mut op = |o: Operand| {
            if let Some(l) = o.as_local() {
                f(l);
            }
        };
        match self {
            Stmt::Identity { .. } | Stmt::Nop | Stmt::Goto { .. } => {}
            Stmt::Assign { rvalue, .. } => rvalue.for_each_operand(op),
            Stmt::Invoke(i) => {
                for &a in &i.args {
                    op(a);
                }
            }
            Stmt::StoreInstanceField { base, value, .. } => {
                op(*base);
                op(*value);
            }
            Stmt::StoreStaticField { value, .. } => op(*value),
            Stmt::StoreArrayElem {
                array,
                index,
                value,
            } => {
                op(*array);
                op(*index);
                op(*value);
            }
            Stmt::If { a, b, .. } => {
                op(*a);
                op(*b);
            }
            Stmt::Switch { key, .. } => op(*key),
            Stmt::Return { value } => {
                if let Some(v) = value {
                    op(*v);
                }
            }
            Stmt::Throw { value } => op(*value),
        }
    }

    /// Returns the call expression if this is a call (with or without a
    /// result).
    pub fn invoke_expr(&self) -> Option<&InvokeExpr> {
        match self {
            Stmt::Invoke(i) => Some(i),
            Stmt::Assign {
                rvalue: Rvalue::Invoke(i),
                ..
            } => Some(i),
            _ => None,
        }
    }

    /// Returns `true` when control never falls through to the next
    /// statement.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Stmt::Return { .. } | Stmt::Throw { .. } | Stmt::Goto { .. }
        )
    }

    /// Returns the explicit branch targets.
    pub fn branch_targets(&self) -> Vec<StmtId> {
        match self {
            Stmt::Goto { target } | Stmt::If { target, .. } => vec![*target],
            Stmt::Switch { arms, .. } => arms.iter().map(|&(_, t)| t).collect(),
            _ => vec![],
        }
    }

    /// Returns `true` if executing the statement can raise an exception.
    pub fn can_throw(&self) -> bool {
        match self {
            Stmt::Invoke(_) | Stmt::Throw { .. } => true,
            Stmt::Assign { rvalue, .. } => matches!(
                rvalue,
                Rvalue::Invoke(_)
                    | Rvalue::New { .. }
                    | Rvalue::NewArray { .. }
                    | Rvalue::Cast { .. }
                    | Rvalue::InstanceField { .. }
                    | Rvalue::ArrayElem { .. }
                    | Rvalue::ArrayLength { .. }
                    | Rvalue::BinOp {
                        op: BinOp::Div | BinOp::Rem,
                        ..
                    }
            ),
            Stmt::StoreInstanceField { .. } | Stmt::StoreArrayElem { .. } => true,
            _ => false,
        }
    }
}

/// A declared local variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDecl {
    /// Display name (`v3`, `this`, ...).
    pub name: String,
    /// Best-effort type descriptor symbol, when known.
    pub ty: Option<Symbol>,
}

/// One catch clause as a statement-range trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// First covered statement.
    pub start: StmtId,
    /// One past the last covered statement.
    pub end: StmtId,
    /// Caught exception type symbol, `None` for catch-all.
    pub exception: Option<Symbol>,
    /// Handler entry statement.
    pub handler: StmtId,
}

impl Trap {
    /// Returns `true` when `s` lies inside the covered range.
    pub fn covers(&self, s: StmtId) -> bool {
        self.start <= s && s < self.end
    }
}

/// A lifted method body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Body {
    /// Local declarations.
    pub locals: Vec<LocalDecl>,
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
    /// Exception traps, one per catch clause, in original order.
    pub traps: Vec<Trap>,
}

impl Body {
    /// Returns the statement at `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.index()]
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Returns `true` for an empty body.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Iterates `(StmtId, &Stmt)` in program order.
    pub fn iter(&self) -> impl Iterator<Item = (StmtId, &Stmt)> {
        self.stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (StmtId(i as u32), s))
    }

    /// Iterates the traps covering `s` in declaration order — the
    /// runtime's handler search order (compilers emit inner try ranges
    /// first, as the builder does). Allocation-free: CFG construction
    /// calls this for every throwing statement.
    pub fn traps_at(&self, s: StmtId) -> impl Iterator<Item = &Trap> {
        self.traps.iter().filter(move |t| t.covers(s))
    }
}

/// A lifted method.
///
/// The body is `Arc`-shared: bodies are immutable once lifted, and the
/// incremental-analysis cache clones whole `Method` records when
/// replaying unchanged classes — sharing the body makes that clone O(1)
/// instead of a deep copy of every statement.
#[derive(Debug, Clone)]
pub struct Method {
    /// Identity.
    pub key: MethodKey,
    /// Access flags carried over from the container.
    pub flags: AccessFlags,
    /// Body; `None` for abstract methods.
    pub body: Option<std::sync::Arc<Body>>,
}

/// A lifted class.
#[derive(Debug, Clone)]
pub struct Class {
    /// Class descriptor symbol.
    pub name: Symbol,
    /// Superclass descriptor symbol, when declared.
    pub superclass: Option<Symbol>,
    /// Implemented interface descriptor symbols.
    pub interfaces: Vec<Symbol>,
    /// Access flags.
    pub flags: AccessFlags,
    /// Declared fields.
    pub fields: Vec<FieldKey>,
    /// Declared methods (indices into [`Program::methods`]).
    pub methods: Vec<MethodId>,
}

/// A whole lifted program: the unit NChecker analyzes.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// Shared string interner for all names and descriptors.
    pub symbols: Interner,
    /// Classes defined in the app.
    pub classes: Vec<Class>,
    /// All methods of all classes.
    pub methods: Vec<Method>,
    class_map: HashMap<Symbol, ClassId>,
    method_map: HashMap<MethodKey, MethodId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class, indexing it by name.
    pub fn add_class(&mut self, class: Class) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.class_map.insert(class.name, id);
        self.classes.push(class);
        id
    }

    /// Adds a method, indexing it by key.
    pub fn add_method(&mut self, method: Method) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.method_map.insert(method.key, id);
        self.methods.push(method);
        id
    }

    /// Looks up a class by name symbol.
    pub fn class(&self, name: Symbol) -> Option<&Class> {
        self.class_map
            .get(&name)
            .map(|&id| &self.classes[id.0 as usize])
    }

    /// Returns the method with id `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Looks up a method id by its key.
    pub fn lookup_method(&self, key: MethodKey) -> Option<MethodId> {
        self.method_map.get(&key).copied()
    }

    /// Iterates `(MethodId, &Method)` over all methods.
    pub fn iter_methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId(i as u32), m))
    }

    /// Returns the superclass chain of `class` starting at the class itself
    /// and walking `extends` edges as far as classes defined in this program
    /// allow; the final element is the first type not defined here (e.g. a
    /// framework class) or the chain end.
    pub fn hierarchy(&self, class: Symbol) -> Vec<Symbol> {
        let mut chain = vec![class];
        let mut cur = class;
        let mut guard = 0;
        while let Some(c) = self.class(cur) {
            let Some(sup) = c.superclass else { break };
            chain.push(sup);
            cur = sup;
            guard += 1;
            if guard > 64 {
                break; // Defensive: malformed cyclic hierarchies.
            }
        }
        chain
    }

    /// Returns every interface implemented by `class` or any superclass
    /// defined in this program.
    pub fn all_interfaces(&self, class: Symbol) -> Vec<Symbol> {
        let mut out = Vec::new();
        for c in self.hierarchy(class) {
            if let Some(cls) = self.class(c) {
                out.extend(cls.interfaces.iter().copied());
            }
        }
        out
    }

    /// Renders a method key as `Lcls;.name(sig)` for diagnostics.
    pub fn display_method_key(&self, key: MethodKey) -> String {
        format!(
            "{}.{}{}",
            self.symbols.resolve(key.class),
            self.symbols.resolve(key.name),
            self.symbols.resolve(key.sig)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(p: &mut Program, s: &str) -> Symbol {
        p.symbols.intern(s)
    }

    #[test]
    fn stmt_def_use() {
        let s = Stmt::Assign {
            local: LocalId(0),
            rvalue: Rvalue::BinOp {
                op: BinOp::Add,
                a: Operand::Local(LocalId(1)),
                b: Operand::IntConst(3),
            },
        };
        assert_eq!(s.def(), Some(LocalId(0)));
        assert_eq!(s.uses(), vec![LocalId(1)]);
    }

    #[test]
    fn invoke_expr_accessible_from_both_forms() {
        let mut p = Program::new();
        let key = MethodKey {
            class: sym(&mut p, "La/B;"),
            name: sym(&mut p, "f"),
            sig: sym(&mut p, "()V"),
        };
        let inv = InvokeExpr {
            kind: InvokeKind::Virtual,
            callee: key,
            args: vec![Operand::Local(LocalId(0))],
        };
        let s1 = Stmt::Invoke(inv.clone());
        let s2 = Stmt::Assign {
            local: LocalId(1),
            rvalue: Rvalue::Invoke(inv),
        };
        assert!(s1.invoke_expr().is_some());
        assert!(s2.invoke_expr().is_some());
        assert_eq!(
            s2.invoke_expr().unwrap().receiver(),
            Some(Operand::Local(LocalId(0)))
        );
    }

    #[test]
    fn hierarchy_walks_defined_classes() {
        let mut p = Program::new();
        let a = sym(&mut p, "La/A;");
        let b = sym(&mut p, "La/B;");
        let act = sym(&mut p, "Landroid/app/Activity;");
        p.add_class(Class {
            name: b,
            superclass: Some(act),
            interfaces: vec![],
            flags: AccessFlags::PUBLIC,
            fields: vec![],
            methods: vec![],
        });
        p.add_class(Class {
            name: a,
            superclass: Some(b),
            interfaces: vec![],
            flags: AccessFlags::PUBLIC,
            fields: vec![],
            methods: vec![],
        });
        assert_eq!(p.hierarchy(a), vec![a, b, act]);
        // Framework class is opaque: chain stops there.
        assert_eq!(p.hierarchy(act), vec![act]);
    }

    #[test]
    fn traps_at_keeps_declaration_order() {
        // Inner ranges are declared first, like compilers emit them.
        let body = Body {
            locals: vec![],
            stmts: vec![Stmt::Nop, Stmt::Nop, Stmt::Nop],
            traps: vec![
                Trap {
                    start: StmtId(1),
                    end: StmtId(2),
                    exception: None,
                    handler: StmtId(2),
                },
                Trap {
                    start: StmtId(0),
                    end: StmtId(3),
                    exception: None,
                    handler: StmtId(2),
                },
            ],
        };
        let at1: Vec<&Trap> = body.traps_at(StmtId(1)).collect();
        assert_eq!(at1.len(), 2);
        assert_eq!(at1[0].start, StmtId(1), "inner (declared first) leads");
        assert_eq!(body.traps_at(StmtId(0)).count(), 1);
    }

    #[test]
    fn terminators_and_throwing() {
        assert!(Stmt::Return { value: None }.is_terminator());
        assert!(!Stmt::Nop.is_terminator());
        assert!(Stmt::Throw {
            value: Operand::Local(LocalId(0))
        }
        .can_throw());
        assert!(!Stmt::Goto { target: StmtId(0) }.can_throw());
    }
}
