//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy).
//!
//! Node space: statement ids `0..len` plus the virtual exit at index
//! `len`. Dominators are rooted at the entry statement; post-dominators at
//! the virtual exit.

use crate::body::StmtId;
use crate::cfg::Cfg;

/// An immediate-dominator tree over CFG nodes.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<u32>>,
    root: u32,
}

impl DomTree {
    /// The tree root (entry for dominators, virtual exit for
    /// post-dominators).
    pub fn root(&self) -> StmtId {
        StmtId(self.root)
    }

    /// Returns the immediate dominator of `node`, `None` for the root and
    /// for unreachable nodes.
    pub fn idom(&self, node: StmtId) -> Option<StmtId> {
        if node.0 == self.root {
            return None;
        }
        self.idom.get(node.index()).copied().flatten().map(StmtId)
    }

    /// Returns `true` when `node` is reachable from the root (and hence has
    /// dominator information).
    pub fn is_reachable(&self, node: StmtId) -> bool {
        node.0 == self.root || self.idom.get(node.index()).copied().flatten().is_some()
    }

    /// Returns `true` when `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: StmtId, b: StmtId) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Returns `true` when `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: StmtId, b: StmtId) -> bool {
        a != b && self.dominates(a, b)
    }
}

/// Computes immediate dominators of a graph given by successor lists.
fn compute_idoms(n: usize, root: usize, succs: &[Vec<usize>]) -> Vec<Option<u32>> {
    // Reverse postorder from the root.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        if *idx < succs[node].len() {
            let next = succs[node][*idx];
            *idx += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    order.reverse();

    let mut rpo_num = vec![usize::MAX; n];
    for (i, &node) in order.iter().enumerate() {
        rpo_num[node] = i;
    }

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in succs.iter().enumerate() {
        if !visited[u] {
            continue;
        }
        for &v in ss {
            preds[v].push(u);
        }
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);

    let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in order.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[node] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[node] != Some(ni) {
                    idom[node] = Some(ni);
                    changed = true;
                }
            }
        }
    }

    idom.iter()
        .enumerate()
        .map(|(i, &d)| if i == root { None } else { d.map(|x| x as u32) })
        .collect()
}

/// Computes the dominator tree of `cfg`, rooted at the entry statement.
pub fn dominators(cfg: &Cfg) -> DomTree {
    let n = cfg.len + 1; // Include the virtual exit.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, slot) in succs.iter_mut().enumerate().take(cfg.len) {
        slot.extend(cfg.succ_iter(StmtId(i as u32)).map(|t| t.index()));
        // A target on both the normal and exceptional lists appears twice;
        // the CHK fixpoint tolerates duplicate edges, so no dedup needed.
    }
    let idom = if cfg.len == 0 {
        vec![None; n]
    } else {
        compute_idoms(n, 0, &succs)
    };
    DomTree { idom, root: 0 }
}

/// Computes the post-dominator tree of `cfg`, rooted at the virtual exit.
pub fn post_dominators(cfg: &Cfg) -> DomTree {
    let n = cfg.len + 1;
    // Reverse graph: successors of v are the predecessors of v.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ps) in cfg.preds.iter().enumerate() {
        succs[v] = ps.iter().map(|p| p.index()).collect();
    }
    let root = cfg.len;
    let idom = compute_idoms(n, root, &succs);
    DomTree {
        idom,
        root: root as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Body, Operand, Stmt};
    use nck_dex::CondOp;

    fn diamond() -> Body {
        // 0: if -> 2
        // 1: nop (then)
        // 2: nop (join / else target)  -- simplified diamond
        // 3: return
        Body {
            locals: vec![],
            stmts: vec![
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(2),
                },
                Stmt::Nop,
                Stmt::Nop,
                Stmt::Return { value: None },
            ],
            traps: vec![],
        }
    }

    #[test]
    fn dominators_of_diamond() {
        let b = diamond();
        let cfg = Cfg::build(&b);
        let dom = dominators(&cfg);
        assert!(dom.dominates(StmtId(0), StmtId(3)));
        assert!(dom.dominates(StmtId(0), StmtId(1)));
        assert!(!dom.dominates(StmtId(1), StmtId(2)));
        assert_eq!(dom.idom(StmtId(2)), Some(StmtId(0)));
        assert_eq!(dom.idom(StmtId(0)), None);
    }

    #[test]
    fn post_dominators_of_diamond() {
        let b = diamond();
        let cfg = Cfg::build(&b);
        let pdom = post_dominators(&cfg);
        // The join (2) post-dominates both branch arms and the branch.
        assert!(pdom.dominates(StmtId(2), StmtId(0)));
        assert!(pdom.dominates(StmtId(2), StmtId(1)));
        assert!(pdom.dominates(StmtId(3), StmtId(0)));
        // The then-arm does not post-dominate the branch.
        assert!(!pdom.dominates(StmtId(1), StmtId(0)));
    }

    #[test]
    fn unreachable_nodes_have_no_dominators() {
        let b = Body {
            locals: vec![],
            stmts: vec![
                Stmt::Return { value: None },
                Stmt::Nop, // Unreachable.
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&b);
        let dom = dominators(&cfg);
        assert!(!dom.is_reachable(StmtId(1)));
        assert!(!dom.dominates(StmtId(0), StmtId(1)));
    }

    #[test]
    fn infinite_loop_nodes_lack_postdominators() {
        let b = Body {
            locals: vec![],
            stmts: vec![Stmt::Goto { target: StmtId(0) }],
            traps: vec![],
        };
        let cfg = Cfg::build(&b);
        let pdom = post_dominators(&cfg);
        assert!(!pdom.is_reachable(StmtId(0)));
    }

    #[test]
    fn loop_header_dominates_body() {
        // 0: nop (header)
        // 1: if -> 3 (exit)
        // 2: goto 0 (latch)
        // 3: return
        let b = Body {
            locals: vec![],
            stmts: vec![
                Stmt::Nop,
                Stmt::If {
                    cond: CondOp::Eq,
                    a: Operand::IntConst(0),
                    b: Operand::IntConst(0),
                    target: StmtId(3),
                },
                Stmt::Goto { target: StmtId(0) },
                Stmt::Return { value: None },
            ],
            traps: vec![],
        };
        let cfg = Cfg::build(&b);
        let dom = dominators(&cfg);
        assert!(dom.dominates(StmtId(0), StmtId(2)));
        assert!(dom.dominates(StmtId(1), StmtId(2)));
        assert!(!dom.dominates(StmtId(2), StmtId(1)));
    }
}
