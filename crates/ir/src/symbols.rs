//! String interning for class names, method names, and descriptors.
//!
//! Checker rules compare names millions of times across a corpus; interning
//! turns those comparisons into `u32` equality.

use std::collections::HashMap;

/// An interned string handle, valid for the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned string without interning.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics when `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// The interned strings from index `start` on, in interning order.
    ///
    /// This is the replay substrate for incremental lifting: re-interning
    /// a recorded suffix into an interner holding the same prefix
    /// reproduces the exact symbol assignment of the original run.
    pub fn strings_from(&self, start: usize) -> &[String] {
        &self.strings[start.min(self.strings.len())..]
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("bar").is_none());
        let s = i.intern("bar");
        assert_eq!(i.get("bar"), Some(s));
    }
}
