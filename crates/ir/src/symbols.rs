//! String interning for class names, method names, and descriptors.
//!
//! Checker rules compare names millions of times across a corpus; interning
//! turns those comparisons into `u32` equality.

use std::collections::HashMap;

/// An interned string handle, valid for the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned string without interning.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics when `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// The interned strings from index `start` on, in interning order.
    ///
    /// This is the replay substrate for incremental lifting: re-interning
    /// a recorded suffix into an interner holding the same prefix
    /// reproduces the exact symbol assignment of the original run.
    pub fn strings_from(&self, start: usize) -> &[String] {
        &self.strings[start.min(self.strings.len())..]
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A generic dense interner: maps arbitrary fact atoms (field keys,
/// def sites, …) to contiguous `u32` ids so dataflow lattices can be
/// laid out on bitsets instead of ordered sets.
///
/// Ids are assigned in first-intern order, which makes the assignment
/// deterministic for any deterministic interning sequence.
#[derive(Debug, Default, Clone)]
pub struct DenseInterner<T> {
    items: Vec<T>,
    map: HashMap<T, u32>,
}

impl<T: Clone + Eq + std::hash::Hash> DenseInterner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            map: HashMap::new(),
        }
    }

    /// Interns `item`, returning its dense id.
    pub fn intern(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.map.get(item) {
            return id;
        }
        let id = self.items.len() as u32;
        self.items.push(item.clone());
        self.map.insert(item.clone(), id);
        id
    }

    /// Looks up a previously interned item without interning.
    pub fn get(&self, item: &T) -> Option<u32> {
        self.map.get(item).copied()
    }

    /// Resolves a dense id back to the item.
    ///
    /// # Panics
    ///
    /// Panics when `id` did not come from this interner.
    pub fn resolve(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// All interned items, indexed by dense id.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of distinct interned items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("bar").is_none());
        let s = i.intern("bar");
        assert_eq!(i.get("bar"), Some(s));
    }

    #[test]
    fn dense_interner_assigns_contiguous_ids() {
        let mut d: DenseInterner<(u32, u32)> = DenseInterner::new();
        let a = d.intern(&(7, 9));
        let b = d.intern(&(3, 1));
        let a2 = d.intern(&(7, 9));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(d.resolve(b), &(3, 1));
        assert_eq!(d.get(&(3, 1)), Some(1));
        assert_eq!(d.get(&(0, 0)), None);
        assert_eq!(d.items(), &[(7, 9), (3, 1)]);
        assert_eq!(d.len(), 2);
    }
}
