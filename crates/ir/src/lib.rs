//! `nck-ir`: a Jimple-like typed 3-address IR for ADX binaries.
//!
//! This crate plays the role of Soot's Jimple plus Dexpler in the paper's
//! pipeline: [`lift::lift_file`] turns a parsed [`nck_dex::AdxFile`] into a
//! [`Program`] of 3-address [`Stmt`]s, over which the crate provides
//! statement-level CFGs ([`cfg::Cfg`]), dominator and post-dominator trees
//! ([`dom`]), natural loops ([`loops`]), and a pretty printer ([`pretty`]).
//!
//! # Examples
//!
//! ```
//! use nck_dex::builder::AdxBuilder;
//! use nck_dex::AccessFlags;
//! use nck_ir::{cfg::Cfg, dom, lift::lift_file, loops};
//!
//! let mut b = AdxBuilder::new();
//! b.class("Lapp/Main;", |c| {
//!     c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
//! });
//! let program = lift_file(&b.finish().unwrap()).unwrap();
//! let body = program.methods[0].body.as_ref().unwrap();
//! let cfg = Cfg::build(body);
//! let doms = dom::dominators(&cfg);
//! assert!(loops::natural_loops(&cfg, &doms).is_empty());
//! ```

pub mod body;
pub mod cfg;
pub mod dom;
pub mod lift;
pub mod loops;
pub mod pretty;
pub mod symbols;
pub mod types;

pub use body::{
    Body, Class, ClassId, FieldKey, IdentityKind, InvokeExpr, LocalDecl, LocalId, Method, MethodId,
    MethodKey, Operand, Program, Rvalue, Stmt, StmtId, Trap,
};
pub use lift::{
    lift_file, lift_file_lenient, lift_file_obs, lift_file_skeleton, relift_methods, LiftError,
    MethodOrigins, MethodSkip,
};
pub use symbols::{Interner, Symbol};
pub use types::Type;
