//! Lifting ADX bytecode into the IR (the Dexpler role).
//!
//! Registers become locals (`v0`..`vN`), parameters get identity
//! statements, `invoke`/`move-result` pairs fuse into assigning calls, and
//! branch targets are remapped from instruction indices to statement ids.

use crate::body::{
    Body, Class, FieldKey, IdentityKind, InvokeExpr, LocalDecl, LocalId, Method, MethodId,
    MethodKey, Operand, Program, Rvalue, Stmt, StmtId, Trap,
};
use nck_dex::{AccessFlags, AdxFile, CodeItem, Insn, Reg};
use std::sync::Arc;

/// Errors produced during lifting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// A pool reference inside an instruction was unresolvable.
    BadPoolRef {
        /// Rendered method identity.
        method: String,
        /// Instruction index.
        pc: u32,
        /// Which pool failed.
        what: &'static str,
    },
    /// A branch target fell outside the method.
    BadTarget {
        /// Rendered method identity.
        method: String,
        /// Instruction index of the branch.
        pc: u32,
        /// The bad target.
        target: u32,
    },
    /// The method's declared signature disagrees with its frame.
    BadFrame {
        /// Rendered method identity.
        method: String,
    },
    /// An instruction referenced a register outside the declared frame.
    ///
    /// Verified binaries never trip this, but the lifter must stay
    /// memory-safe on *unverified* ones: downstream consumers index
    /// `Body::locals` by register number, so an out-of-frame register
    /// must be rejected here rather than panicking later.
    BadRegister {
        /// Rendered method identity.
        method: String,
        /// Instruction index.
        pc: u32,
        /// The out-of-frame register.
        reg: u16,
        /// The declared frame size.
        frame: u16,
    },
}

impl std::fmt::Display for LiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiftError::BadPoolRef { method, pc, what } => {
                write!(f, "{method} @{pc}: unresolvable {what} reference")
            }
            LiftError::BadTarget { method, pc, target } => {
                write!(f, "{method} @{pc}: branch target {target} out of range")
            }
            LiftError::BadFrame { method } => write!(f, "{method}: bad parameter frame"),
            LiftError::BadRegister {
                method,
                pc,
                reg,
                frame,
            } => write!(
                f,
                "{method} @{pc}: register v{reg} outside the {frame}-register frame"
            ),
        }
    }
}

impl std::error::Error for LiftError {}

/// Convenience alias for lifting results.
pub type Result<T> = std::result::Result<T, LiftError>;

struct Lifter<'a> {
    file: &'a AdxFile,
    program: Program,
    /// When set, method bodies lift as *skeletons*: statement numbering
    /// and the call/field/allocation surface are preserved exactly, but
    /// every other instruction becomes a `Nop`. See
    /// [`Lifter::lift_code_skeleton`].
    skeleton: bool,
}

impl<'a> Lifter<'a> {
    fn local(reg: Reg) -> LocalId {
        LocalId(u32::from(reg.0))
    }

    fn op(reg: Reg) -> Operand {
        Operand::Local(Self::local(reg))
    }

    fn method_key(&mut self, idx: nck_dex::MethodIdx) -> Option<MethodKey> {
        let m = self.file.pools.get_method(idx)?;
        let class = self.file.pools.get_type(m.class)?;
        let name = self.file.pools.get_string(m.name)?;
        let sig = self.file.pools.display_proto(m.proto);
        Some(MethodKey {
            class: self.program.symbols.intern(class),
            name: self.program.symbols.intern(name),
            sig: self.program.symbols.intern(&sig),
        })
    }

    fn field_key(&mut self, idx: nck_dex::FieldIdx) -> Option<FieldKey> {
        let f = self.file.pools.get_field(idx)?;
        let class = self.file.pools.get_type(f.class)?;
        let name = self.file.pools.get_string(f.name)?;
        let ty = self.file.pools.get_type(f.ty)?;
        Some(FieldKey {
            class: self.program.symbols.intern(class),
            name: self.program.symbols.intern(name),
            ty: self.program.symbols.intern(ty),
        })
    }

    fn type_sym(&mut self, idx: nck_dex::TypeIdx) -> Option<crate::symbols::Symbol> {
        let t = self.file.pools.get_type(idx)?;
        Some(self.program.symbols.intern(t))
    }

    fn lift_code(
        &mut self,
        method_name: &str,
        code: &CodeItem,
        is_static: bool,
        param_descriptors: &[String],
    ) -> Result<Body> {
        let bad = |pc: u32, what: &'static str| LiftError::BadPoolRef {
            method: method_name.to_owned(),
            pc,
            what,
        };

        // Reject out-of-frame registers up front: every statement emitted
        // below carries `LocalId(reg)` and downstream consumers (pretty
        // printer, interpreter, dataflow) index `locals` by it.
        for (i, insn) in code.insns.iter().enumerate() {
            let oob = insn
                .def()
                .into_iter()
                .chain(insn.uses())
                .find(|r| r.0 >= code.registers);
            if let Some(r) = oob {
                return Err(LiftError::BadRegister {
                    method: method_name.to_owned(),
                    pc: i as u32,
                    reg: r.0,
                    frame: code.registers,
                });
            }
        }

        let mut locals: Vec<LocalDecl> = (0..code.registers)
            .map(|r| LocalDecl {
                name: format!("v{r}"),
                ty: None,
            })
            .collect();

        let receiver = usize::from(!is_static);
        if usize::from(code.ins) != param_descriptors.len() + receiver {
            return Err(LiftError::BadFrame {
                method: method_name.to_owned(),
            });
        }

        let mut stmts: Vec<Stmt> = Vec::with_capacity(code.insns.len() + usize::from(code.ins));
        // Identity preamble: bind parameter registers.
        for i in 0..code.ins {
            let reg = code.param_reg(i).ok_or_else(|| LiftError::BadFrame {
                method: method_name.to_owned(),
            })?;
            let kind = if !is_static && i == 0 {
                locals[reg.0 as usize].name = "this".to_owned();
                IdentityKind::This
            } else {
                IdentityKind::Param(i - receiver as u16)
            };
            if let IdentityKind::Param(p) = kind {
                let desc = &param_descriptors[p as usize];
                let sym = self.program.symbols.intern(desc);
                locals[reg.0 as usize].ty = Some(sym);
            }
            stmts.push(Stmt::Identity {
                local: Self::local(reg),
                kind,
            });
        }

        // Fusion map: instruction index -> statement index.
        let mut map: Vec<u32> = Vec::with_capacity(code.insns.len());
        let mut i = 0usize;
        while i < code.insns.len() {
            let pc = i as u32;
            let stmt_idx = stmts.len() as u32;
            match &code.insns[i] {
                Insn::Invoke { kind, method, args } => {
                    let callee = self.method_key(*method).ok_or_else(|| bad(pc, "method"))?;
                    let expr = InvokeExpr {
                        kind: *kind,
                        callee,
                        args: args.iter().map(|&r| Self::op(r)).collect(),
                    };
                    // Fuse a following move-result into an assigning call.
                    if let Some(Insn::MoveResult { dst }) = code.insns.get(i + 1) {
                        stmts.push(Stmt::Assign {
                            local: Self::local(*dst),
                            rvalue: Rvalue::Invoke(expr),
                        });
                        map.push(stmt_idx);
                        map.push(stmt_idx);
                        i += 2;
                        continue;
                    }
                    stmts.push(Stmt::Invoke(expr));
                }
                Insn::MoveResult { dst } => {
                    // Unfused move-result (verifier rejects these, but the
                    // lifter stays total): treat as an opaque definition.
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::Use(Operand::Null),
                    });
                }
                Insn::Nop => stmts.push(Stmt::Nop),
                Insn::Move { dst, src } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::Use(Self::op(*src)),
                }),
                Insn::ConstInt { dst, value } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::Use(Operand::IntConst(*value)),
                }),
                Insn::ConstString { dst, idx } => {
                    let s = self
                        .file
                        .pools
                        .get_string(*idx)
                        .ok_or_else(|| bad(pc, "string"))?
                        .to_owned();
                    let sym = self.program.symbols.intern(&s);
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::Use(Operand::StrConst(sym)),
                    });
                }
                Insn::ConstNull { dst } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::Use(Operand::Null),
                }),
                Insn::ConstClass { dst, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::Use(Operand::ClassConst(sym)),
                    });
                }
                Insn::NewInstance { dst, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    locals[dst.0 as usize].ty = Some(sym);
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::New { ty: sym },
                    });
                }
                Insn::NewArray { dst, len, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::NewArray {
                            ty: sym,
                            len: Self::op(*len),
                        },
                    });
                }
                Insn::CheckCast { reg, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*reg),
                        rvalue: Rvalue::Cast {
                            ty: sym,
                            op: Self::op(*reg),
                        },
                    });
                }
                Insn::InstanceOf { dst, src, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::InstanceOf {
                            ty: sym,
                            op: Self::op(*src),
                        },
                    });
                }
                Insn::ArrayLength { dst, arr } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::ArrayLength {
                        array: Self::op(*arr),
                    },
                }),
                Insn::Aget { dst, arr, idx } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::ArrayElem {
                        array: Self::op(*arr),
                        index: Self::op(*idx),
                    },
                }),
                Insn::Aput { src, arr, idx } => stmts.push(Stmt::StoreArrayElem {
                    array: Self::op(*arr),
                    index: Self::op(*idx),
                    value: Self::op(*src),
                }),
                Insn::Iget { dst, obj, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::InstanceField {
                            base: Self::op(*obj),
                            field,
                        },
                    });
                }
                Insn::Iput { src, obj, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::StoreInstanceField {
                        base: Self::op(*obj),
                        field,
                        value: Self::op(*src),
                    });
                }
                Insn::Sget { dst, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::StaticField { field },
                    });
                }
                Insn::Sput { src, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::StoreStaticField {
                        field,
                        value: Self::op(*src),
                    });
                }
                Insn::MoveException { dst } => stmts.push(Stmt::Identity {
                    local: Self::local(*dst),
                    kind: IdentityKind::CaughtException,
                }),
                Insn::Return { src } => stmts.push(Stmt::Return {
                    value: src.map(Self::op),
                }),
                Insn::Throw { src } => stmts.push(Stmt::Throw {
                    value: Self::op(*src),
                }),
                Insn::Goto { target } => stmts.push(Stmt::Goto {
                    target: StmtId(*target),
                }),
                Insn::If { cond, a, b, target } => stmts.push(Stmt::If {
                    cond: *cond,
                    a: Self::op(*a),
                    b: Self::op(*b),
                    target: StmtId(*target),
                }),
                Insn::IfZ { cond, a, target } => stmts.push(Stmt::If {
                    cond: *cond,
                    a: Self::op(*a),
                    b: Operand::IntConst(0),
                    target: StmtId(*target),
                }),
                Insn::BinOp { op, dst, a, b } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::BinOp {
                        op: *op,
                        a: Self::op(*a),
                        b: Self::op(*b),
                    },
                }),
                Insn::BinOpLit { op, dst, a, lit } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::BinOp {
                        op: *op,
                        a: Self::op(*a),
                        b: Operand::IntConst(i64::from(*lit)),
                    },
                }),
                Insn::UnOp { op, dst, src } => stmts.push(Stmt::Assign {
                    local: Self::local(*dst),
                    rvalue: Rvalue::UnOp {
                        op: *op,
                        a: Self::op(*src),
                    },
                }),
                Insn::Switch { src, targets } => stmts.push(Stmt::Switch {
                    key: Self::op(*src),
                    arms: targets.iter().map(|&(k, t)| (k, StmtId(t))).collect(),
                }),
            }
            map.push(stmt_idx);
            i += 1;
        }

        // Remap branch targets from instruction indices to statement ids.
        let remap = |method: &str, pc: u32, target: StmtId| -> Result<StmtId> {
            map.get(target.index())
                .map(|&s| StmtId(s))
                .ok_or(LiftError::BadTarget {
                    method: method.to_owned(),
                    pc,
                    target: target.0,
                })
        };
        for (idx, stmt) in stmts.iter_mut().enumerate() {
            let pc = idx as u32;
            match stmt {
                Stmt::Goto { target } => *target = remap(method_name, pc, *target)?,
                Stmt::If { target, .. } => *target = remap(method_name, pc, *target)?,
                Stmt::Switch { arms, .. } => {
                    let mut new_arms = Vec::with_capacity(arms.len());
                    for &(k, t) in arms.iter() {
                        new_arms.push((k, remap(method_name, pc, t)?));
                    }
                    *arms = new_arms;
                }
                _ => {}
            }
        }

        // Lift traps: one per catch clause.
        let end_map = |insn_idx: u32| -> StmtId {
            if insn_idx as usize >= map.len() {
                StmtId(stmts.len() as u32)
            } else {
                StmtId(map[insn_idx as usize])
            }
        };
        let mut traps = Vec::new();
        for t in &code.tries {
            let start = end_map(t.start);
            // NOTE: a try range ending exactly between a fused invoke and
            // its move-result collapses onto the call statement; the fused
            // statement then counts as covered, which errs on the side of
            // more exceptional edges (sound for the checkers).
            let end = end_map(t.end);
            for h in &t.handlers {
                let exception = match h.exception {
                    Some(ty) => Some(
                        self.type_sym(ty)
                            .ok_or_else(|| bad(t.start, "exception type"))?,
                    ),
                    None => None,
                };
                traps.push(Trap {
                    start,
                    end,
                    exception,
                    handler: end_map(h.target),
                });
            }
        }

        Ok(Body {
            locals,
            stmts,
            traps,
        })
    }

    /// Lifts a method body as a *skeleton*: a stub that preserves exactly
    /// the facts the call graph, the summary engine, and the relevance
    /// slice read, at a fraction of the cost of a full lift.
    ///
    /// Preserved, with statement numbering identical to [`lift_code`]:
    /// the identity preamble (including the `this` rename and parameter
    /// type hints), every invoke (with `move-result` fusion), field loads
    /// and stores, `new-instance` (including its local type hint — the
    /// only other source of type hints in a full lift, so implicit
    /// call-graph edges resolve identically), and returns. Everything
    /// else — constants, arithmetic, branches, throws, array ops —
    /// becomes a [`Stmt::Nop`]; traps are dropped. Methods the relevance
    /// slice selects are then re-lifted in full by [`relift_methods`], so
    /// stub bodies are never consulted for anything beyond their call and
    /// field surface.
    ///
    /// Error behaviour matches the full lift for the preserved
    /// instructions (dangling method/field/type refs stay typed errors);
    /// a dangling reference inside a `Nop`ped instruction is *not*
    /// detected here, which only matters for bundles that already failed
    /// structural verification — those methods are policy-skipped before
    /// lifting in both modes.
    fn lift_code_skeleton(
        &mut self,
        method_name: &str,
        code: &CodeItem,
        is_static: bool,
        param_descriptors: &[String],
    ) -> Result<Body> {
        let bad = |pc: u32, what: &'static str| LiftError::BadPoolRef {
            method: method_name.to_owned(),
            pc,
            what,
        };

        // Same out-of-frame rejection as the full lift: stubs are indexed
        // by register number too.
        for (i, insn) in code.insns.iter().enumerate() {
            let oob = insn
                .def()
                .into_iter()
                .chain(insn.uses())
                .find(|r| r.0 >= code.registers);
            if let Some(r) = oob {
                return Err(LiftError::BadRegister {
                    method: method_name.to_owned(),
                    pc: i as u32,
                    reg: r.0,
                    frame: code.registers,
                });
            }
        }

        let mut locals: Vec<LocalDecl> = (0..code.registers)
            .map(|r| LocalDecl {
                name: format!("v{r}"),
                ty: None,
            })
            .collect();

        let receiver = usize::from(!is_static);
        if usize::from(code.ins) != param_descriptors.len() + receiver {
            return Err(LiftError::BadFrame {
                method: method_name.to_owned(),
            });
        }

        let mut stmts: Vec<Stmt> = Vec::with_capacity(code.insns.len() + usize::from(code.ins));
        for i in 0..code.ins {
            let reg = code.param_reg(i).ok_or_else(|| LiftError::BadFrame {
                method: method_name.to_owned(),
            })?;
            let kind = if !is_static && i == 0 {
                locals[reg.0 as usize].name = "this".to_owned();
                IdentityKind::This
            } else {
                IdentityKind::Param(i - receiver as u16)
            };
            if let IdentityKind::Param(p) = kind {
                let desc = &param_descriptors[p as usize];
                let sym = self.program.symbols.intern(desc);
                locals[reg.0 as usize].ty = Some(sym);
            }
            stmts.push(Stmt::Identity {
                local: Self::local(reg),
                kind,
            });
        }

        let mut i = 0usize;
        while i < code.insns.len() {
            let pc = i as u32;
            match &code.insns[i] {
                Insn::Invoke { kind, method, args } => {
                    let callee = self.method_key(*method).ok_or_else(|| bad(pc, "method"))?;
                    let expr = InvokeExpr {
                        kind: *kind,
                        callee,
                        args: args.iter().map(|&r| Self::op(r)).collect(),
                    };
                    // Fusion mirrors the full lift so every later
                    // statement lands on the same index.
                    if let Some(Insn::MoveResult { dst }) = code.insns.get(i + 1) {
                        stmts.push(Stmt::Assign {
                            local: Self::local(*dst),
                            rvalue: Rvalue::Invoke(expr),
                        });
                        i += 2;
                        continue;
                    }
                    stmts.push(Stmt::Invoke(expr));
                }
                Insn::NewInstance { dst, ty } => {
                    let sym = self.type_sym(*ty).ok_or_else(|| bad(pc, "type"))?;
                    locals[dst.0 as usize].ty = Some(sym);
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::New { ty: sym },
                    });
                }
                Insn::Iget { dst, obj, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::InstanceField {
                            base: Self::op(*obj),
                            field,
                        },
                    });
                }
                Insn::Iput { src, obj, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::StoreInstanceField {
                        base: Self::op(*obj),
                        field,
                        value: Self::op(*src),
                    });
                }
                Insn::Sget { dst, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::Assign {
                        local: Self::local(*dst),
                        rvalue: Rvalue::StaticField { field },
                    });
                }
                Insn::Sput { src, field } => {
                    let field = self.field_key(*field).ok_or_else(|| bad(pc, "field"))?;
                    stmts.push(Stmt::StoreStaticField {
                        field,
                        value: Self::op(*src),
                    });
                }
                Insn::Return { src } => stmts.push(Stmt::Return {
                    value: src.map(Self::op),
                }),
                _ => stmts.push(Stmt::Nop),
            }
            i += 1;
        }

        Ok(Body {
            locals,
            stmts,
            traps: Vec::new(),
        })
    }
}

/// Record of one method whose body was dropped during lenient lifting.
///
/// The method still exists in the lifted [`Program`] (bodiless, so call
/// graph edges into it resolve) unless even its identity was
/// unrecoverable; only its behaviour is unknown to the analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSkip {
    /// Rendered `class.name(sig)` identity.
    pub method: String,
    /// Why the body was dropped.
    pub reason: String,
}

/// Skip policy for [`lift_file_lenient`]: maps a rendered method identity
/// to `Some(reason)` when its body must not be lifted (e.g. it failed
/// structural verification).
pub type SkipPolicy<'p> = &'p dyn Fn(&str) -> Option<String>;

impl<'a> Lifter<'a> {
    /// Lifts one class definition: interns its names, lifts every method
    /// body, and returns the class record (with `methods` left empty —
    /// the caller assigns ids via [`Program::add_method`]) plus the
    /// lifted methods in declaration order. The caller-visible effect on
    /// the program is confined to the interner, which makes the
    /// per-class intern delta recordable and replayable.
    fn lift_class(
        &mut self,
        class: &nck_dex::ClassDef,
        lenient: Option<SkipPolicy<'_>>,
        skips: &mut Vec<MethodSkip>,
    ) -> Result<(Class, Vec<Method>)> {
        let file = self.file;
        let name_str = file.pools.get_type(class.ty).unwrap_or("<bad>").to_owned();
        let name = self.program.symbols.intern(&name_str);
        let superclass = class
            .superclass
            .and_then(|s| file.pools.get_type(s))
            .map(|s| s.to_owned())
            .map(|s| self.program.symbols.intern(&s));
        let interfaces = class
            .interfaces
            .iter()
            .filter_map(|&i| file.pools.get_type(i))
            .map(|s| s.to_owned())
            .collect::<Vec<_>>()
            .iter()
            .map(|s| self.program.symbols.intern(s))
            .collect();
        let fields = class
            .fields
            .iter()
            .filter_map(|f| self.field_key(f.field))
            .collect();

        let mut methods = Vec::new();
        for m in &class.methods {
            let display = file.pools.display_method(m.method);
            let key = match self.method_key(m.method) {
                Some(key) => key,
                None => {
                    let err = LiftError::BadPoolRef {
                        method: display.clone(),
                        pc: 0,
                        what: "method definition",
                    };
                    if lenient.is_some() {
                        // Without a resolvable identity the method cannot
                        // even be declared; drop it entirely.
                        skips.push(MethodSkip {
                            method: display,
                            reason: err.to_string(),
                        });
                        continue;
                    }
                    return Err(err);
                }
            };
            let policy_skip = lenient.and_then(|skip| skip(&display));
            let body = if let Some(reason) = policy_skip {
                skips.push(MethodSkip {
                    method: display.clone(),
                    reason,
                });
                None
            } else {
                match &m.code {
                    Some(code) => {
                        let is_static = m.flags.contains(AccessFlags::STATIC);
                        let sig_str = self.program.symbols.resolve(key.sig).to_owned();
                        let lifted = nck_dex::parse_signature(&sig_str)
                            .map_err(|_| LiftError::BadFrame {
                                method: display.clone(),
                            })
                            .and_then(|(params, _)| {
                                if self.skeleton {
                                    self.lift_code_skeleton(&display, code, is_static, &params)
                                } else {
                                    self.lift_code(&display, code, is_static, &params)
                                }
                            });
                        match lifted {
                            Ok(body) => Some(body),
                            Err(err) if lenient.is_some() => {
                                skips.push(MethodSkip {
                                    method: display.clone(),
                                    reason: err.to_string(),
                                });
                                None
                            }
                            Err(err) => return Err(err),
                        }
                    }
                    None => None,
                }
            };
            methods.push(Method {
                key,
                flags: m.flags,
                body: body.map(Arc::new),
            });
        }

        Ok((
            Class {
                name,
                superclass,
                interfaces,
                flags: class.flags,
                fields,
                methods: Vec::new(),
            },
            methods,
        ))
    }
}

/// Registers a lifted class: assigns method ids and records the class.
fn register_class(program: &mut Program, mut class: Class, methods: Vec<Method>) -> Vec<MethodId> {
    let ids: Vec<MethodId> = methods.into_iter().map(|m| program.add_method(m)).collect();
    class.methods = ids.clone();
    program.add_class(class);
    ids
}

fn lift_file_impl(
    file: &AdxFile,
    lenient: Option<SkipPolicy<'_>>,
) -> Result<(Program, Vec<MethodSkip>)> {
    let mut lifter = Lifter {
        file,
        program: Program::new(),
        skeleton: false,
    };
    let mut skips = Vec::new();

    for class in &file.classes {
        let (c, methods) = lifter.lift_class(class, lenient, &mut skips)?;
        register_class(&mut lifter.program, c, methods);
    }

    Ok((lifter.program, skips))
}

/// Replay data for one lifted class: the interner delta plus the lifted
/// records, sufficient to reproduce the cold lift of this class *given
/// an identical program state before it* — which holds exactly when
/// every earlier class matched its fingerprint too, hence the prefix
/// rule in [`lift_file_seeded`].
#[derive(Debug, Clone)]
pub struct ClassSeed {
    /// Canonical content fingerprint of the source class
    /// ([`nck_dex::class_fingerprints`]).
    pub fingerprint: u64,
    /// Strings first interned while lifting this class, in order.
    new_strings: Vec<String>,
    /// The lifted class record (method ids as assigned by the run that
    /// recorded it — replay reproduces them).
    class: Class,
    /// The lifted methods, in declaration order.
    methods: Vec<Method>,
}

/// Replay data for a whole file, one entry per class in file order.
///
/// Entries are `Arc`-shared with the seed of the run that recorded them:
/// replaying a class must not deep-copy its method bodies a second time
/// just to hand the next run a seed.
#[derive(Debug, Clone, Default)]
pub struct LiftSeed {
    /// Per-class records.
    pub classes: Vec<Arc<ClassSeed>>,
}

impl LiftSeed {
    /// Length of the longest prefix of `fingerprints` this seed can
    /// replay.
    pub fn common_prefix(&self, fingerprints: &[u64]) -> usize {
        self.classes
            .iter()
            .zip(fingerprints)
            .take_while(|(c, &fp)| c.fingerprint == fp)
            .count()
    }
}

/// A seeded lift: the program plus everything the next run needs.
#[derive(Debug)]
pub struct SeededLift {
    /// The lifted program, byte-identical to what [`lift_file`] returns.
    pub program: Program,
    /// Replay data for the next run over an updated file.
    pub seed: LiftSeed,
    /// How many leading classes were replayed from the seed.
    pub reused_classes: usize,
    /// Method ids of every replayed (unchanged) method. Their bodies are
    /// clones of the previous run's, so per-body artifacts (CFGs,
    /// dataflow, summaries) keyed by these ids remain valid.
    pub reused_methods: Vec<MethodId>,
}

/// Lifts `file`, replaying the longest unchanged class prefix from
/// `seed` and lifting the rest cold.
///
/// `fingerprints` are the canonical per-class fingerprints of `file`
/// (computed by the caller, who also needs them for verify reuse). The
/// prefix rule is what makes replay sound without any symbol remapping:
/// interning is first-encounter order, so a class's lifted symbols are a
/// pure function of the resolved file content *up to and including* that
/// class. Equal fingerprints for every class before `i` therefore imply
/// the interner, method ids, and class ids reach class `i` in exactly
/// the state of the recording run. The first fingerprint mismatch ends
/// replay; everything after lifts cold (and is re-recorded).
pub fn lift_file_seeded(
    file: &AdxFile,
    fingerprints: &[u64],
    seed: Option<&LiftSeed>,
) -> Result<SeededLift> {
    assert_eq!(
        fingerprints.len(),
        file.classes.len(),
        "one fingerprint per class"
    );
    let prefix = seed.map_or(0, |s| s.common_prefix(fingerprints));

    let mut lifter = Lifter {
        file,
        program: Program::new(),
        skeleton: false,
    };
    let mut out = LiftSeed::default();
    let mut reused_methods = Vec::new();

    for (i, class) in file.classes.iter().enumerate() {
        if i < prefix {
            let cs = &seed.expect("prefix implies seed").classes[i];
            for s in &cs.new_strings {
                lifter.program.symbols.intern(s);
            }
            let ids = register_class(&mut lifter.program, cs.class.clone(), cs.methods.clone());
            debug_assert_eq!(ids, cs.class.methods, "replay reproduces method ids");
            reused_methods.extend(ids);
            out.classes.push(Arc::clone(cs));
            continue;
        }
        let mark = lifter.program.symbols.len();
        let mut skips = Vec::new();
        let (c, methods) = lifter.lift_class(class, None, &mut skips)?;
        let new_strings = lifter.program.symbols.strings_from(mark).to_vec();
        let methods_copy = methods.clone();
        let ids = register_class(&mut lifter.program, c, methods);
        let mut class_rec = lifter.program.classes.last().expect("just added").clone();
        class_rec.methods = ids;
        out.classes.push(Arc::new(ClassSeed {
            fingerprint: fingerprints[i],
            new_strings,
            class: class_rec,
            methods: methods_copy,
        }));
    }

    Ok(SeededLift {
        program: lifter.program,
        seed: out,
        reused_classes: prefix,
        reused_methods,
    })
}

/// Lifts a whole ADX file into an IR [`Program`], failing on the first
/// unliftable method.
pub fn lift_file(file: &AdxFile) -> Result<Program> {
    lift_file_impl(file, None).map(|(p, _)| p)
}

/// Lifts a whole ADX file, degrading per-method instead of failing.
///
/// Methods for which `skip` returns a reason (the caller's structural
/// verification verdicts) and methods whose bodies fail to lift are kept
/// *bodiless* and recorded in the returned skip list; every other method
/// lifts normally. This function never fails: the worst adversarial
/// input yields an empty program plus a skip per method.
pub fn lift_file_lenient(file: &AdxFile, skip: SkipPolicy<'_>) -> (Program, Vec<MethodSkip>) {
    lift_file_impl(file, Some(skip)).expect("lenient lifting is total")
}

/// Method origins for a skeleton lift: `origins[id.0]` is the
/// `(class index, method index within the class)` of the source
/// definition behind [`MethodId`] `id`.
pub type MethodOrigins = Vec<(u32, u32)>;

/// Source indices of the methods [`Lifter::lift_class`] will produce for
/// `class`: every declared method whose pool identity resolves (the ones
/// it drops under a lenient policy are exactly the dangling ones).
fn origin_indices(file: &AdxFile, class: &nck_dex::ClassDef) -> Vec<u32> {
    class
        .methods
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            file.pools.get_method(m.method).is_some_and(|mr| {
                file.pools.get_type(mr.class).is_some() && file.pools.get_string(mr.name).is_some()
            })
        })
        .map(|(j, _)| j as u32)
        .collect()
}

/// Lifts a whole ADX file into *skeleton* bodies (see
/// [`Lifter::lift_code_skeleton`]), degrading per-method like
/// [`lift_file_lenient`]. Returns the program, the skip list, and the
/// per-method origins needed to re-lift selected methods in full via
/// [`relift_methods`].
pub fn lift_file_skeleton(
    file: &AdxFile,
    skip: SkipPolicy<'_>,
) -> (Program, Vec<MethodSkip>, MethodOrigins) {
    let mut lifter = Lifter {
        file,
        program: Program::new(),
        skeleton: true,
    };
    let mut skips = Vec::new();
    let mut origins: MethodOrigins = Vec::new();

    for (ci, class) in file.classes.iter().enumerate() {
        let (c, methods) = lifter
            .lift_class(class, Some(skip), &mut skips)
            .expect("lenient lifting is total");
        let srcs = origin_indices(file, class);
        debug_assert_eq!(srcs.len(), methods.len(), "one origin per lifted method");
        register_class(&mut lifter.program, c, methods);
        origins.extend(srcs.into_iter().map(|j| (ci as u32, j)));
    }
    debug_assert_eq!(origins.len(), lifter.program.methods.len());

    (lifter.program, skips, origins)
}

/// Re-lifts the methods in `ids` with full bodies, in place.
///
/// `program` and `origins` must come from [`lift_file_skeleton`] over the
/// same `file`. Bodiless methods (abstract/native or policy-skipped) are
/// left untouched. A method that fails the full lift — impossible for
/// bundles that passed structural verification, since the skeleton
/// already lifted its preserved surface — degrades like
/// [`lift_file_lenient`]: its body is dropped and a [`MethodSkip`] is
/// recorded.
pub fn relift_methods(
    file: &AdxFile,
    program: &mut Program,
    origins: &MethodOrigins,
    ids: &[MethodId],
    skips: &mut Vec<MethodSkip>,
) {
    let mut lifter = Lifter {
        file,
        program: std::mem::replace(program, Program::new()),
        skeleton: false,
    };
    for &id in ids {
        let idx = id.0 as usize;
        if lifter.program.methods[idx].body.is_none() {
            continue;
        }
        let (ci, mi) = origins[idx];
        let m = &file.classes[ci as usize].methods[mi as usize];
        let Some(code) = &m.code else { continue };
        let display = file.pools.display_method(m.method);
        let is_static = m.flags.contains(AccessFlags::STATIC);
        let sig_str = {
            let key = lifter.program.methods[idx].key;
            lifter.program.symbols.resolve(key.sig).to_owned()
        };
        let lifted = nck_dex::parse_signature(&sig_str)
            .map_err(|_| LiftError::BadFrame {
                method: display.clone(),
            })
            .and_then(|(params, _)| lifter.lift_code(&display, code, is_static, &params));
        match lifted {
            Ok(body) => lifter.program.methods[idx].body = Some(Arc::new(body)),
            Err(err) => {
                skips.push(MethodSkip {
                    method: display,
                    reason: err.to_string(),
                });
                lifter.program.methods[idx].body = None;
            }
        }
    }
    *program = lifter.program;
}

/// [`lift_file`] with lift metrics recorded into `metrics`:
/// `lift.classes`, `lift.methods` (bodies lifted), `lift.bodiless`, and
/// `lift.stmts` (IR statements emitted).
pub fn lift_file_obs(file: &AdxFile, metrics: &nck_obs::Metrics) -> Result<Program> {
    let program = lift_file(file)?;
    if metrics.is_enabled() {
        metrics.inc("lift.classes", program.classes.len() as u64);
        metrics.inc(
            "lift.methods",
            program.methods.iter().filter(|m| m.body.is_some()).count() as u64,
        );
        metrics.inc(
            "lift.bodiless",
            program.methods.iter().filter(|m| m.body.is_none()).count() as u64,
        );
        metrics.inc(
            "lift.stmts",
            program
                .methods
                .iter()
                .filter_map(|m| m.body.as_ref())
                .map(|b| b.stmts.len() as u64)
                .sum(),
        );
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::CondOp;

    fn lift_one(build: impl FnOnce(&mut nck_dex::builder::ClassBuilder<'_>)) -> Program {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", build);
        let file = b.finish().unwrap();
        lift_file(&file).unwrap()
    }

    #[test]
    fn identity_preamble_for_instance_method() {
        let p = lift_one(|c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| m.ret(None));
        });
        let body = p.methods[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            body.stmts[0],
            Stmt::Identity {
                kind: IdentityKind::This,
                ..
            }
        ));
        assert!(matches!(
            body.stmts[1],
            Stmt::Identity {
                kind: IdentityKind::Param(0),
                ..
            }
        ));
        // Parameter type hint recorded on the local.
        let this_local = match body.stmts[0] {
            Stmt::Identity { local, .. } => local,
            _ => unreachable!(),
        };
        assert_eq!(body.locals[this_local.0 as usize].name, "this");
    }

    #[test]
    fn invoke_move_result_fuses() {
        let p = lift_one(|c| {
            c.method("f", "()I", AccessFlags::PUBLIC, 4, |m| {
                let this = m.param(0).unwrap();
                m.invoke_virtual("Lapp/T;", "g", "()I", &[this]);
                m.move_result(m.reg(0));
                m.ret(Some(m.reg(0)));
            });
        });
        let body = p.methods[0].body.as_ref().unwrap();
        // this-identity, fused call, return.
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            &body.stmts[1],
            Stmt::Assign {
                rvalue: Rvalue::Invoke(_),
                ..
            }
        ));
    }

    #[test]
    fn branch_targets_remap_over_preamble_and_fusion() {
        let p = lift_one(|c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                let x = m.param(1).unwrap();
                let end = m.new_label();
                // insn 0: ifz -> end
                m.ifz(CondOp::Eq, x, end);
                // insns 1-2: fused pair
                m.invoke_virtual("Lapp/T;", "g", "()I", &[m.param(0).unwrap()]);
                m.move_result(m.reg(0));
                // insn 3: target
                m.bind(end);
                m.ret(None);
            });
        });
        let body = p.methods[0].body.as_ref().unwrap();
        // Stmts: this(0), param(1), if(2), fused(3), return(4).
        assert_eq!(body.stmts.len(), 5);
        match &body.stmts[2] {
            Stmt::If { target, .. } => assert_eq!(*target, StmtId(4)),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn ifz_becomes_compare_with_zero() {
        let p = lift_one(|c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                let x = m.param(1).unwrap();
                let end = m.new_label();
                m.ifz(CondOp::Ne, x, end);
                m.bind(end);
                m.ret(None);
            });
        });
        let body = p.methods[0].body.as_ref().unwrap();
        match &body.stmts[2] {
            Stmt::If { b, .. } => assert_eq!(*b, Operand::IntConst(0)),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn traps_lift_per_handler() {
        let p = lift_one(|c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 4, |m| {
                let h1 = m.new_label();
                let h2 = m.new_label();
                let done = m.new_label();
                let t = m.begin_try();
                m.invoke_virtual("Lapp/T;", "g", "()V", &[m.param(0).unwrap()]);
                m.end_try(t, &[(Some("Ljava/io/IOException;"), h1), (None, h2)]);
                m.goto(done);
                m.bind(h1);
                m.move_exception(m.reg(0));
                m.goto(done);
                m.bind(h2);
                m.move_exception(m.reg(1));
                m.bind(done);
                m.ret(None);
            });
        });
        let body = p.methods[0].body.as_ref().unwrap();
        assert_eq!(body.traps.len(), 2);
        assert!(body.traps[0].exception.is_some());
        assert!(body.traps[1].exception.is_none());
        // Handlers begin with caught-exception identities.
        assert!(matches!(
            body.stmt(body.traps[0].handler),
            Stmt::Identity {
                kind: IdentityKind::CaughtException,
                ..
            }
        ));
    }

    #[test]
    fn string_constants_are_interned() {
        let p = lift_one(|c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| {
                m.const_str(m.reg(0), "http://example.com");
                m.ret(None);
            });
        });
        let body = p.methods[0].body.as_ref().unwrap();
        match &body.stmts[1] {
            Stmt::Assign {
                rvalue: Rvalue::Use(Operand::StrConst(s)),
                ..
            } => {
                assert_eq!(p.symbols.resolve(*s), "http://example.com");
            }
            other => panic!("expected string const, got {other:?}"),
        }
    }

    #[test]
    fn out_of_frame_register_is_a_typed_error() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        let mut file = b.finish().unwrap();
        // Shrink the frame below the registers the preamble binds.
        let code = file.classes[0].methods[0].code.as_mut().unwrap();
        code.insns.insert(
            0,
            nck_dex::Insn::ConstInt {
                dst: Reg(40),
                value: 1,
            },
        );
        match lift_file(&file) {
            Err(LiftError::BadRegister {
                reg: 40, frame: 2, ..
            }) => {}
            other => panic!("expected BadRegister, got {other:?}"),
        }
    }

    #[test]
    fn lenient_lift_skips_bad_methods_and_keeps_good_ones() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("bad", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
            c.method("good", "()I", AccessFlags::PUBLIC, 2, |m| {
                m.const_int(m.reg(0), 7);
                m.ret(Some(m.reg(0)));
            });
        });
        let mut file = b.finish().unwrap();
        let code = file.classes[0].methods[0].code.as_mut().unwrap();
        code.insns.insert(
            0,
            nck_dex::Insn::ConstInt {
                dst: Reg(99),
                value: 0,
            },
        );
        assert!(lift_file(&file).is_err());
        let (p, skips) = lift_file_lenient(&file, &|_| None);
        assert_eq!(skips.len(), 1);
        assert!(skips[0].method.contains("bad"));
        assert!(skips[0].reason.contains("v99"));
        // Both methods exist; only the bad one is bodiless.
        assert_eq!(p.methods.len(), 2);
        assert!(p.methods[0].body.is_none());
        assert!(p.methods[1].body.is_some());
    }

    #[test]
    fn lenient_lift_honours_the_skip_policy() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/T;", |c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
            c.method("g", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        let file = b.finish().unwrap();
        let (p, skips) = lift_file_lenient(&file, &|name| {
            name.contains(".f(")
                .then(|| "failed verification".to_owned())
        });
        assert_eq!(skips.len(), 1);
        assert_eq!(skips[0].reason, "failed verification");
        assert!(p.methods[0].body.is_none());
        assert!(p.methods[1].body.is_some());
    }

    #[test]
    fn classes_and_hierarchy_lift() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.interface("Landroid/view/View$OnClickListener;");
            c.method("f", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
        });
        let file = b.finish().unwrap();
        let p = lift_file(&file).unwrap();
        assert_eq!(p.classes.len(), 1);
        let a = p.symbols.get("Lapp/A;").unwrap();
        let chain = p.hierarchy(a);
        assert_eq!(chain.len(), 2);
        assert_eq!(p.symbols.resolve(chain[1]), "Landroid/app/Activity;");
        assert_eq!(p.all_interfaces(a).len(), 1);
    }

    /// Two-class file whose second class's behaviour is parameterized, so
    /// tests can produce an "updated version" with an unchanged prefix.
    fn versioned_file(retval: i64) -> AdxFile {
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.method("f", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_str(m.reg(1), "stable");
                m.const_int(m.reg(0), 7);
                m.ret(Some(m.reg(0)));
            });
            c.method("h", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        b.class("Lapp/B;", |c| {
            c.method("g", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_str(m.reg(1), "volatile");
                m.const_int(m.reg(0), retval);
                m.ret(Some(m.reg(0)));
            });
        });
        b.finish().unwrap()
    }

    fn programs_equal(a: &Program, b: &Program) {
        assert_eq!(a.symbols.strings_from(0), b.symbols.strings_from(0));
        assert_eq!(format!("{:?}", a.classes), format!("{:?}", b.classes));
        assert_eq!(format!("{:?}", a.methods), format!("{:?}", b.methods));
    }

    #[test]
    fn seeded_lift_without_seed_matches_plain_lift() {
        let file = versioned_file(1);
        let fps = nck_dex::class_fingerprints(&file);
        let cold = lift_file(&file).unwrap();
        let seeded = lift_file_seeded(&file, &fps, None).unwrap();
        assert_eq!(seeded.reused_classes, 0);
        assert!(seeded.reused_methods.is_empty());
        assert_eq!(seeded.seed.classes.len(), 2);
        programs_equal(&cold, &seeded.program);
    }

    #[test]
    fn replay_reproduces_program_exactly_after_tail_change() {
        let v1 = versioned_file(1);
        let fps1 = nck_dex::class_fingerprints(&v1);
        let recorded = lift_file_seeded(&v1, &fps1, None).unwrap();

        let v2 = versioned_file(2);
        let fps2 = nck_dex::class_fingerprints(&v2);
        let warm = lift_file_seeded(&v2, &fps2, Some(&recorded.seed)).unwrap();
        assert_eq!(warm.reused_classes, 1, "only the unchanged prefix replays");
        // Both of A's methods come back with their original ids.
        assert_eq!(warm.reused_methods.len(), 2);
        assert_eq!(warm.reused_methods, warm.program.classes[0].methods);

        let cold = lift_file(&v2).unwrap();
        programs_equal(&cold, &warm.program);
    }

    #[test]
    fn replay_of_identical_file_reuses_everything() {
        let v1 = versioned_file(3);
        let fps = nck_dex::class_fingerprints(&v1);
        let recorded = lift_file_seeded(&v1, &fps, None).unwrap();
        let warm = lift_file_seeded(&v1, &fps, Some(&recorded.seed)).unwrap();
        assert_eq!(warm.reused_classes, 2);
        assert_eq!(warm.reused_methods.len(), 3);
        programs_equal(&recorded.program, &warm.program);
    }

    /// A method exercising every preserved-vs-stubbed instruction class:
    /// constants, branches, a fused call, field traffic, an allocation,
    /// and a trap.
    fn mixed_file() -> AdxFile {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Mix;", |c| {
            c.super_class("Ljava/lang/Object;");
            c.field("count", "I", AccessFlags::PUBLIC);
            c.method("f", "(I)I", AccessFlags::PUBLIC, 6, |m| {
                let this = m.param(0).unwrap();
                let x = m.param(1).unwrap();
                let end = m.new_label();
                m.const_int(m.reg(0), 3);
                m.ifz(CondOp::Eq, x, end);
                m.new_instance(m.reg(1), "Ljava/lang/Object;");
                m.invoke_virtual("Lapp/Mix;", "g", "()I", &[this]);
                m.move_result(m.reg(2));
                m.iput(m.reg(2), this, "Lapp/Mix;", "count", "I");
                m.iget(m.reg(0), this, "Lapp/Mix;", "count", "I");
                m.bind(end);
                m.ret(Some(m.reg(0)));
            });
            c.method("g", "()I", AccessFlags::PUBLIC, 2, |m| {
                m.const_int(m.reg(0), 9);
                m.ret(Some(m.reg(0)));
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn skeleton_preserves_statement_numbering_and_call_surface() {
        let file = mixed_file();
        let full = lift_file(&file).unwrap();
        let (skel, skips, origins) = lift_file_skeleton(&file, &|_| None);
        assert!(skips.is_empty());
        assert_eq!(origins.len(), skel.methods.len());
        for (fm, sm) in full.methods.iter().zip(&skel.methods) {
            let (fb, sb) = (fm.body.as_ref().unwrap(), sm.body.as_ref().unwrap());
            assert_eq!(fb.stmts.len(), sb.stmts.len(), "numbering must match");
            for (i, (fs, ss)) in fb.stmts.iter().zip(&sb.stmts).enumerate() {
                // Wherever the full lift has an invoke, the skeleton has
                // the same invoke at the same index with the same callee.
                match (fs.invoke_expr(), ss.invoke_expr()) {
                    (Some(fi), Some(si)) => {
                        assert_eq!(
                            full.symbols.resolve(fi.callee.name),
                            skel.symbols.resolve(si.callee.name),
                            "stmt {i}"
                        );
                    }
                    (None, None) => {}
                    other => panic!("invoke surface diverged at stmt {i}: {other:?}"),
                }
            }
        }
        // The mixed method's constants and branches are stubbed out.
        let sb = skel.methods[0].body.as_ref().unwrap();
        assert!(sb.stmts.iter().any(|s| matches!(s, Stmt::Nop)));
        assert!(sb.traps.is_empty());
    }

    #[test]
    fn relift_restores_full_bodies_in_place() {
        let file = mixed_file();
        let full = lift_file(&file).unwrap();
        let (mut skel, _, origins) = lift_file_skeleton(&file, &|_| None);
        let ids: Vec<MethodId> = (0..skel.methods.len() as u32).map(MethodId).collect();
        let mut skips = Vec::new();
        relift_methods(&file, &mut skel, &origins, &ids, &mut skips);
        assert!(skips.is_empty());
        for (fm, sm) in full.methods.iter().zip(&skel.methods) {
            assert_eq!(
                format!("{:?}", fm.body),
                format!("{:?}", sm.body),
                "re-lifted bodies equal the full lift"
            );
        }
    }

    #[test]
    fn skeleton_honours_the_skip_policy() {
        let file = mixed_file();
        let (skel, skips, _) = lift_file_skeleton(&file, &|name| {
            name.contains(".g(")
                .then(|| "failed verification".to_owned())
        });
        assert_eq!(skips.len(), 1);
        assert!(skel.methods[1].body.is_none());
        assert!(skel.methods[0].body.is_some());
    }

    #[test]
    fn prefix_change_ends_replay_immediately() {
        // Change the FIRST class: nothing may be replayed, because every
        // later class's symbols depend on the interner state the first
        // class left behind.
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.method("f", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_int(m.reg(0), 99);
                m.ret(Some(m.reg(0)));
            });
            c.method("h", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        b.class("Lapp/B;", |c| {
            c.method("g", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_str(m.reg(1), "volatile");
                m.const_int(m.reg(0), 1);
                m.ret(Some(m.reg(0)));
            });
        });
        let v2 = b.finish().unwrap();

        let v1 = versioned_file(1);
        let recorded = lift_file_seeded(&v1, &nck_dex::class_fingerprints(&v1), None).unwrap();
        let fps2 = nck_dex::class_fingerprints(&v2);
        let warm = lift_file_seeded(&v2, &fps2, Some(&recorded.seed)).unwrap();
        assert_eq!(warm.reused_classes, 0);
        programs_equal(&lift_file(&v2).unwrap(), &warm.program);
    }
}
