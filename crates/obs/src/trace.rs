//! Hierarchical wall-time spans.
//!
//! A [`Tracer`] records a tree of named spans for one pipeline run
//! (normally: one analyzed app). Spans nest by construction order — the
//! most recently opened, not-yet-dropped span is the parent of the next
//! one — so RAII scoping yields the phase hierarchy with no explicit
//! parent bookkeeping. [`Tracer::record`] additionally admits
//! pre-measured durations, which the checker loop uses to report
//! per-check costs accumulated across many request sites as one span.
//!
//! A tracer is meant to be driven from one thread at a time (the
//! pipeline is sequential per app); corpus runners give each worker its
//! own tracer and aggregate the resulting [`PipelineTrace`]s into
//! [`PhaseTotals`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct SpanRec {
    name: String,
    parent: Option<usize>,
    start: Instant,
    dur: Option<Duration>,
    items: u64,
}

#[derive(Debug)]
struct TraceState {
    spans: Vec<SpanRec>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
    /// Time origin every span start is reported relative to. Tracers
    /// minted from the same template share one epoch (see
    /// [`Tracer::enabled_with_epoch`]), so per-app traces from a corpus
    /// run lay out on one timeline.
    epoch: Instant,
}

/// Records spans into a shared, per-run buffer. Cloning shares the
/// buffer; a disabled tracer records nothing.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl Tracer {
    /// A live tracer with an empty span buffer whose epoch is *now*.
    pub fn enabled() -> Tracer {
        Tracer::enabled_with_epoch(Instant::now())
    }

    /// A live tracer with an empty span buffer and an explicit time
    /// origin. Span start offsets ([`SpanNode::start_ns`]) are measured
    /// from `epoch`; derive every per-app tracer of one run from the
    /// same epoch to get one corpus-wide timeline (the trace exporter
    /// relies on this to place apps on worker lanes).
    pub fn enabled_with_epoch(epoch: Instant) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceState {
                spans: Vec::new(),
                stack: Vec::new(),
                epoch,
            }))),
        }
    }

    /// The tracer's time origin, when enabled.
    pub fn epoch(&self) -> Option<Instant> {
        self.inner
            .as_ref()
            .map(|i| i.lock().expect("tracer lock").epoch)
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` under the innermost open span. The span
    /// closes (and its duration is fixed) when the guard drops.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                state: None,
                idx: 0,
            };
        };
        let mut st = inner.lock().expect("tracer lock");
        let parent = st.stack.last().copied();
        let idx = st.spans.len();
        st.spans.push(SpanRec {
            name: name.to_owned(),
            parent,
            start: Instant::now(),
            dur: None,
            items: 0,
        });
        st.stack.push(idx);
        Span {
            state: Some(Arc::clone(inner)),
            idx,
        }
    }

    /// Records an already-measured span of `dur` with `items` under the
    /// innermost open span — for costs accumulated outside RAII scoping.
    /// The span is backdated so its start offset plus duration lands at
    /// the record call (the best placement knowable for accumulated
    /// costs).
    pub fn record(&self, name: &str, dur: Duration, items: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock().expect("tracer lock");
        let parent = st.stack.last().copied();
        let now = Instant::now();
        let start = now.checked_sub(dur).unwrap_or(now);
        st.spans.push(SpanRec {
            name: name.to_owned(),
            parent,
            start,
            dur: Some(dur),
            items,
        });
    }

    /// Snapshots the recorded spans as a tree. Spans still open are
    /// reported with their elapsed-so-far duration.
    pub fn finish(&self) -> PipelineTrace {
        let Some(inner) = &self.inner else {
            return PipelineTrace::default();
        };
        let st = inner.lock().expect("tracer lock");
        let mut nodes: Vec<SpanNode> = st
            .spans
            .iter()
            .map(|s| SpanNode {
                name: s.name.clone(),
                start_ns: s
                    .start
                    .checked_duration_since(st.epoch)
                    .map_or(0, |d| d.as_nanos() as u64),
                nanos: s.dur.unwrap_or_else(|| s.start.elapsed()).as_nanos() as u64,
                items: s.items,
                children: Vec::new(),
            })
            .collect();
        // Children were pushed after their parents, so draining from the
        // back reattaches each node before its own parent is moved.
        let mut roots = Vec::new();
        for i in (0..nodes.len()).rev() {
            let node = std::mem::replace(
                &mut nodes[i],
                SpanNode {
                    name: String::new(),
                    start_ns: 0,
                    nanos: 0,
                    items: 0,
                    children: Vec::new(),
                },
            );
            match st.spans[i].parent {
                Some(p) => nodes[p].children.insert(0, node),
                None => roots.insert(0, node),
            }
        }
        PipelineTrace { roots }
    }
}

/// RAII guard for an open span.
#[derive(Debug)]
pub struct Span {
    state: Option<Arc<Mutex<TraceState>>>,
    idx: usize,
}

impl Span {
    /// Adds `n` to the span's item count (methods lifted, sites checked,
    /// ...).
    pub fn add_items(&self, n: u64) {
        if let Some(state) = &self.state {
            let mut st = state.lock().expect("tracer lock");
            st.spans[self.idx].items += n;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = &self.state else { return };
        let mut st = state.lock().expect("tracer lock");
        let rec = &mut st.spans[self.idx];
        if rec.dur.is_none() {
            rec.dur = Some(rec.start.elapsed());
        }
        // Close this span and anything opened under it that outlived its
        // guard (robust against out-of-order drops).
        while let Some(&top) = st.stack.last() {
            st.stack.pop();
            if top == self.idx {
                break;
            }
        }
    }
}

/// One finished span in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (phase name).
    pub name: String,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall time in nanoseconds.
    pub nanos: u64,
    /// Item count attributed to the span.
    pub items: u64,
    /// Nested spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// End offset from the tracer's epoch, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.nanos)
    }
}

/// The span tree of one pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Top-level spans, in open order.
    pub roots: Vec<SpanNode>,
}

impl PipelineTrace {
    /// Start offset of the earliest root span, in nanoseconds from the
    /// tracer's epoch (0 for an empty trace).
    pub fn start_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.start_ns).min().unwrap_or(0)
    }

    /// End offset of the latest-ending root span, in nanoseconds from
    /// the tracer's epoch (0 for an empty trace).
    pub fn end_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.end_ns()).max().unwrap_or(0)
    }

    /// Total wall time covered by the root spans, in nanoseconds.
    pub fn wall_nanos(&self) -> u64 {
        self.end_ns().saturating_sub(self.start_ns())
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        fn dfs<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = dfs(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        dfs(&self.roots, name)
    }

    /// Every `(path, span)` pair, where `path` joins span names with
    /// `/` from the root (`app/context/summaries`).
    pub fn flatten(&self) -> Vec<(String, &SpanNode)> {
        fn walk<'a>(nodes: &'a [SpanNode], prefix: &str, out: &mut Vec<(String, &'a SpanNode)>) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix}/{}", n.name)
                };
                walk(&n.children, &path, out);
                out.push((path, n));
            }
        }
        let mut out = Vec::new();
        walk(&self.roots, "", &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the tree with durations and item counts, one span per
    /// line, indented by depth.
    pub fn render(&self) -> String {
        fn walk(nodes: &[SpanNode], depth: usize, out: &mut String) {
            for n in nodes {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("{} {:.3} ms", n.name, n.millis()));
                if n.items > 0 {
                    out.push_str(&format!(" ({} items)", n.items));
                }
                out.push('\n');
                walk(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.roots, 0, &mut out);
        out
    }
}

/// Aggregate of one span path across many runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Total wall time in nanoseconds.
    pub nanos: u64,
    /// Total item count.
    pub items: u64,
    /// Number of spans folded in.
    pub count: u64,
}

impl PhaseTotal {
    /// Total wall time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Per-phase totals accumulated over a corpus, keyed by span path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    totals: BTreeMap<String, PhaseTotal>,
}

impl PhaseTotals {
    /// An empty accumulator.
    pub fn new() -> PhaseTotals {
        PhaseTotals::default()
    }

    /// Folds every span of `trace` in, keyed by its path.
    pub fn absorb(&mut self, trace: &PipelineTrace) {
        for (path, node) in trace.flatten() {
            let t = self.totals.entry(path).or_default();
            t.nanos += node.nanos;
            t.items += node.items;
            t.count += 1;
        }
    }

    /// Merges another accumulator in (for per-worker accumulators).
    pub fn merge(&mut self, other: &PhaseTotals) {
        for (path, o) in &other.totals {
            let t = self.totals.entry(path.clone()).or_default();
            t.nanos += o.nanos;
            t.items += o.items;
            t.count += o.count;
        }
    }

    /// Iterates `(path, total)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PhaseTotal)> {
        self.totals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing was absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_scope() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            {
                let _b = t.span("b");
                let _c = t.span("c");
            }
            let _d = t.span("d");
        }
        let _e = t.span("e");
        drop(_e);
        let trace = t.finish();
        assert_eq!(trace.roots.len(), 2);
        assert_eq!(trace.roots[0].name, "a");
        assert_eq!(trace.roots[1].name, "e");
        let a = &trace.roots[0];
        assert_eq!(
            a.children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["b", "d"]
        );
        assert_eq!(a.children[0].children[0].name, "c");
    }

    #[test]
    fn parent_duration_dominates_children() {
        let t = Tracer::enabled();
        {
            let _p = t.span("parent");
            {
                let _c = t.span("child");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let trace = t.finish();
        let p = &trace.roots[0];
        let c = &p.children[0];
        assert!(c.nanos > 0, "child measured nothing");
        assert!(
            p.nanos >= c.nanos,
            "parent {} ns < child {} ns",
            p.nanos,
            c.nanos
        );
    }

    #[test]
    fn sequential_spans_have_monotone_nonnegative_durations() {
        let t = Tracer::enabled();
        for i in 0..5 {
            let s = t.span("step");
            s.add_items(i);
            drop(s);
        }
        let trace = t.finish();
        assert_eq!(trace.roots.len(), 5);
        // All durations are finite and recorded (no still-open spans).
        for r in &trace.roots {
            assert!(r.nanos < u64::MAX);
        }
        let total_items: u64 = trace.roots.iter().map(|r| r.items).sum();
        assert_eq!(total_items, 1 + 2 + 3 + 4);
    }

    #[test]
    fn record_attaches_premeasured_spans_under_the_open_span() {
        let t = Tracer::enabled();
        {
            let _p = t.span("checks");
            t.record("connectivity", Duration::from_micros(120), 4);
            t.record("response", Duration::from_micros(30), 2);
        }
        let trace = t.finish();
        let p = &trace.roots[0];
        assert_eq!(p.children.len(), 2);
        assert_eq!(p.children[0].name, "connectivity");
        assert_eq!(p.children[0].nanos, 120_000);
        assert_eq!(p.children[0].items, 4);
    }

    #[test]
    fn find_and_flatten_address_spans_by_path() {
        let t = Tracer::enabled();
        {
            let _a = t.span("app");
            {
                let _b = t.span("context");
                let s = t.span("summaries");
                s.add_items(9);
            }
        }
        let trace = t.finish();
        assert_eq!(trace.find("summaries").unwrap().items, 9);
        let flat = trace.flatten();
        assert!(flat.iter().any(|(p, _)| p == "app/context/summaries"));
    }

    #[test]
    fn flatten_sorts_by_path_not_by_recording_order() {
        let t = Tracer::enabled();
        {
            let _a = t.span("app");
            t.record("verify", Duration::from_micros(10), 0);
            {
                let _c = t.span("context");
                t.record("summaries", Duration::from_micros(5), 0);
            }
            t.record("lift", Duration::from_micros(7), 0);
        }
        let trace = t.finish();
        let paths: Vec<String> = trace.flatten().into_iter().map(|(p, _)| p).collect();
        // Recorded verify → context/summaries → lift; flattened output
        // is path-sorted so downstream consumers (JSONL phase records,
        // phase totals) see one stable order.
        assert_eq!(
            paths,
            vec![
                "app".to_owned(),
                "app/context".to_owned(),
                "app/context/summaries".to_owned(),
                "app/lift".to_owned(),
                "app/verify".to_owned(),
            ]
        );
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn phase_totals_aggregate_across_traces() {
        let mut totals = PhaseTotals::new();
        for _ in 0..3 {
            let t = Tracer::enabled();
            {
                let _a = t.span("app");
                t.record("parse", Duration::from_millis(1), 10);
            }
            totals.absorb(&t.finish());
        }
        let parse = totals
            .iter()
            .find(|(p, _)| *p == "app/parse")
            .map(|(_, t)| *t)
            .unwrap();
        assert_eq!(parse.count, 3);
        assert_eq!(parse.items, 30);
        assert_eq!(parse.nanos, 3_000_000);

        let mut other = PhaseTotals::new();
        other.merge(&totals);
        other.merge(&totals);
        let doubled = other
            .iter()
            .find(|(p, _)| *p == "app/parse")
            .map(|(_, t)| *t)
            .unwrap();
        assert_eq!(doubled.count, 6);
    }

    #[test]
    fn start_offsets_are_measured_from_the_epoch() {
        let epoch = Instant::now();
        let t = Tracer::enabled_with_epoch(epoch);
        std::thread::sleep(Duration::from_millis(2));
        {
            let _a = t.span("a");
            std::thread::sleep(Duration::from_millis(1));
            let _b = t.span("b");
        }
        let trace = t.finish();
        let a = &trace.roots[0];
        let b = &a.children[0];
        assert!(a.start_ns >= 2_000_000, "a starts after the sleep");
        assert!(b.start_ns >= a.start_ns, "child starts after parent");
        assert!(b.end_ns() <= a.end_ns() + 1_000, "child ends within parent");
        assert_eq!(trace.start_ns(), a.start_ns);
        assert_eq!(trace.end_ns(), a.end_ns());
        assert_eq!(trace.wall_nanos(), a.nanos);
    }

    #[test]
    fn fresh_tracers_share_a_template_epoch() {
        let template = Tracer::enabled();
        let epoch = template.epoch().expect("enabled tracer has an epoch");
        let worker = Tracer::enabled_with_epoch(epoch);
        std::thread::sleep(Duration::from_millis(1));
        drop(worker.span("app"));
        let trace = worker.finish();
        // The span starts well after the shared epoch, not at 0 as a
        // private epoch would report.
        assert!(trace.roots[0].start_ns >= 1_000_000);
        assert!(Tracer::disabled().epoch().is_none());
    }

    #[test]
    fn record_backdates_premeasured_spans() {
        let t = Tracer::enabled();
        std::thread::sleep(Duration::from_millis(2));
        t.record("accumulated", Duration::from_millis(1), 1);
        let trace = t.finish();
        let n = &trace.roots[0];
        // start + dur lands at the record call, so the span sits just
        // before it rather than extending past the end of the trace.
        assert!(n.start_ns >= 1_000_000, "backdated by its duration");
        assert_eq!(n.nanos, 1_000_000);
    }

    #[test]
    fn render_shows_durations_and_items() {
        let t = Tracer::enabled();
        {
            let s = t.span("lift");
            s.add_items(12);
        }
        let text = t.finish().render();
        assert!(text.contains("lift"));
        assert!(text.contains("ms"));
        assert!(text.contains("(12 items)"));
    }
}
