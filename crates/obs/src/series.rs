//! Exact-sample series for corpus-level latency aggregation.
//!
//! A [`Series`] keeps every observation, so percentiles are exact
//! rather than bucket-bounded like
//! [`HistogramSnapshot::percentile_bound`](crate::metrics::HistogramSnapshot::percentile_bound).
//! That costs one `u64` per sample — fine for per-app wall times (one
//! sample per app), wrong for per-method timings (use a histogram).
//!
//! The percentile convention is the nearest-rank form the benches have
//! always used: the sample at zero-based index `round(p/100 * (n-1))`
//! of the sorted data.

/// An exact-sample distribution: every pushed value is retained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Series {
    samples: Vec<u64>,
    sorted: bool,
}

impl Series {
    /// An empty series.
    pub fn new() -> Series {
        Series::default()
    }

    /// Records one observation.
    pub fn push(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Folds another series' samples in.
    pub fn merge(&mut self, other: &Series) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// The exact `p`-th percentile (nearest rank: the sorted sample at
    /// zero-based index `round(p/100 * (n-1))`), or `None` when empty.
    /// `p` is clamped to `0..=100`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0 * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[rank])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_samples() {
        let mut s = Series::new();
        for v in [50, 10, 40, 20, 30] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.0), Some(10));
        assert_eq!(s.percentile(50.0), Some(30));
        assert_eq!(s.percentile(100.0), Some(50));
        // round(0.9 * 4) = 4 → max sample.
        assert_eq!(s.percentile(90.0), Some(50));
        // round(0.75 * 4) = 3.
        assert_eq!(s.percentile(75.0), Some(40));
    }

    #[test]
    fn empty_series_has_no_percentile() {
        let mut s = Series::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Series::new();
        a.push(1);
        a.push(100);
        let mut b = Series::new();
        b.push(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 103);
        assert_eq!(a.percentile(50.0), Some(2));
    }

    #[test]
    fn push_after_percentile_resorts() {
        let mut s = Series::new();
        s.push(10);
        assert_eq!(s.percentile(50.0), Some(10));
        s.push(1);
        assert_eq!(s.percentile(0.0), Some(1));
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let mut s = Series::new();
        s.push(3);
        s.push(7);
        assert_eq!(s.percentile(-5.0), Some(3));
        assert_eq!(s.percentile(250.0), Some(7));
    }
}
