//! Leveled diagnostics on stderr.
//!
//! Replaces ad hoc `eprintln!` scattered through the drivers: every
//! human-facing diagnostic goes through an [`Events`] handle whose
//! verbosity the CLI sets from `--quiet`/`-v`/`-vv`. Machine output
//! (stdout, JSON) never goes through here, so raising or silencing
//! verbosity cannot corrupt it.

use std::io::Write;

/// Diagnostic severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see (still suppressed by `--quiet`).
    Error,
    /// Suspicious but non-fatal conditions (the default ceiling).
    Warn,
    /// Per-app progress (`-v`).
    Info,
    /// Per-phase detail (`-vv`).
    Debug,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

/// A verbosity-gated stderr stream.
#[derive(Clone, Debug)]
pub struct Events {
    ceiling: Option<Level>,
}

impl Default for Events {
    fn default() -> Events {
        Events::at(Level::Warn)
    }
}

impl Events {
    /// Emits everything up to and including `ceiling`.
    pub fn at(ceiling: Level) -> Events {
        Events {
            ceiling: Some(ceiling),
        }
    }

    /// Emits nothing at all (`--quiet`).
    pub fn silent() -> Events {
        Events { ceiling: None }
    }

    /// Whether a message at `level` would be written.
    pub fn would_log(&self, level: Level) -> bool {
        self.ceiling.is_some_and(|c| level <= c)
    }

    /// Writes `msg` to stderr when `level` clears the ceiling. Errors
    /// print bare (they are the primary channel content); lower levels
    /// carry a `level:` prefix.
    pub fn emit(&self, level: Level, msg: &str) {
        if !self.would_log(level) {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = match level {
            Level::Error => writeln!(err, "{msg}"),
            _ => writeln!(err, "{level}: {msg}"),
        };
    }

    /// [`Events::emit`] at [`Level::Error`].
    pub fn error(&self, msg: &str) {
        self.emit(Level::Error, msg);
    }

    /// [`Events::emit`] at [`Level::Warn`].
    pub fn warn(&self, msg: &str) {
        self.emit(Level::Warn, msg);
    }

    /// [`Events::emit`] at [`Level::Info`].
    pub fn info(&self, msg: &str) {
        self.emit(Level::Info, msg);
    }

    /// [`Events::emit`] at [`Level::Debug`].
    pub fn debug(&self, msg: &str) {
        self.emit(Level::Debug, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ceiling_admits_errors_and_warnings_only() {
        let e = Events::default();
        assert!(e.would_log(Level::Error));
        assert!(e.would_log(Level::Warn));
        assert!(!e.would_log(Level::Info));
        assert!(!e.would_log(Level::Debug));
    }

    #[test]
    fn verbose_ceilings_widen_monotonically() {
        let v = Events::at(Level::Info);
        assert!(v.would_log(Level::Info));
        assert!(!v.would_log(Level::Debug));
        let vv = Events::at(Level::Debug);
        assert!(vv.would_log(Level::Debug));
    }

    #[test]
    fn silent_suppresses_everything_including_errors() {
        let q = Events::silent();
        assert!(!q.would_log(Level::Error));
        q.error("never shown"); // must not panic
    }
}
