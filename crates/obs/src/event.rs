//! Leveled diagnostics on stderr, optionally mirrored to a JSONL sink.
//!
//! Replaces ad hoc `eprintln!` scattered through the drivers: every
//! human-facing diagnostic goes through an [`Events`] handle whose
//! verbosity the CLI sets from `--quiet`/`-v`/`-vv`. Machine output
//! (stdout, JSON) never goes through here, so raising or silencing
//! verbosity cannot corrupt it.
//!
//! Stderr lines carry an elapsed-time prefix (`[+1.042s]`) measured
//! from the handle's construction, so interleaved `-v` output from
//! parallel workers can be ordered after the fact. When a
//! [`JsonlSink`] is attached, every event is also written there as a
//! `{"t":"event","ms":...,"level":...,"msg":...}` record — at *all*
//! levels, regardless of the stderr ceiling, so `--log-json` captures
//! the full stream even under `--quiet`.

use crate::export::{JsonObj, JsonlSink};
use std::io::Write;
use std::time::Instant;

/// Diagnostic severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see (still suppressed by `--quiet`).
    Error,
    /// Suspicious but non-fatal conditions (the default ceiling).
    Warn,
    /// Per-app progress (`-v`).
    Info,
    /// Per-phase detail (`-vv`).
    Debug,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        })
    }
}

/// A verbosity-gated stderr stream with an optional JSONL mirror.
#[derive(Clone, Debug)]
pub struct Events {
    ceiling: Option<Level>,
    epoch: Instant,
    sink: Option<JsonlSink>,
}

impl Default for Events {
    fn default() -> Events {
        Events::at(Level::Warn)
    }
}

impl Events {
    /// Emits everything up to and including `ceiling`.
    pub fn at(ceiling: Level) -> Events {
        Events {
            ceiling: Some(ceiling),
            epoch: Instant::now(),
            sink: None,
        }
    }

    /// Emits nothing at all on stderr (`--quiet`). An attached sink
    /// still receives every event.
    pub fn silent() -> Events {
        Events {
            ceiling: None,
            epoch: Instant::now(),
            sink: None,
        }
    }

    /// Attaches a JSONL sink that receives every event regardless of
    /// the stderr ceiling.
    pub fn with_sink(mut self, sink: JsonlSink) -> Events {
        self.sink = Some(sink);
        self
    }

    /// The attached JSONL sink, if any.
    pub fn sink(&self) -> Option<&JsonlSink> {
        self.sink.as_ref()
    }

    /// Whether a message at `level` would be written to stderr.
    pub fn would_log(&self, level: Level) -> bool {
        self.ceiling.is_some_and(|c| level <= c)
    }

    /// Seconds elapsed since this handle was constructed.
    pub fn elapsed_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Writes `msg` to stderr when `level` clears the ceiling, prefixed
    /// with the elapsed time since construction. Errors print without a
    /// level tag (they are the primary channel content); lower levels
    /// carry a `level:` tag. An attached sink receives the event
    /// unconditionally.
    pub fn emit(&self, level: Level, msg: &str) {
        let elapsed = self.epoch.elapsed();
        if let Some(sink) = &self.sink {
            sink.emit(
                &JsonObj::new()
                    .str("t", "event")
                    .u64("ms", elapsed.as_millis() as u64)
                    .str("level", &level.to_string())
                    .str("msg", msg)
                    .finish(),
            );
        }
        if !self.would_log(level) {
            return;
        }
        let stamp = format!("[+{:.3}s]", elapsed.as_secs_f64());
        let mut err = std::io::stderr().lock();
        let _ = match level {
            Level::Error => writeln!(err, "{stamp} {msg}"),
            _ => writeln!(err, "{stamp} {level}: {msg}"),
        };
    }

    /// [`Events::emit`] at [`Level::Error`].
    pub fn error(&self, msg: &str) {
        self.emit(Level::Error, msg);
    }

    /// [`Events::emit`] at [`Level::Warn`].
    pub fn warn(&self, msg: &str) {
        self.emit(Level::Warn, msg);
    }

    /// [`Events::emit`] at [`Level::Info`].
    pub fn info(&self, msg: &str) {
        self.emit(Level::Info, msg);
    }

    /// [`Events::emit`] at [`Level::Debug`].
    pub fn debug(&self, msg: &str) {
        self.emit(Level::Debug, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ceiling_admits_errors_and_warnings_only() {
        let e = Events::default();
        assert!(e.would_log(Level::Error));
        assert!(e.would_log(Level::Warn));
        assert!(!e.would_log(Level::Info));
        assert!(!e.would_log(Level::Debug));
    }

    #[test]
    fn verbose_ceilings_widen_monotonically() {
        let v = Events::at(Level::Info);
        assert!(v.would_log(Level::Info));
        assert!(!v.would_log(Level::Debug));
        let vv = Events::at(Level::Debug);
        assert!(vv.would_log(Level::Debug));
    }

    #[test]
    fn silent_suppresses_everything_including_errors() {
        let q = Events::silent();
        assert!(!q.would_log(Level::Error));
        q.error("never shown"); // must not panic
    }

    #[test]
    fn sink_receives_events_below_the_stderr_ceiling() {
        let (sink, buf) = JsonlSink::capture();
        let e = Events::silent().with_sink(sink);
        e.debug("invisible on stderr");
        e.error("also captured");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"t\":\"event\""));
        assert!(lines[0].contains("\"level\":\"debug\""));
        assert!(lines[0].contains("\"msg\":\"invisible on stderr\""));
        assert!(lines[1].contains("\"level\":\"error\""));
    }
}
