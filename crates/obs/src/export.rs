//! Machine-readable telemetry export: JSONL sinks and Chrome Trace
//! Event output.
//!
//! `nck-obs` is dependency-free, so this module carries its own minimal
//! JSON writer: [`json_escape`] plus the [`JsonObj`] builder, enough to
//! emit flat records with stable field names. Nested structure only
//! appears via [`JsonObj::raw`], whose value the caller has already
//! serialized.
//!
//! [`chrome_trace`] turns per-app [`PipelineTrace`]s into the Chrome
//! Trace Event Format (the `{"traceEvents": [...]}` JSON loaded by
//! Perfetto and chrome://tracing). Worker identity is not plumbed
//! through the pipeline; instead lanes are reconstructed by greedy
//! interval partitioning over app start/end times, which yields exactly
//! the worker count lanes for a saturated pool and never overlaps two
//! apps on one lane.

use crate::trace::{PipelineTrace, SpanNode};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object, preserving insertion order. Keys are
/// written in the order fields are added, so records keep their stable,
/// documented field order.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> JsonObj {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> JsonObj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> JsonObj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field, rendered with three decimal places (enough
    /// for microsecond values carrying nanosecond fractions).
    pub fn f64(mut self, k: &str, v: f64) -> JsonObj {
        self.key(k);
        self.buf.push_str(&format!("{v:.3}"));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> JsonObj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(mut self, k: &str, v: &str) -> JsonObj {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

impl Default for JsonObj {
    fn default() -> JsonObj {
        JsonObj::new()
    }
}

enum SinkTarget {
    Writer(Box<dyn Write + Send>),
    Capture(Arc<Mutex<Vec<u8>>>),
}

/// A shared, line-oriented JSON sink: each [`JsonlSink::emit`] call
/// appends one JSON object and a newline. Cloning shares the
/// destination; writes are serialized by an internal lock, so parallel
/// workers never interleave within a line.
#[derive(Clone)]
pub struct JsonlSink {
    inner: Arc<Mutex<SinkTarget>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// A sink writing to `path` (created or truncated).
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            inner: Arc::new(Mutex::new(SinkTarget::Writer(Box::new(BufWriter::new(
                file,
            ))))),
        })
    }

    /// An in-memory sink plus the buffer it writes to, for tests.
    pub fn capture() -> (JsonlSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink {
            inner: Arc::new(Mutex::new(SinkTarget::Capture(Arc::clone(&buf)))),
        };
        (sink, buf)
    }

    /// Appends one record (serialized JSON object, no trailing newline)
    /// as a line. I/O errors are swallowed: telemetry must never fail
    /// the pipeline.
    pub fn emit(&self, record: &str) {
        let mut target = self.inner.lock().expect("jsonl sink lock");
        match &mut *target {
            SinkTarget::Writer(w) => {
                let _ = writeln!(w, "{record}");
            }
            SinkTarget::Capture(buf) => {
                let mut buf = buf.lock().expect("jsonl capture lock");
                buf.extend_from_slice(record.as_bytes());
                buf.push(b'\n');
            }
        }
    }

    /// Flushes buffered lines to the destination.
    pub fn flush(&self) {
        if let SinkTarget::Writer(w) = &mut *self.inner.lock().expect("jsonl sink lock") {
            let _ = w.flush();
        }
    }
}

/// Assigns each trace to the first lane free at its start time (greedy
/// interval partitioning over `[start_ns, end_ns)`). Returns one lane
/// index per input trace; empty traces get lane 0.
fn assign_lanes(traces: &[(String, PipelineTrace)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..traces.len()).collect();
    order.sort_by_key(|&i| (traces[i].1.start_ns(), traces[i].1.end_ns()));
    let mut lanes: Vec<usize> = vec![0; traces.len()];
    let mut lane_end: Vec<u64> = Vec::new();
    for i in order {
        let (start, end) = (traces[i].1.start_ns(), traces[i].1.end_ns());
        match lane_end.iter().position(|&e| e <= start) {
            Some(l) => {
                lanes[i] = l;
                lane_end[l] = end;
            }
            None => {
                lanes[i] = lane_end.len();
                lane_end.push(end);
            }
        }
    }
    lanes
}

fn push_span_events(
    node: &SpanNode,
    app: Option<&str>,
    tid: usize,
    out: &mut Vec<(u64, u64, String)>,
) {
    let mut args = JsonObj::new().u64("items", node.items);
    if let Some(app) = app {
        args = args.str("app", app);
    }
    let ev = JsonObj::new()
        .str("name", &node.name)
        .str("cat", "nchecker")
        .str("ph", "X")
        .f64("ts", node.start_ns as f64 / 1e3)
        .f64("dur", node.nanos as f64 / 1e3)
        .u64("pid", 1)
        .u64("tid", tid as u64)
        .raw("args", &args.finish())
        .finish();
    out.push((node.start_ns, u64::MAX - node.nanos, ev));
    for c in &node.children {
        push_span_events(c, None, tid, out);
    }
}

/// Renders `(app label, trace)` pairs as a Chrome Trace Event Format
/// document. Each reconstructed worker lane becomes one `tid`; within a
/// lane events are sorted by start time (longer spans first on ties, so
/// parents precede children). Root spans carry the app label in their
/// `args`.
pub fn chrome_trace(traces: &[(String, PipelineTrace)]) -> String {
    let lanes = assign_lanes(traces);
    let lane_count = lanes.iter().copied().max().map_or(0, |m| m + 1);
    let mut events: Vec<String> = Vec::new();
    events.push(
        JsonObj::new()
            .str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 1)
            .u64("tid", 0)
            .raw("args", &JsonObj::new().str("name", "nchecker").finish())
            .finish(),
    );
    for lane in 0..lane_count {
        events.push(
            JsonObj::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", 1)
                .u64("tid", lane as u64)
                .raw(
                    "args",
                    &JsonObj::new()
                        .str("name", &format!("worker {lane}"))
                        .finish(),
                )
                .finish(),
        );
    }
    // Collect per lane so each lane's events come out ts-sorted.
    for lane in 0..lane_count {
        let mut lane_events: Vec<(u64, u64, String)> = Vec::new();
        for (i, (app, trace)) in traces.iter().enumerate() {
            if lanes[i] != lane {
                continue;
            }
            for root in &trace.roots {
                push_span_events(root, Some(app), lane, &mut lane_events);
            }
        }
        lane_events.sort_by_key(|a| (a.0, a.1));
        events.extend(lane_events.into_iter().map(|(_, _, ev)| ev));
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use std::time::{Duration, Instant};

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_obj_preserves_field_order() {
        let s = JsonObj::new()
            .str("t", "event")
            .u64("n", 3)
            .i64("d", -1)
            .bool("ok", true)
            .raw("inner", "{\"x\":1}")
            .finish();
        assert_eq!(
            s,
            "{\"t\":\"event\",\"n\":3,\"d\":-1,\"ok\":true,\"inner\":{\"x\":1}}"
        );
    }

    #[test]
    fn jsonl_sink_capture_collects_lines() {
        let (sink, buf) = JsonlSink::capture();
        sink.emit("{\"a\":1}");
        sink.clone().emit("{\"b\":2}");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
    }

    fn trace_with_window(epoch: Instant, start_ms: u64, dur_ms: u64, name: &str) -> PipelineTrace {
        // Synthesize a trace occupying [start_ms, start_ms+dur_ms) on
        // the epoch timeline via record()'s backdating.
        let t = Tracer::enabled_with_epoch(
            epoch
                .checked_sub(Duration::from_millis(start_ms + dur_ms))
                .unwrap_or(epoch),
        );
        t.record(name, Duration::from_millis(dur_ms), 1);
        t.finish()
    }

    #[test]
    fn lanes_partition_overlapping_intervals() {
        let epoch = Instant::now();
        // a: [0, 10), b: [2, 6) overlaps a, c: [12, 14) reuses a's lane.
        let traces = vec![
            ("a".to_owned(), trace_with_window(epoch, 0, 10, "app")),
            ("b".to_owned(), trace_with_window(epoch, 2, 4, "app")),
            ("c".to_owned(), trace_with_window(epoch, 12, 2, "app")),
        ];
        let lanes = assign_lanes(&traces);
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[1], 1, "overlap forces a second lane");
        assert_eq!(lanes[2], 0, "free lane is reused");
    }

    #[test]
    fn chrome_trace_emits_sorted_events_with_metadata() {
        let epoch = Instant::now();
        let traces = vec![
            ("late.app".to_owned(), trace_with_window(epoch, 5, 2, "app")),
            (
                "early.app".to_owned(),
                trace_with_window(epoch, 0, 2, "app"),
            ),
        ];
        let out = chrome_trace(&traces);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"worker 0\""));
        assert!(out.contains("\"app\":\"early.app\""));
        let early = out.find("early.app").unwrap();
        let late = out.find("late.app").unwrap();
        assert!(early < late, "lane events ordered by start time");
    }
}
