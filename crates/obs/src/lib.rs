//! `nck-obs`: the observability layer of the NChecker pipeline.
//!
//! The pipeline (DEX parse → IR lift → CFG/dataflow → call graph →
//! interprocedural summaries → checkers) is instrumented with three
//! facilities, all hand-rolled on `std` alone in the style of the
//! vendored stubs — the build environment has no crates registry:
//!
//! - **spans** ([`trace`]): hierarchical wall-time regions with item
//!   counts, one [`trace::PipelineTrace`] tree per analyzed app, plus
//!   [`trace::PhaseTotals`] for corpus-level aggregation;
//! - **metrics** ([`metrics`]): a registry of monotonic counters, gauges,
//!   and fixed-bucket histograms, snapshottable and mergeable across a
//!   corpus;
//! - **events** ([`event`]): leveled diagnostics on stderr behind the
//!   CLI's `--quiet`/`-v` verbosity, keeping machine output untouched;
//! - **series** ([`series`]): exact-sample distributions for
//!   corpus-level latency percentiles;
//! - **export** ([`export`]): machine-readable output — a shared JSONL
//!   sink and a Chrome Trace Event Format renderer for span trees.
//!
//! Every handle has a *disabled* state that records nothing and costs a
//! branch per call, so instrumentation left in place adds no measurable
//! overhead when observability is off (the default).
//!
//! # Example
//!
//! ```
//! use nck_obs::Obs;
//!
//! let obs = Obs::enabled();
//! {
//!     let parse = obs.tracer.span("parse");
//!     parse.add_items(3);
//!     obs.metrics.inc("parse.classes", 3);
//! }
//! let trace = obs.tracer.finish();
//! assert_eq!(trace.roots[0].name, "parse");
//! assert_eq!(obs.metrics.snapshot().counters["parse.classes"], 3);
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod series;
pub mod trace;

pub use event::{Events, Level};
pub use export::{chrome_trace, json_escape, JsonObj, JsonlSink};
pub use metrics::{
    GaugeKind, GaugeValue, HistogramSnapshot, Metrics, MetricsSnapshot, EXP2_BUCKETS,
};
pub use series::Series;
pub use trace::{PhaseTotals, PipelineTrace, Span, SpanNode, Tracer};

/// The bundle of observability handles one pipeline run carries.
///
/// Cloning shares the underlying sinks; use [`Obs::fresh`] to derive a
/// new, empty set of sinks with the same enablement — the driver keeps a
/// template and mints one `Obs` per analyzed app so traces and metrics
/// stay per-app.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Span recorder.
    pub tracer: Tracer,
    /// Metric registry.
    pub metrics: Metrics,
    /// Diagnostic stream.
    pub events: Events,
}

impl Obs {
    /// All sinks off: records nothing.
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// Tracer and metrics on, diagnostics at the default level.
    pub fn enabled() -> Obs {
        Obs {
            tracer: Tracer::enabled(),
            metrics: Metrics::enabled(),
            events: Events::default(),
        }
    }

    /// A new `Obs` with *empty* sinks, enabled exactly where `self` is.
    /// The fresh tracer inherits the template's epoch, so per-app
    /// traces minted from one template lay out on one corpus timeline
    /// (the Chrome-trace exporter depends on this).
    pub fn fresh(&self) -> Obs {
        Obs {
            tracer: match self.tracer.epoch() {
                Some(epoch) => Tracer::enabled_with_epoch(epoch),
                None => Tracer::disabled(),
            },
            metrics: if self.metrics.is_enabled() {
                Metrics::enabled()
            } else {
                Metrics::disabled()
            },
            events: self.events.clone(),
        }
    }

    /// Whether any recording sink (tracer or metrics) is live.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled() || self.metrics.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let obs = Obs::disabled();
        let s = obs.tracer.span("x");
        s.add_items(5);
        drop(s);
        obs.metrics.inc("c", 1);
        assert!(!obs.is_enabled());
        assert!(obs.tracer.finish().roots.is_empty());
        assert!(obs.metrics.snapshot().counters.is_empty());
    }

    #[test]
    fn fresh_preserves_enablement_with_empty_sinks() {
        let obs = Obs::enabled();
        obs.metrics.inc("c", 7);
        let f = obs.fresh();
        assert!(f.is_enabled());
        assert!(f.metrics.snapshot().counters.is_empty());
        assert_eq!(obs.metrics.snapshot().counters["c"], 7);
    }

    #[test]
    fn fresh_tracers_inherit_the_template_epoch() {
        let obs = Obs::enabled();
        let epoch = obs.tracer.epoch().unwrap();
        let f = obs.fresh();
        assert_eq!(f.tracer.epoch(), Some(epoch));
    }
}
