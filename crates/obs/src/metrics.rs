//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metric names are dot-separated (`summary.scc_size`); the registry is
//! flat and created on first touch, so instrumentation sites need no
//! up-front registration. A [`MetricsSnapshot`] is an immutable copy
//! that merges with others — corpus runners merge one snapshot per app
//! into corpus totals.
//!
//! A name is bound to one metric kind by its first use; subsequent
//! operations of a different kind on the same name are ignored rather
//! than panicking, keeping instrumentation non-fatal by construction.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default histogram bucket bounds: powers of two, 1..=32768. A value
/// lands in the first bucket whose bound is ≥ the value; larger values
/// land in the overflow bucket.
pub const EXP2_BUCKETS: [u64; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

/// How a gauge folds when snapshots merge.
///
/// The merge rule is the point of the split: counters always sum, but a
/// gauge is either a *point-in-time* reading (cache entries, largest
/// SCC) — for which summing per-app values into a corpus total silently
/// fabricates a number no process ever observed — or an *additive*
/// contribution (bytes written by this app) that genuinely accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GaugeKind {
    /// Point-in-time reading: last write wins in the live registry, and
    /// merging keeps the **maximum** (the high-water mark is the only
    /// order-independent, meaningful fold of point-in-time values).
    #[default]
    Point,
    /// Additive contribution: writes add in the live registry, and
    /// merging **sums**.
    Additive,
}

/// A gauge value paired with its merge semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeValue {
    /// Current value.
    pub value: i64,
    /// How the value folds on [`MetricsSnapshot::merge`].
    pub kind: GaugeKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Metric {
    Counter(u64),
    Gauge(GaugeValue),
    Histogram(HistogramSnapshot),
}

/// An immutable histogram: `counts[i]` holds observations `v <=
/// bounds[i]` (and above the previous bound); `counts[bounds.len()]` is
/// the overflow bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn new(bounds: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The arithmetic mean of observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper bound of the bucket containing the `p`-th
    /// percentile observation, or `None` when the histogram is empty or
    /// the rank lands in the overflow bucket (beyond every bound).
    ///
    /// Exact within bucket resolution: the returned bound is the
    /// tightest upper bound the bucketing can prove for that rank. For
    /// exact percentiles over raw samples use [`crate::series::Series`].
    pub fn percentile_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // 1-based rank of the percentile observation, same convention
        // as Series: round(p/100 * (n-1)) zero-based.
        let rank = (p / 100.0 * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            // Mismatched bucketing: keep our buckets, re-bucket only the
            // aggregate moments (exact bucket counts are unknowable).
            let i = self.counts.len() - 1;
            self.counts[i] += other.count;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The live registry handle. Cloning shares the registry; a disabled
/// handle records nothing.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<BTreeMap<String, Metric>>>>,
}

impl Metrics {
    /// A live, empty registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// A registry that records nothing.
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `by` to the counter `name`.
    pub fn inc(&self, name: &str, by: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Counter(c) = map.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            *c += by;
        }
    }

    /// Sets the point-in-time gauge `name` to `value` (last write wins;
    /// merges keep the maximum — see [`GaugeKind::Point`]).
    pub fn gauge(&self, name: &str, value: i64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Gauge(g) = map
            .entry(name.to_owned())
            .or_insert(Metric::Gauge(GaugeValue {
                value: 0,
                kind: GaugeKind::Point,
            }))
        {
            if g.kind == GaugeKind::Point {
                g.value = value;
            }
        }
    }

    /// Adds `by` to the additive gauge `name` (merges sum — see
    /// [`GaugeKind::Additive`]). Unlike a counter, an additive gauge may
    /// go negative.
    pub fn gauge_add(&self, name: &str, by: i64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Gauge(g) = map
            .entry(name.to_owned())
            .or_insert(Metric::Gauge(GaugeValue {
                value: 0,
                kind: GaugeKind::Additive,
            }))
        {
            if g.kind == GaugeKind::Additive {
                g.value += by;
            }
        }
    }

    /// Observes `value` into the histogram `name` with the default
    /// [`EXP2_BUCKETS`].
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, &EXP2_BUCKETS, value);
    }

    /// Observes `value` into the histogram `name`, creating it with
    /// `bounds` on first touch (later observations reuse the original
    /// bounds).
    pub fn observe_with(&self, name: &str, bounds: &[u64], value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Histogram(h) = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(HistogramSnapshot::new(bounds)))
        {
            h.observe(value);
        }
    }

    /// An immutable copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let map = inner.lock().expect("metrics lock");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), *c);
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), *g);
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        snap
    }
}

/// An immutable, mergeable copy of a [`Metrics`] registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges with their merge semantics.
    pub gauges: BTreeMap<String, GaugeValue>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` in. Counters and histogram buckets add. Gauges
    /// fold by their [`GaugeKind`]: additive gauges sum, point-in-time
    /// gauges keep the maximum — summing a point-in-time value (cache
    /// entries, largest SCC) across per-app snapshots would fabricate a
    /// total no process ever observed. On a kind conflict the
    /// first-recorded kind wins, mirroring the registry's
    /// first-use-binds rule.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            let mine = self.gauges.entry(name.clone()).or_insert(GaugeValue {
                value: match g.kind {
                    GaugeKind::Point => i64::MIN,
                    GaugeKind::Additive => 0,
                },
                kind: g.kind,
            });
            match mine.kind {
                GaugeKind::Point => mine.value = mine.value.max(g.value),
                GaugeKind::Additive => mine.value += g.value,
            }
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// Whether no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders one `name value` line per metric. Histograms render
    /// their moments, the percentile bucket bounds, and every non-empty
    /// bucket (`le<bound>:count`, `inf` for overflow) so `--metrics`
    /// output shows the distribution, not just the mean.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!("{name} {}\n", g.value));
        }
        for (name, h) in &self.histograms {
            let pct = |p: f64| match h.percentile_bound(p) {
                Some(b) => format!("<={b}"),
                None if h.count == 0 => "-".to_owned(),
                None => format!(">{}", h.bounds.last().copied().unwrap_or(0)),
            };
            out.push_str(&format!(
                "{name} count={} sum={} mean={:.2} p50{} p90{} p99{}",
                h.count,
                h.sum,
                h.mean(),
                pct(50.0),
                pct(90.0),
                pct(99.0),
            ));
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(b) => out.push_str(&format!(" le{b}:{c}")),
                    None => out.push_str(&format!(" inf:{c}")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::enabled();
        m.inc("a", 2);
        m.inc("a", 3);
        m.inc("b", 1);
        let s = m.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 1);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let m = Metrics::enabled();
        m.gauge("g", 10);
        m.gauge("g", -3);
        let g = m.snapshot().gauges["g"];
        assert_eq!(g.value, -3);
        assert_eq!(g.kind, GaugeKind::Point);
    }

    #[test]
    fn additive_gauges_accumulate() {
        let m = Metrics::enabled();
        m.gauge_add("bytes", 10);
        m.gauge_add("bytes", -3);
        let g = m.snapshot().gauges["bytes"];
        assert_eq!(g.value, 7);
        assert_eq!(g.kind, GaugeKind::Additive);
    }

    #[test]
    fn gauge_kind_conflicts_are_ignored() {
        let m = Metrics::enabled();
        m.gauge("g", 5); // binds Point
        m.gauge_add("g", 100); // wrong kind: ignored
        assert_eq!(m.snapshot().gauges["g"].value, 5);
        m.gauge_add("a", 5); // binds Additive
        m.gauge("a", 100); // wrong kind: ignored
        assert_eq!(m.snapshot().gauges["a"].value, 5);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let m = Metrics::enabled();
        for v in [1, 2, 3, 4, 5, 1000] {
            m.observe_with("h", &[2, 4, 8], v);
        }
        let h = &m.snapshot().histograms["h"];
        // 1,2 <= 2; 3,4 <= 4; 5 <= 8; 1000 overflows.
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1015);
    }

    #[test]
    fn exp2_default_buckets_cover_small_values() {
        let m = Metrics::enabled();
        m.observe("scc", 1);
        m.observe("scc", 3);
        m.observe("scc", 100_000);
        let h = &m.snapshot().histograms["scc"];
        assert_eq!(h.counts[0], 1); // 1 <= 1
        assert_eq!(h.counts[2], 1); // 3 <= 4
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.count, 3);
    }

    #[test]
    fn kind_conflicts_are_ignored_not_fatal() {
        let m = Metrics::enabled();
        m.inc("x", 1);
        m.gauge("x", 99);
        m.observe("x", 7);
        let s = m.snapshot();
        assert_eq!(s.counters["x"], 1);
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn snapshots_merge_counters_gauges_histograms() {
        let a = Metrics::enabled();
        a.inc("c", 1);
        a.gauge("g", 2);
        a.observe_with("h", &[10], 5);
        let b = Metrics::enabled();
        b.inc("c", 10);
        b.gauge("g", 5);
        b.observe_with("h", &[10], 50);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters["c"], 11);
        // Point gauges keep the high-water mark, not the sum.
        assert_eq!(s.gauges["g"].value, 5);
        let h = &s.histograms["h"];
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.sum, 55);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn merge_folds_gauges_by_kind() {
        let a = Metrics::enabled();
        a.gauge("peak", 7);
        a.gauge_add("bytes", 100);
        let b = Metrics::enabled();
        b.gauge("peak", 3);
        b.gauge_add("bytes", 50);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.gauges["peak"].value, 7); // max of point readings
        assert_eq!(s.gauges["bytes"].value, 150); // sum of contributions
                                                  // Merging into an empty snapshot is the identity.
        let mut empty = MetricsSnapshot::default();
        empty.merge(&s);
        assert_eq!(empty, s);
    }

    #[test]
    fn merge_kind_conflict_keeps_self_kind() {
        let a = Metrics::enabled();
        a.gauge("g", 2);
        let b = Metrics::enabled();
        b.gauge_add("g", 100);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        // Self's binding (Point) wins: fold by max, keep Point.
        assert_eq!(s.gauges["g"].value, 100);
        assert_eq!(s.gauges["g"].kind, GaugeKind::Point);
    }

    #[test]
    fn percentile_bound_walks_cumulative_counts() {
        let m = Metrics::enabled();
        for v in [1, 1, 2, 3, 5, 8, 13, 21, 34, 55] {
            m.observe_with("h", &[2, 8, 32], v);
        }
        let h = &m.snapshot().histograms["h"];
        // counts: <=2: 3, <=8: 3, <=32: 2, overflow: 2 (34, 55).
        assert_eq!(h.percentile_bound(0.0), Some(2));
        assert_eq!(h.percentile_bound(50.0), Some(8)); // rank 5 (0-based 4.5→5)
        assert_eq!(h.percentile_bound(90.0), None); // rank 8 lands in overflow
        let empty = HistogramSnapshot::new(&[2]);
        assert_eq!(empty.percentile_bound(50.0), None);
    }

    #[test]
    fn render_shows_buckets_and_percentiles() {
        let m = Metrics::enabled();
        m.inc("c", 3);
        m.gauge("g", -1);
        for v in [1, 3, 1000] {
            m.observe_with("h", &[2, 4], v);
        }
        let out = m.snapshot().render();
        assert!(out.contains("c 3\n"));
        assert!(out.contains("g -1\n"));
        // Percentiles per bucket bound, overflow rendered as >last.
        assert!(out.contains("p50<=4"), "missing p50 in: {out}");
        assert!(out.contains("p99>4"), "missing overflow p99 in: {out}");
        // Non-empty buckets listed; the empty le? buckets are elided.
        assert!(out.contains("le2:1"), "missing le2 bucket in: {out}");
        assert!(out.contains("le4:1"), "missing le4 bucket in: {out}");
        assert!(out.contains("inf:1"), "missing overflow bucket in: {out}");
    }

    #[test]
    fn mismatched_bucket_merge_preserves_moments() {
        let a = Metrics::enabled();
        a.observe_with("h", &[10], 5);
        let b = Metrics::enabled();
        b.observe_with("h", &[99], 20);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        let h = &s.histograms["h"];
        assert_eq!(h.bounds, vec![10]);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 25);
    }

    #[test]
    fn disabled_metrics_do_nothing() {
        let m = Metrics::disabled();
        m.inc("a", 1);
        m.observe("h", 1);
        assert!(m.snapshot().is_empty());
    }
}
