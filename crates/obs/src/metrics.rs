//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metric names are dot-separated (`summary.scc_size`); the registry is
//! flat and created on first touch, so instrumentation sites need no
//! up-front registration. A [`MetricsSnapshot`] is an immutable copy
//! that merges with others — corpus runners merge one snapshot per app
//! into corpus totals.
//!
//! A name is bound to one metric kind by its first use; subsequent
//! operations of a different kind on the same name are ignored rather
//! than panicking, keeping instrumentation non-fatal by construction.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default histogram bucket bounds: powers of two, 1..=32768. A value
/// lands in the first bucket whose bound is ≥ the value; larger values
/// land in the overflow bucket.
pub const EXP2_BUCKETS: [u64; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

#[derive(Clone, Debug, PartialEq, Eq)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// An immutable histogram: `counts[i]` holds observations `v <=
/// bounds[i]` (and above the previous bound); `counts[bounds.len()]` is
/// the overflow bucket.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn new(bounds: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The arithmetic mean of observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            // Mismatched bucketing: keep our buckets, re-bucket only the
            // aggregate moments (exact bucket counts are unknowable).
            let i = self.counts.len() - 1;
            self.counts[i] += other.count;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The live registry handle. Cloning shares the registry; a disabled
/// handle records nothing.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<BTreeMap<String, Metric>>>>,
}

impl Metrics {
    /// A live, empty registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Mutex::new(BTreeMap::new()))),
        }
    }

    /// A registry that records nothing.
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `by` to the counter `name`.
    pub fn inc(&self, name: &str, by: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Counter(c) = map.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            *c += by;
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: i64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Gauge(g) = map.entry(name.to_owned()).or_insert(Metric::Gauge(0)) {
            *g = value;
        }
    }

    /// Observes `value` into the histogram `name` with the default
    /// [`EXP2_BUCKETS`].
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, &EXP2_BUCKETS, value);
    }

    /// Observes `value` into the histogram `name`, creating it with
    /// `bounds` on first touch (later observations reuse the original
    /// bounds).
    pub fn observe_with(&self, name: &str, bounds: &[u64], value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut map = inner.lock().expect("metrics lock");
        if let Metric::Histogram(h) = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(HistogramSnapshot::new(bounds)))
        {
            h.observe(value);
        }
    }

    /// An immutable copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let map = inner.lock().expect("metrics lock");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), *c);
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), *g);
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        snap
    }
}

/// An immutable, mergeable copy of a [`Metrics`] registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` in: counters and histogram buckets add; gauges add
    /// too, so per-app gauges aggregate to corpus totals.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// Whether no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders one `name value` line per metric, histograms as
    /// `name count=N sum=S mean=M`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} count={} sum={} mean={:.2}\n",
                h.count,
                h.sum,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::enabled();
        m.inc("a", 2);
        m.inc("a", 3);
        m.inc("b", 1);
        let s = m.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 1);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let m = Metrics::enabled();
        m.gauge("g", 10);
        m.gauge("g", -3);
        assert_eq!(m.snapshot().gauges["g"], -3);
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let m = Metrics::enabled();
        for v in [1, 2, 3, 4, 5, 1000] {
            m.observe_with("h", &[2, 4, 8], v);
        }
        let h = &m.snapshot().histograms["h"];
        // 1,2 <= 2; 3,4 <= 4; 5 <= 8; 1000 overflows.
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1015);
    }

    #[test]
    fn exp2_default_buckets_cover_small_values() {
        let m = Metrics::enabled();
        m.observe("scc", 1);
        m.observe("scc", 3);
        m.observe("scc", 100_000);
        let h = &m.snapshot().histograms["scc"];
        assert_eq!(h.counts[0], 1); // 1 <= 1
        assert_eq!(h.counts[2], 1); // 3 <= 4
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.count, 3);
    }

    #[test]
    fn kind_conflicts_are_ignored_not_fatal() {
        let m = Metrics::enabled();
        m.inc("x", 1);
        m.gauge("x", 99);
        m.observe("x", 7);
        let s = m.snapshot();
        assert_eq!(s.counters["x"], 1);
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn snapshots_merge_counters_gauges_histograms() {
        let a = Metrics::enabled();
        a.inc("c", 1);
        a.gauge("g", 2);
        a.observe_with("h", &[10], 5);
        let b = Metrics::enabled();
        b.inc("c", 10);
        b.gauge("g", 5);
        b.observe_with("h", &[10], 50);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters["c"], 11);
        assert_eq!(s.gauges["g"], 7);
        let h = &s.histograms["h"];
        assert_eq!(h.counts, vec![1, 1]);
        assert_eq!(h.sum, 55);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn mismatched_bucket_merge_preserves_moments() {
        let a = Metrics::enabled();
        a.observe_with("h", &[10], 5);
        let b = Metrics::enabled();
        b.observe_with("h", &[99], 20);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        let h = &s.histograms["h"];
        assert_eq!(h.bounds, vec![10]);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 25);
    }

    #[test]
    fn disabled_metrics_do_nothing() {
        let m = Metrics::disabled();
        m.inc("a", 1);
        m.observe("h", 1);
        assert!(m.snapshot().is_empty());
    }
}
