//! End-to-end pipeline tests: spec → binary on disk → parse → lift →
//! analyze, including failure paths.

use nchecker::{DefectKind, NChecker};
use nck_android::apk::Apk;
use nck_appgen::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nck-pipeline-{name}-{}", std::process::id()))
}

#[test]
fn binary_on_disk_roundtrip_and_analysis() {
    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.conn_check = ConnCheck::Missing;
    let spec = AppSpec::new("com.test.disk", vec![r]);
    let apk = nck_appgen::generate(&spec);

    let path = temp_path("roundtrip.apk");
    apk.save(&path).unwrap();
    let loaded = Apk::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.manifest.package, "com.test.disk");
    let report = NChecker::new().analyze_apk(&loaded).unwrap();
    assert!(report.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn corrupted_binary_is_rejected_not_misanalyzed() {
    let spec = AppSpec::new(
        "com.test.corrupt",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let mut bytes = nck_appgen::generate(&spec).to_bytes();
    let checker = NChecker::new();
    // Flip bytes throughout the container; every corruption must either
    // error out or (for bytes in dead padding) still parse — never panic
    // and never silently produce an empty result from garbage.
    for i in (0..bytes.len()).step_by(97) {
        bytes[i] ^= 0x5a;
        let _ = checker.analyze_bytes(&bytes);
        bytes[i] ^= 0x5a;
    }
    // Truncations always error.
    for cut in [1usize, 7, bytes.len() / 3, bytes.len() - 5] {
        assert!(checker.analyze_bytes(&bytes[..bytes.len() - cut]).is_err());
    }
}

#[test]
fn fixing_defects_clears_reports_incrementally() {
    // Start from a fully buggy volley request and fix one defect at a
    // time; each step must remove exactly the targeted warning family.
    let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
    r.check_error_types = true; // Keep the error-type warning out of the way.
    let checker = NChecker::new();

    let count = |r: &RequestSpec, kind: DefectKind| {
        let spec = AppSpec::new("com.test.steps", vec![r.clone()]);
        let report = checker.analyze_apk(&nck_appgen::generate(&spec)).unwrap();
        report.count(kind)
    };

    assert_eq!(count(&r, DefectKind::MissedConnectivityCheck), 1);
    r.conn_check = ConnCheck::Guarding;
    assert_eq!(count(&r, DefectKind::MissedConnectivityCheck), 0);

    assert_eq!(count(&r, DefectKind::MissedRetry), 1);
    r.set_retries = Some(2);
    r.set_timeout = true;
    assert_eq!(count(&r, DefectKind::MissedRetry), 0);
    assert_eq!(count(&r, DefectKind::MissedTimeout), 0);

    assert_eq!(count(&r, DefectKind::MissedFailureNotification), 1);
    r.notification = Notification::Alert;
    assert_eq!(count(&r, DefectKind::MissedFailureNotification), 0);
}

#[test]
fn report_rendering_is_complete_for_every_defect() {
    // Every defect kind produced across a varied spec set renders all
    // five report sections.
    let mut specs = nck_appgen::studyapps::all_study_apps();
    specs.push(AppSpec::new(
        "com.test.render",
        vec![RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service)],
    ));
    let checker = NChecker::new();
    for spec in specs {
        let report = checker.analyze_apk(&nck_appgen::generate(&spec)).unwrap();
        for d in &report.defects {
            let text = d.render();
            for section in [
                "NPD Information",
                "NPD impact",
                "Network request context",
                "Network request call stack",
                "Fix Suggestion",
            ] {
                assert!(text.contains(section), "{section} missing in:\n{text}");
            }
        }
    }
}
