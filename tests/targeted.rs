//! Targeted-mode differential suite: demand-driven analysis
//! (`CheckerConfig::targeted`) must be *report-equivalent* to the
//! whole-app pipeline — byte-identical rendered reports over the full
//! calibrated corpus, the interprocedural accuracy suite, and random
//! specs — while provably doing less work on no-network apps.

use nchecker::{app_report_to_json, AppReport, CheckerConfig, NChecker};
use nck_appgen::spec::{
    AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape,
};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;
use nck_obs::{Events, Metrics, Obs, Tracer};
use proptest::prelude::*;

/// The comparison surface: the exact JSON the CLI prints under
/// `--json` (observability off, so no volatile fields).
fn render(r: &AppReport) -> String {
    serde_json::to_string(&app_report_to_json(r)).expect("report renders")
}

fn checker(targeted: bool) -> NChecker {
    NChecker::with_config(CheckerConfig {
        targeted,
        ..CheckerConfig::default()
    })
}

fn assert_modes_agree(spec: &AppSpec) {
    let bytes = nck_appgen::generate(spec).to_bytes();
    let full = checker(false)
        .analyze_bytes_checked(&bytes)
        .expect("full analyzes");
    let fast = checker(true)
        .analyze_bytes_checked(&bytes)
        .expect("targeted analyzes");
    assert_eq!(
        render(&full),
        render(&fast),
        "{}: targeted diverges from full",
        spec.package
    );
}

#[test]
fn targeted_matches_full_over_the_285_app_corpus() {
    for spec in nck_appgen::profile::corpus(2016) {
        assert_modes_agree(&spec);
    }
}

#[test]
fn targeted_matches_full_over_the_interproc_accuracy_suite() {
    let apps = nck_appgen::interproc_suite::interproc_apps();
    assert_eq!(apps.len(), 16, "accuracy suite size");
    for spec in apps {
        assert_modes_agree(&spec);
    }
}

#[test]
fn targeted_matches_full_on_clean_heavy_mixes() {
    for spec in nck_appgen::profile::clean_corpus(7, 40, 0.7) {
        assert_modes_agree(&spec);
    }
}

/// A prescan-skipped app must not lift a single method: the whole point
/// of the mode is that a clean constant pool ends the analysis before
/// any per-method work starts.
#[test]
fn prescan_skipped_apps_lift_zero_methods() {
    let spec = nck_appgen::profile::no_network_app(0, 16);
    let bytes = nck_appgen::generate(&spec).to_bytes();
    let mut c = checker(true);
    c.obs = Obs {
        tracer: Tracer::disabled(),
        metrics: Metrics::enabled(),
        events: Events::silent(),
    };
    let report = c.analyze_bytes_checked(&bytes).expect("analyzes");
    assert!(report.defects.is_empty());
    assert!(!report.degraded());

    let snap = report.metrics.as_ref().expect("metered run snapshots");
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("targeted.prescan_skipped"), 1, "app was skipped");
    assert_eq!(counter("targeted.methods_lifted"), 0, "nothing lifted");
    assert_eq!(counter("targeted.slice_methods"), 0, "nothing sliced");
    assert!(
        counter("targeted.methods_total") > 0,
        "the skipped app did contain methods"
    );
    // And the skip is invisible in the report: a full-mode run of the
    // same clean app renders identically.
    assert_modes_agree(&spec);
}

fn arb_library() -> impl Strategy<Value = Library> {
    prop_oneof![
        Just(Library::HttpUrlConnection),
        Just(Library::ApacheHttpClient),
        Just(Library::Volley),
        Just(Library::OkHttp),
        Just(Library::AndroidAsyncHttp),
        Just(Library::BasicHttpClient),
    ]
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::UserClick),
        Just(Origin::ActivityLifecycle),
        Just(Origin::Service),
    ]
}

fn arb_conn() -> impl Strategy<Value = ConnCheck> {
    prop_oneof![
        Just(ConnCheck::Missing),
        Just(ConnCheck::Guarding),
        Just(ConnCheck::GuardingViaHelper),
        Just(ConnCheck::UnusedResult),
        Just(ConnCheck::InterComponent),
    ]
}

fn arb_notification() -> impl Strategy<Value = Notification> {
    prop_oneof![
        Just(Notification::Missing),
        Just(Notification::Alert),
        Just(Notification::InterComponent),
    ]
}

fn arb_retry_shape() -> impl Strategy<Value = Option<RetryShape>> {
    prop_oneof![
        Just(None),
        Just(Some(RetryShape::SuccessExit)),
        Just(Some(RetryShape::CatchCondition)),
        Just(Some(RetryShape::InterprocCatchCondition)),
    ]
}

prop_compose! {
    /// A request spec respecting the generator's structural constraints
    /// (same shape as the oracle differential suite).
    fn arb_request()(
        library in arb_library(),
        origin in arb_origin(),
        conn_check in arb_conn(),
        set_timeout in any::<bool>(),
        retries in prop_oneof![Just(None), (0u32..4).prop_map(Some)],
        notification in arb_notification(),
        check_error_types in any::<bool>(),
        unchecked_resp in any::<bool>(),
        resp_via_helper in any::<bool>(),
        retry_via_helper in any::<bool>(),
        post in any::<bool>(),
        custom in arb_retry_shape(),
    ) -> RequestSpec {
        let mut r = RequestSpec::new(library, origin);
        r.conn_check = conn_check;
        r.notification = notification;
        r.set_retries = if library.has_retry_api() { retries } else { None };
        r.retries_via_helper = retry_via_helper && r.set_retries.is_some();
        r.set_timeout = if library == Library::Volley {
            r.set_retries.is_some()
        } else {
            set_timeout
        };
        r.check_error_types = check_error_types;
        r.response = if library.has_response_check_api() {
            if unchecked_resp {
                RespCheck::Unchecked
            } else if resp_via_helper {
                RespCheck::CheckedViaHelper
            } else {
                RespCheck::Checked
            }
        } else {
            RespCheck::NotUsed
        };
        r.http_method = if post && library != Library::OkHttp {
            HttpMethod::Post
        } else {
            HttpMethod::Get
        };
        r.custom_retry = match library {
            Library::BasicHttpClient
            | Library::OkHttp
            | Library::ApacheHttpClient
            | Library::HttpUrlConnection => custom,
            _ => None,
        };
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Targeted must equal full on arbitrary constrained specs — with
    /// and without ballast classes, which exercise the slice boundary
    /// (ballast is exactly the code targeted mode must *not* lift yet
    /// must render identically, i.e. not at all).
    #[test]
    fn targeted_matches_full_on_random_specs(
        requests in proptest::collection::vec(arb_request(), 0..4),
        bulk in 0usize..6,
    ) {
        let mut spec = AppSpec::new("com.prop.targeted", requests);
        spec.bulk = bulk;
        let bytes = nck_appgen::generate(&spec).to_bytes();
        let full = checker(false).analyze_bytes_checked(&bytes).expect("full analyzes");
        let fast = checker(true).analyze_bytes_checked(&bytes).expect("targeted analyzes");
        prop_assert_eq!(render(&full), render(&fast));
    }
}
