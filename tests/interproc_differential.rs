//! Differential proptest: constant-return summaries vs concrete execution.
//!
//! Generates random acyclic call chains of static `()I` methods — leaves
//! return literals, inner methods forward, offset, scale, or negate their
//! callee's result — computes interprocedural summaries over the lifted
//! program, and executes every method under `nck-interp`. Wherever the
//! summary engine claims a constant return, the machine must produce
//! exactly that value; and on these fully resolvable chains the engine
//! must claim a constant for every method (no lost precision).

use nck_dataflow::interproc::{CallKind, MethodInput, Summaries};
use nck_dataflow::CVal;
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp, UnOp};
use nck_interp::{Machine, NopEnv, Outcome, Value};
use nck_ir::{lift_file, Program};
use proptest::prelude::*;

/// What one chain method does with the next method's result.
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// `return c`
    Const(i64),
    /// `return f{i+1}()`
    Forward,
    /// `return f{i+1}() + c`
    Offset(i64),
    /// `return f{i+1}() * c`
    Scale(i64),
    /// `return -f{i+1}()`
    Negate,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    // Constants stay small so chains of multiplies cannot overflow i64.
    prop_oneof![
        (-100i64..=100).prop_map(Shape::Const),
        Just(Shape::Forward),
        (-100i64..=100).prop_map(Shape::Offset),
        (-100i64..=100).prop_map(Shape::Scale),
        Just(Shape::Negate),
    ]
}

/// Builds `f0..f{n-1}` on one class, each shaped by `shapes[i]` and
/// calling `f{i+1}`; the last method is forced to a literal so the chain
/// terminates.
fn build_chain(shapes: &[Shape]) -> Program {
    let mut b = AdxBuilder::new();
    b.class("Lgen/Chain;", |c| {
        for (i, &shape) in shapes.iter().enumerate() {
            let shape = if i + 1 == shapes.len() {
                match shape {
                    Shape::Const(v) | Shape::Offset(v) | Shape::Scale(v) => Shape::Const(v),
                    Shape::Forward | Shape::Negate => Shape::Const(7),
                }
            } else {
                shape
            };
            let name = format!("f{i}");
            let callee = format!("f{}", i + 1);
            c.method(
                &name,
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                |m| {
                    let (r0, r1) = (m.reg(0), m.reg(1));
                    match shape {
                        Shape::Const(v) => m.const_int(r0, v),
                        Shape::Forward => {
                            m.invoke_static("Lgen/Chain;", &callee, "()I", &[]);
                            m.move_result(r0);
                        }
                        Shape::Offset(v) => {
                            m.invoke_static("Lgen/Chain;", &callee, "()I", &[]);
                            m.move_result(r0);
                            m.const_int(r1, v);
                            m.binop(BinOp::Add, r0, r0, r1);
                        }
                        Shape::Scale(v) => {
                            m.invoke_static("Lgen/Chain;", &callee, "()I", &[]);
                            m.move_result(r0);
                            m.const_int(r1, v);
                            m.binop(BinOp::Mul, r0, r0, r1);
                        }
                        Shape::Negate => {
                            m.invoke_static("Lgen/Chain;", &callee, "()I", &[]);
                            m.move_result(r0);
                            m.unop(UnOp::Neg, r0, r0);
                        }
                    }
                    m.ret(Some(r0));
                },
            );
        }
    });
    lift_file(&b.finish().unwrap()).expect("generated chain lifts")
}

/// Summaries over `p`, resolving every call the program itself can
/// resolve and leaving the rest opaque (no registry in play here).
fn summaries_of(p: &Program) -> Summaries {
    let inputs: Vec<MethodInput<'_>> = p
        .methods
        .iter()
        .map(|m| MethodInput {
            body: m.body.as_deref(),
            is_static: m.flags.contains(AccessFlags::STATIC),
        })
        .collect();
    Summaries::compute(&inputs, |_, _, inv| match p.lookup_method(inv.callee) {
        Some(id) => CallKind::Callees(vec![id.0 as usize]),
        None => CallKind::Opaque,
    })
}

/// Checks every method of `p`: the summary's constant return must match
/// what the interpreter actually computes. Returns how many methods were
/// proven constant.
fn check_program(p: &Program) -> usize {
    let summaries = summaries_of(p);
    let mut proven = 0;
    for (id, method) in p.iter_methods() {
        if method.body.is_none() {
            continue;
        }
        if let CVal::Int(claimed) = summaries.summary(id.0 as usize).const_return {
            proven += 1;
            let mut machine = Machine::new(p, NopEnv).with_step_limit(100_000);
            let outcome = machine.call(id, vec![]).expect("chain method executes");
            assert_eq!(
                outcome,
                Outcome::Returned(Some(Value::Int(claimed))),
                "summary claims {} returns {claimed}",
                p.display_method_key(method.key),
            );
        }
    }
    proven
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random chains of depth 1-6: the engine proves every method
    /// constant, and each proven value matches concrete execution.
    #[test]
    fn const_return_summaries_match_execution(
        shapes in proptest::collection::vec(arb_shape(), 1..=6),
    ) {
        let p = build_chain(&shapes);
        let proven = check_program(&p);
        prop_assert_eq!(proven, shapes.len(), "all chain methods fold to constants");
    }
}

/// A fixed depth-5 chain exercising every shape at once:
/// `f0 = -f1()`, `f1 = f2() * 3`, `f2 = f3() + 10`, `f3 = f4()`,
/// `f4 = 5` — so `f0 = -((5 + 10) * 3) = -45`.
#[test]
fn deep_mixed_chain_folds_to_the_expected_constant() {
    let shapes = [
        Shape::Negate,
        Shape::Scale(3),
        Shape::Offset(10),
        Shape::Forward,
        Shape::Const(5),
    ];
    let p = build_chain(&shapes);
    assert_eq!(check_program(&p), 5);
    let summaries = summaries_of(&p);
    let f0 = p
        .iter_methods()
        .find(|(_, m)| p.symbols.resolve(m.key.name) == "f0")
        .map(|(id, _)| id)
        .unwrap();
    assert_eq!(
        summaries.summary(f0.0 as usize).const_return,
        CVal::Int(-45)
    );
}

/// An unresolvable callee keeps the caller honest: the engine must not
/// claim a constant it cannot prove.
#[test]
fn opaque_calls_stay_nonconstant() {
    let mut b = AdxBuilder::new();
    b.class("Lgen/Chain;", |c| {
        c.method(
            "f0",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            4,
            |m| {
                m.invoke_static("Lext/Lib;", "mystery", "()I", &[]);
                m.move_result(m.reg(0));
                m.ret(Some(m.reg(0)));
            },
        );
    });
    let p = lift_file(&b.finish().unwrap()).unwrap();
    let summaries = summaries_of(&p);
    assert!(
        !matches!(summaries.summary(0).const_return, CVal::Int(_)),
        "an opaque call must not fold"
    );
}
