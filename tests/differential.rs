//! Differential property test: for every constrained random request
//! spec, the generator's oracle (plus its designed FP/FN deviations)
//! must equal the checker's report on the generated binary.
//!
//! This is the strongest whole-pipeline invariant in the repository: it
//! exercises the binary writer/parser, the lifter, the call graph, and
//! all four analyses against an independent model of what they should
//! find.

use nchecker::NChecker;
use nck_appgen::spec::{
    AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape,
};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;
use proptest::prelude::*;

fn arb_library() -> impl Strategy<Value = Library> {
    prop_oneof![
        Just(Library::HttpUrlConnection),
        Just(Library::ApacheHttpClient),
        Just(Library::Volley),
        Just(Library::OkHttp),
        Just(Library::AndroidAsyncHttp),
        Just(Library::BasicHttpClient),
    ]
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::UserClick),
        Just(Origin::ActivityLifecycle),
        Just(Origin::Service),
    ]
}

fn arb_conn() -> impl Strategy<Value = ConnCheck> {
    prop_oneof![
        Just(ConnCheck::Missing),
        Just(ConnCheck::Guarding),
        Just(ConnCheck::GuardingViaHelper),
        Just(ConnCheck::UnusedResult),
        Just(ConnCheck::InterComponent),
    ]
}

fn arb_notification() -> impl Strategy<Value = Notification> {
    prop_oneof![
        Just(Notification::Missing),
        Just(Notification::Alert),
        Just(Notification::InterComponent),
    ]
}

fn arb_retry_shape() -> impl Strategy<Value = Option<RetryShape>> {
    prop_oneof![
        Just(None),
        Just(Some(RetryShape::SuccessExit)),
        Just(Some(RetryShape::CatchCondition)),
        Just(Some(RetryShape::InterprocCatchCondition)),
    ]
}

prop_compose! {
    /// A request spec respecting the generator's structural constraints:
    /// Volley couples timeout/retry; custom retry wraps sync libraries
    /// only; POST and response settings only where meaningful.
    fn arb_request()(
        library in arb_library(),
        origin in arb_origin(),
        conn_check in arb_conn(),
        set_timeout in any::<bool>(),
        retries in prop_oneof![Just(None), (0u32..4).prop_map(Some)],
        notification in arb_notification(),
        check_error_types in any::<bool>(),
        unchecked_resp in any::<bool>(),
        resp_via_helper in any::<bool>(),
        retry_via_helper in any::<bool>(),
        post in any::<bool>(),
        custom in arb_retry_shape(),
    ) -> RequestSpec {
        let mut r = RequestSpec::new(library, origin);
        r.conn_check = conn_check;
        r.notification = notification;
        // Retry APIs only exist for retry-capable libraries. The count may
        // flow through a helper getter (the summary engine resolves it).
        r.set_retries = if library.has_retry_api() { retries } else { None };
        r.retries_via_helper = retry_via_helper && r.set_retries.is_some();
        // Volley couples the two through DefaultRetryPolicy.
        r.set_timeout = if library == Library::Volley {
            r.set_retries.is_some()
        } else {
            set_timeout
        };
        r.check_error_types = check_error_types;
        // Response handling only for response-capable libraries; the
        // check itself may live in a helper validator.
        r.response = if library.has_response_check_api() {
            if unchecked_resp {
                RespCheck::Unchecked
            } else if resp_via_helper {
                RespCheck::CheckedViaHelper
            } else {
                RespCheck::Checked
            }
        } else {
            RespCheck::NotUsed
        };
        // POST via constructor constants / request objects / config APIs,
        // where the generator supports it (not OkHttp's opaque Request).
        r.http_method = if post && library != Library::OkHttp {
            HttpMethod::Post
        } else {
            HttpMethod::Get
        };
        // Custom retry loops wrap synchronous cores.
        r.custom_retry = match library {
            Library::BasicHttpClient
            | Library::OkHttp
            | Library::ApacheHttpClient
            | Library::HttpUrlConnection => custom,
            _ => None,
        };
        r
    }
}

fn sorted_kinds(kinds: Vec<nchecker::DefectKind>) -> Vec<String> {
    let mut v: Vec<String> = kinds.into_iter().map(|k| format!("{k:?}")).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checker_matches_oracle_on_random_specs(
        requests in proptest::collection::vec(arb_request(), 1..4)
    ) {
        let spec = AppSpec::new("com.prop.app", requests);
        let apk = nck_appgen::generate(&spec);
        let report = NChecker::new().analyze_apk(&apk).expect("analyzable");
        let got = sorted_kinds(report.defects.iter().map(|d| d.kind).collect());
        let want = sorted_kinds(spec.expected_tool_report());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn generated_binaries_always_verify_and_roundtrip(
        requests in proptest::collection::vec(arb_request(), 1..4)
    ) {
        let spec = AppSpec::new("com.prop.bin", requests);
        let apk = nck_appgen::generate(&spec);
        prop_assert!(nck_dex::verify::verify(&apk.adx).is_empty());
        let bytes = apk.to_bytes();
        let loaded = nck_android::Apk::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(loaded.manifest, apk.manifest);
        prop_assert_eq!(loaded.adx.insn_count(), apk.adx.insn_count());
    }
}
