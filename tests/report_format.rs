//! Golden test for the Figure 7 report format: the GPSLogger
//! reconstruction's connectivity warning must render with the exact
//! structure the paper shows — the user study's 1.7-minute fixes depend
//! on every section being present and specific.

use nchecker::{DefectKind, NChecker};
use nck_appgen::studyapps::gpslogger;

#[test]
fn gpslogger_report_matches_figure7_structure() {
    let apk = nck_appgen::generate(&gpslogger());
    let report = NChecker::new().analyze_apk(&apk).unwrap();

    let conn = report
        .defects
        .iter()
        .find(|d| d.kind == DefectKind::MissedConnectivityCheck)
        .expect("GPSLogger misses the connectivity check");
    let text = conn.render();

    // Section order as in Figure 7.
    let sections = [
        "NPD Information",
        "NPD impact",
        "Network request context",
        "Network request call stack",
        "Fix Suggestion",
    ];
    let mut last = 0;
    for s in sections {
        let pos = text
            .find(s)
            .unwrap_or_else(|| panic!("missing section {s}:\n{text}"));
        assert!(pos >= last, "section {s} out of order:\n{text}");
        last = pos;
    }

    // Figure 7's content, field by field.
    assert!(
        text.contains("Missing network connectivity check"),
        "{text}"
    );
    assert!(text.contains("Bad UX, battery life"), "{text}");
    assert!(text.contains("Request made by user"), "{text}");
    assert!(
        text.contains("Use getActiveNetworkInfo() to check connectivity"),
        "{text}"
    );
    assert!(
        text.contains("Show error message if no connection"),
        "{text}"
    );
    // The call stack starts at the entry point (the click listener) and
    // ends at the request.
    let stack_pos = text.find("call stack").unwrap();
    let tail = &text[stack_pos..];
    assert!(tail.contains("onClick"), "{text}");

    // And the timeout warning names the library-specific remedy.
    let timeout = report
        .defects
        .iter()
        .find(|d| d.kind == DefectKind::MissedTimeout)
        .expect("GPSLogger misses the timeout");
    assert!(
        timeout.fix.contains("Android Async HTTP"),
        "fix should name the library: {}",
        timeout.fix
    );
}

#[test]
fn json_and_text_reports_agree_on_counts() {
    let apk = nck_appgen::generate(&gpslogger());
    let report = NChecker::new().analyze_apk(&apk).unwrap();
    let json = nchecker::app_report_to_json(&report);
    assert_eq!(
        json["defects"].as_array().unwrap().len(),
        report.defects.len()
    );
    for (d, j) in report
        .defects
        .iter()
        .zip(json["defects"].as_array().unwrap())
    {
        assert_eq!(j["kind"], nchecker::kind_id(d.kind));
        assert_eq!(j["message"], d.message.as_str());
    }
}
