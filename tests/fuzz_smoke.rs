//! Seeded corruption smoke test: ≥1000 mutated bundles through the
//! whole pipeline, asserting zero panics and zero silent acceptance.
//!
//! This is the in-tree twin of the `fuzz_smoke` bench binary (which CI
//! runs with more seeds against the release build). Every mutation
//! carries ground truth: raw byte damage inside the ADX region must be
//! rejected at parse (the payload checksum guarantees it), structural
//! damage must be rejected or analyzed degraded with the damage
//! recorded. A violating seed reproduces the exact corruption.

use nck_appgen::mutate::{check, mutate, quiet_checker, Expectation, Outcome};
use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn base_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::new(
            "com.fuzz.one",
            vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
        ),
        AppSpec::new(
            "com.fuzz.two",
            vec![
                RequestSpec::new(Library::Volley, Origin::ActivityLifecycle),
                RequestSpec::new(Library::ApacheHttpClient, Origin::Service),
            ],
        ),
    ]
}

#[test]
fn a_thousand_mutations_never_panic_or_pass() {
    const SEEDS: u64 = 500; // x2 base apps = 1000 mutated bundles

    let checker = quiet_checker();
    let mut runs = 0u64;
    let mut rejected = 0u64;
    let mut degraded = 0u64;
    for spec in base_apps() {
        let apk = nck_appgen::generate(&spec);
        for seed in 0..SEEDS {
            let (bytes, m) = mutate(&apk, seed);
            match check(&checker, &bytes, &m) {
                Ok(Outcome::Rejected) => rejected += 1,
                Ok(Outcome::Degraded) => {
                    // check() enforces this, but state the invariant
                    // where it is load-bearing: only structural damage
                    // may be analyzed at all.
                    assert_eq!(m.expectation, Expectation::MustErrorOrDegrade);
                    degraded += 1;
                }
                Ok(other) => panic!("check passed a {other:?} outcome"),
                Err(violation) => panic!("{}: {violation}", spec.package),
            }
            runs += 1;
        }
    }
    assert_eq!(runs, 1000);
    // Both recovery paths must actually be exercised, or the corpus has
    // gone stale and the test proves less than it claims.
    assert!(rejected > 0, "no mutation was rejected");
    assert!(degraded > 0, "no mutation exercised degraded analysis");
}
