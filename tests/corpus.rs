//! Corpus-level integration tests: a sampled slice of the 285-app corpus
//! goes through the full binary pipeline, and per-app results must match
//! each spec's oracle.

use nchecker::{CorpusStats, NChecker};
use nck_appgen::profile::{corpus, CORPUS_SIZE};

fn sorted_kinds(kinds: Vec<nchecker::DefectKind>) -> Vec<String> {
    let mut v: Vec<String> = kinds.into_iter().map(|k| format!("{k:?}")).collect();
    v.sort();
    v
}

#[test]
fn sampled_corpus_apps_match_their_oracles() {
    let specs = corpus(2016);
    let checker = NChecker::new();
    // Every 12th app covers all the library/flag zones without the cost
    // of the full run (the bench harness covers all 285).
    for spec in specs.iter().step_by(12) {
        let apk = nck_appgen::generate(spec);
        let report = checker
            .analyze_bytes(&apk.to_bytes())
            .expect("corpus app analyzes");
        let got = sorted_kinds(report.defects.iter().map(|d| d.kind).collect());
        let want = sorted_kinds(spec.expected_tool_report());
        assert_eq!(got, want, "app {}", spec.package);
    }
}

#[test]
fn corpus_statistics_land_on_the_paper_rates() {
    // Aggregate a prefix slice large enough to cover the retry zone and
    // check the never-X invariants hold exactly within it.
    let specs = corpus(2016);
    assert_eq!(specs.len(), CORPUS_SIZE);
    let checker = NChecker::new();
    let mut stats = CorpusStats::new();
    for spec in specs.iter().take(95) {
        let report = checker
            .analyze_apk(&nck_appgen::generate(spec))
            .expect("analyzable");
        stats.add(report.stats);
    }
    // All 91 retry-zone apps are inside this prefix.
    let t8 = stats.table8();
    assert_eq!(t8[0].population, 91);
    // Table 8 absolute app counts are exact by construction.
    assert_eq!(t8[0].apps, 7, "no-retry-in-activity apps");
    assert_eq!(t8[1].apps, 29, "over-retry-service apps");
    assert_eq!(t8[2].apps, 23, "over-retry-post apps");
}

#[test]
fn corpus_analysis_is_deterministic() {
    let specs = corpus(2016);
    let checker = NChecker::new();
    let spec = &specs[40];
    let a = checker.analyze_apk(&nck_appgen::generate(spec)).unwrap();
    let b = checker.analyze_apk(&nck_appgen::generate(spec)).unwrap();
    assert_eq!(a.defects.len(), b.defects.len());
    for (x, y) in a.defects.iter().zip(&b.defects) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.location, y.location);
    }
}
