//! Pins the shift-width contract across every evaluator.
//!
//! ADX models Dalvik's single 64-bit integer lane (there is no separate
//! 32-bit `int` width), so `Shl`/`Shr` mask the shift amount with 63 —
//! Dalvik's *long* rule (`shl-long` uses the low six bits of the
//! distance). The interpreter, constant propagation, and the summary
//! engine all funnel through the one `BinOp::eval`, so these tests pin
//! the documented edge cases and prove the evaluators agree on them:
//! the mask can never drift in one layer only.

use nck_dataflow::constprop::{CVal, ConstProp};
use nck_dex::builder::AdxBuilder;
use nck_dex::{AccessFlags, BinOp};
use nck_interp::{Machine, NopEnv, Outcome, Value};
use nck_ir::cfg::Cfg;
use nck_ir::{LocalId, StmtId};

/// The documented edge cases: (value, amount, shifted-left, shifted-right).
/// Amounts at and past the width, and negative amounts, act as their low
/// six bits.
const CASES: &[(i64, i64, i64, i64)] = &[
    (1, 0, 1, 1),
    (5, 1, 10, 2),
    (1, 63, i64::MIN, 0),
    (1, 64, 1, 1),                  // 64 & 63 == 0
    (1, 65, 2, 0),                  // 65 & 63 == 1
    (1, -1, i64::MIN, 0),           // -1 & 63 == 63
    (-8, 1, -16, -4),               // Shr is arithmetic: sign-extends
    (i64::MIN, 1, 0, i64::MIN / 2), // overflow wraps, sign survives Shr
    (1, 31, 1 << 31, 0),            // no 32-bit lane: 31 is just 31
    (1, 32, 1 << 32, 0),            // ... and 32 does NOT wrap to 0
];

#[test]
fn eval_follows_the_long_width_rule() {
    for &(v, amt, left, right) in CASES {
        assert_eq!(BinOp::Shl.eval(v, amt), Some(left), "{v} << {amt}");
        assert_eq!(BinOp::Shr.eval(v, amt), Some(right), "{v} >> {amt}");
    }
}

/// Builds `return (v <op> amt)` and lifts it.
fn shift_program(op: BinOp, v: i64, amt: i64) -> nck_ir::Program {
    let mut b = AdxBuilder::new();
    b.class("Lgen/S;", |c| {
        c.method(
            "f",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            3,
            |m| {
                m.const_int(m.reg(0), v);
                m.const_int(m.reg(1), amt);
                m.binop(op, m.reg(2), m.reg(0), m.reg(1));
                m.ret(Some(m.reg(2)));
            },
        );
    });
    nck_ir::lift_file(&b.finish().unwrap()).unwrap()
}

/// Runs `f` through the interpreter and returns its value.
fn interpret(program: &nck_ir::Program) -> i64 {
    let f = program
        .iter_methods()
        .find(|(_, m)| program.symbols.resolve(m.key.name) == "f")
        .map(|(id, _)| id)
        .unwrap();
    let mut machine = Machine::new(program, NopEnv);
    match machine.call(f, vec![]) {
        Ok(Outcome::Returned(Some(Value::Int(got)))) => got,
        other => panic!("shift program did not return an int: {other:?}"),
    }
}

/// Extracts the constant the dataflow layer proves for the returned
/// local.
fn propagate(program: &nck_ir::Program) -> i64 {
    let body = program.methods[0].body.as_ref().unwrap();
    let cfg = Cfg::build(body);
    let cp = ConstProp::compute(body, &cfg);
    let ret_stmt = StmtId(body.stmts.len() as u32 - 1);
    match cp.value_before(ret_stmt, LocalId(2)) {
        CVal::Int(v) => v,
        other => panic!("constprop lost a straight-line shift: {other:?}"),
    }
}

#[test]
fn interpreter_and_constprop_agree_on_every_edge_case() {
    for &(v, amt, left, right) in CASES {
        for (op, want) in [(BinOp::Shl, left), (BinOp::Shr, right)] {
            let program = shift_program(op, v, amt);
            assert_eq!(interpret(&program), want, "interp: {v} {op:?} {amt}");
            assert_eq!(propagate(&program), want, "constprop: {v} {op:?} {amt}");
        }
    }
}
