//! Umbrella crate re-exporting the NChecker reproduction workspace.
//!
//! See the individual crates for the real functionality:
//! [`nchecker`] (the tool), [`nck_dex`] (binary format), [`nck_ir`]
//! (3-address IR), [`nck_dataflow`] (dataflow framework), [`nck_android`]
//! (Android model), [`nck_netlibs`] (library annotations), [`nck_appgen`]
//! (corpus generator), [`nck_netsim`] (network simulator), [`nck_study`]
//! (empirical study data), and [`nck_userstudy`] (user-study model).

pub use nchecker as checker;
pub use nck_android as android;
pub use nck_appgen as appgen;
pub use nck_dataflow as dataflow;
pub use nck_dex as dex;
pub use nck_dyntest as dyntest;
pub use nck_interp as interp;
pub use nck_ir as ir;
pub use nck_netlibs as netlibs;
pub use nck_netsim as netsim;
pub use nck_study as study;
pub use nck_userstudy as userstudy;
