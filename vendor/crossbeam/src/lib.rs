//! Offline stand-in for the `crossbeam` crate: just `crossbeam::scope`,
//! implemented on top of `std::thread::scope`.

use std::thread::ScopedJoinHandle;

/// A scope handle mirroring `crossbeam::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle,
    /// as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// this returns. The `Result` mirrors crossbeam's signature (a panic in
/// a child thread propagates out of `std::thread::scope`, so the error
/// arm is never produced here).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("workers");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
