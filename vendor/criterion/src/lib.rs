//! Offline stand-in for the `criterion` crate.
//!
//! Same surface as the benches in this workspace use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros), but the statistics are deliberately simple: each benchmark
//! runs `sample_size` timed iterations after a small warm-up and prints
//! mean / min wall-clock time per iteration.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks (recorded only
    /// for display parity; the stub does not normalize by it).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{param}", name.into()))
    }

    /// A parameter value alone.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Declared benchmark throughput.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    iters: usize,
}

impl Bencher {
    /// Times `iters` runs of `f` (plus warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<40} mean {:>12}   min {:>12}   ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        b.samples.len()
    );
}

/// Binds a set of benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(10));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2, |b, n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("solo", |b| b.iter(|| ()));
    }
}
