//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / regex-string
//! strategies, `any::<T>()`, `proptest::collection::vec`,
//! `prop::sample::Index`, and the `proptest!` / `prop_compose!` /
//! `prop_oneof!` / `prop_assert*!` macros. Generation is deterministic
//! (seeded per test name and case index); failing cases panic with the
//! assertion message but are not shrunk.

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one test case.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// String-literal strategies are interpreted as regexes (see
    /// [`crate::string`] for the supported subset).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    /// A strategy backed by a generation closure (used by
    /// `prop_compose!`).
    pub struct FnStrategy<F>(F);

    /// Wraps a closure as a strategy.
    pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A boxed generation closure, one `prop_oneof!` branch.
    pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Boxes a strategy into a [`BoxedGen`].
    pub fn boxed_gen<S: Strategy + 'static>(s: S) -> BoxedGen<S::Value> {
        Box::new(move |rng| s.generate(rng))
    }

    /// Uniform choice among branches (used by `prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<BoxedGen<T>>,
    }

    /// Builds a [`Union`] from boxed branches.
    pub fn union<T>(branches: Vec<BoxedGen<T>>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs branches");
        Union { branches }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.branches.len());
            (self.branches[k])(rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind `any::<T>()`.

    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64() as usize)
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> crate::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod sample {
    //! Index sampling.

    /// A raw index scaled into any collection length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw value.
        pub fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Projects into `[0, size)`; `size` must be non-zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy from an element strategy and a size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let n = self.size.lo + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Tiny regex-shaped string generator backing `&str` strategies.
    //!
    //! Supported syntax: literal characters, `\.`-style escapes, `\PC`
    //! (any printable ASCII), character classes `[a-z0-9_...]` with
    //! ranges and literals, non-capturing sequence groups `( ... )`, and
    //! `{m,n}` / `{n}` repetition. This covers every pattern used in the
    //! workspace's tests.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Printable,
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, usize, usize)>),
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((c, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((c, c));
                i += 1;
            }
        }
        (Atom::Class(ranges), i + 1)
    }

    fn parse_quant(chars: &[char], i: usize) -> (usize, usize, usize) {
        if chars.get(i) != Some(&'{') {
            return (1, 1, i);
        }
        let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
            None => {
                let n = body.parse().unwrap();
                (n, n)
            }
        };
        (lo, hi, close + 1)
    }

    fn parse_seq(
        chars: &[char],
        mut i: usize,
        stop: Option<char>,
    ) -> (Vec<(Atom, usize, usize)>, usize) {
        let mut seq = Vec::new();
        while i < chars.len() {
            if stop == Some(chars[i]) {
                i += 1;
                break;
            }
            let (atom, next) = match chars[i] {
                '\\' => {
                    let c = chars[i + 1];
                    if c == 'P' {
                        // \PC — treat as printable ASCII.
                        (Atom::Printable, i + 3)
                    } else {
                        (Atom::Literal(c), i + 2)
                    }
                }
                '[' => parse_class(chars, i + 1),
                '(' => {
                    let (inner, next) = parse_seq(chars, i + 1, Some(')'));
                    (Atom::Group(inner), next)
                }
                c => (Atom::Literal(c), i + 1),
            };
            let (lo, hi, next) = parse_quant(chars, next);
            seq.push((atom, lo, hi));
            i = next;
        }
        (seq, i)
    }

    fn emit(seq: &[(Atom, usize, usize)], rng: &mut TestRng, out: &mut String) {
        for (atom, lo, hi) in seq {
            let reps = lo + rng.below(hi - lo + 1);
            for _ in 0..reps {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Printable => out.push((0x20 + rng.below(0x5f)) as u8 as char),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.below(ranges.len())];
                        let span = b as u32 - a as u32 + 1;
                        out.push(
                            char::from_u32(a as u32 + rng.below(span as usize) as u32).unwrap(),
                        );
                    }
                    Atom::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (seq, _) = parse_seq(&chars, 0, None);
        let mut out = String::new();
        emit(&seq, rng, &mut out);
        out
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn` runs `config.cases` times with
/// fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($config:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for __pt_case in 0..config.cases {
                    let mut __pt_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __pt_case);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($args:tt)*)
        ( $($pat:pat in $strat:expr),+ $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |__pt_rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), __pt_rng);
                )+
                $body
            })
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( $crate::strategy::boxed_gen($strat) ),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// A short lowercase identifier paired with a parity flag.
        fn arb_tagged()(name in "[a-z]{1,4}", flag in any::<bool>()) -> (String, bool) {
            (name, flag)
        }
    }

    fn arb_small() -> impl Strategy<Value = i64> {
        prop_oneof![Just(0i64), (1i64..10).prop_map(|v| v * 2)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u16..9, b in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn composed_strategies_generate(t in arb_tagged(), v in arb_small()) {
            prop_assert!(!t.0.is_empty() && t.0.len() <= 4);
            prop_assert!(v == 0 || (v % 2 == 0 && (2..20).contains(&v)));
        }

        #[test]
        fn vec_and_index(items in prop::collection::vec(0i32..100, 1..8),
                         at in any::<prop::sample::Index>()) {
            let i = at.index(items.len());
            prop_assert!((0..100).contains(&items[i]));
        }

        #[test]
        fn regex_subset_shapes(s in "L[a-z][a-z0-9/$]{0,5};",
                               dotted in "[a-z]{1,3}(\\.[a-z]{1,3}){0,2}") {
            prop_assert!(s.starts_with('L') && s.ends_with(';'));
            prop_assert!(dotted.split('.').count() <= 3);
            for part in dotted.split('.') {
                prop_assert!(!part.is_empty());
            }
        }
    }
}
