//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`/`gen_range`, and [`seq::SliceRandom::shuffle`]. The
//! generator is SplitMix64 — statistically fine for simulation and
//! test-corpus sampling, not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly. The single blanket
/// [`SampleRange`] impl per range shape (mirroring the real crate's
/// structure) is what lets the literal in `gen_range(3..=9)` unify with
/// the result type during inference.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_excl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_incl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_excl<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_incl<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_incl(lo, hi, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng {
                state: state ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..100 {
            let n = a.gen_range(3..=9);
            assert!((3..=9).contains(&n));
            let f = a.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
