//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset this workspace uses: the [`Value`] tree, the
//! [`json!`] macro (object literals with string keys, nested objects and
//! arrays, and general expressions via [`ToJson`]), and the
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] entry points.
//! Objects are backed by a `BTreeMap`, so keys serialize sorted.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer when exactly representable, float otherwise.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object contents, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer value, if this is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the numeric value widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up an object key; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::Int(*other as i64))
            }
        }
    )*};
}
impl_value_eq_num!(i32, i64, u32, u64, usize);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

/// Conversion into a [`Value`], used by the [`json!`] macro for general
/// expressions (always invoked through a reference, so fields of
/// borrowed structs serialize without moving).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Subset: object literals with string-literal keys whose values are
/// nested objects, `[expr, ...]` arrays, `null`, or general expressions
/// (converted via [`ToJson`]); bare arrays; bare expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Object entry whose value is a nested object.
    (@object $map:ident $key:literal : { $($nested:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_owned(), $crate::json_internal!({ $($nested)* }));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : { $($nested:tt)* } $(,)?) => {
        $map.insert($key.to_owned(), $crate::json_internal!({ $($nested)* }));
    };
    // Object entry whose value is an array literal.
    (@object $map:ident $key:literal : [ $($arr:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_owned(), $crate::json_internal!([ $($arr)* ]));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : [ $($arr:tt)* ] $(,)?) => {
        $map.insert($key.to_owned(), $crate::json_internal!([ $($arr)* ]));
    };
    // Object entry whose value is the null literal.
    (@object $map:ident $key:literal : null , $($rest:tt)*) => {
        $map.insert($key.to_owned(), $crate::Value::Null);
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : null $(,)?) => {
        $map.insert($key.to_owned(), $crate::Value::Null);
    };
    // Object entry whose value is a general expression.
    (@object $map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_owned(), $crate::json_internal!($value));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : $value:expr) => {
        $map.insert($key.to_owned(), $crate::json_internal!($value));
    };
    (@object $map:ident) => {};
    // Values.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ({}) => {
        $crate::Value::Object(::std::collections::BTreeMap::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_internal!(@object map $($tt)+);
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json_internal!($elem)),* ])
    };
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, pretty: bool, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::Int(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::Float(n)) => {
            if n.fract() == 0.0 && n.is_finite() {
                out.push_str(&format!("{n:.1}"));
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(item, out, pretty, depth + 1);
            }
            if !items.is_empty() {
                pad(out, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, depth + 1);
            }
            if !map.is_empty() {
                pad(out, depth);
            }
            out.push('}');
        }
    }
}

/// Serializes a value compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(v, &mut out, false, 0);
    Ok(out)
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(v, &mut out, true, 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_word("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_word("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_word("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-consume the unescaped span: everything up to the
            // next quote, backslash, or control byte lands in `out` in
            // one push, UTF-8 validated once per span rather than once
            // per character (validating the whole remaining input per
            // character made parsing quadratic in document size).
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let span = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("bad utf-8".into()))?;
                out.push_str(span);
            }
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                // A raw control byte the span stopped at: tolerated as
                // a literal character (ASCII, so the cast is exact).
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::Float(v))),
            Err(_) => self.err("bad number"),
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_objects_arrays_and_exprs() {
        let name = String::from("volley");
        let v = json!({
            "name": name,
            "count": 3usize,
            "nested": { "ok": true, "missing": null },
            "items": vec!["a", "b"],
        });
        assert_eq!(v["name"], "volley");
        assert_eq!(v["count"], 3);
        assert_eq!(v["nested"]["ok"], true);
        assert_eq!(v["nested"]["missing"], Value::Null);
        assert_eq!(v["items"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "s": "a \"quoted\" line\n",
            "n": -42,
            "f": 1.5,
            "arr": vec![1, 2, 3],
            "none": Option::<bool>::None,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn string_spans_escapes_and_non_ascii() {
        let v = from_str(r#"{"k": "plain \"mid\" café ünïcode \\ tail"}"#).unwrap();
        assert_eq!(v["k"], "plain \"mid\" café ünïcode \\ tail");
        // A raw control byte inside a string is tolerated as a literal.
        let v = from_str("\"a\u{1}b\"").unwrap();
        assert_eq!(v, "a\u{1}b");
        // Parsing stays linear: a large flat document must be quick
        // even in debug builds (the quadratic parser took seconds).
        let big = to_string(&Value::Array(
            (0..2000)
                .map(|i| json!({ "name": format!("entry-{i}"), "idx": i }))
                .collect(),
        ))
        .unwrap();
        let t = std::time::Instant::now();
        let back = from_str(&big).unwrap();
        assert_eq!(back.as_array().unwrap().len(), 2000);
        assert!(t.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn index_misses_are_null() {
        let v = json!({ "a": 1 });
        assert_eq!(v["b"], Value::Null);
        assert_eq!(v["a"][0], Value::Null);
    }
}
