#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
