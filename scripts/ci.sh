#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> corruption fuzz smoke test"
# 2000 seeds x 3 base apps = 6000 mutated bundles through the whole
# pipeline; exits non-zero on any panic or silently accepted corruption.
./target/release/fuzz_smoke 2000

echo "==> hot-path throughput smoke test"
# One measuring pass over the 285-app corpus. Exits non-zero on any
# panic, or when throughput drops more than 30% below the recorded
# hotpath baseline in BENCH_pipeline.json (the tolerance is deliberately
# loose — CI machines are noisy, only a structural regression trips it).
# On a fresh checkout with no recorded baseline the comparison is
# skipped and the step only guards against crashes.
./target/release/hotpath_bench --smoke

echo "==> targeted-mode differential smoke test"
# The 16-app interprocedural accuracy suite through the CLI in both
# modes: the demand-driven (--targeted) pipeline must print the exact
# bytes the whole-app pipeline prints.
targeted_dir="$(mktemp -d)"
trap 'rm -rf "$targeted_dir"' EXIT
for i in $(seq 0 15); do
    ./target/release/genapp "suite:$i" "$targeted_dir/app$i.apk"
done
./target/release/nchecker --json --no-cache "$targeted_dir"/app*.apk \
    > "$targeted_dir/full.json"
./target/release/nchecker --json --no-cache --targeted "$targeted_dir"/app*.apk \
    > "$targeted_dir/targeted.json"
diff -u "$targeted_dir/full.json" "$targeted_dir/targeted.json" \
    || { echo "targeted smoke: reports diverge between modes"; exit 1; }
echo "targeted smoke ok: 16 apps byte-identical across modes"

echo "==> targeted throughput smoke test"
# Small clean-heavy corpus, both modes, in-bench byte-diff gate; exits
# non-zero when targeted throughput drops more than 30% below the
# recorded targeted baseline in BENCH_pipeline.json (skipped when no
# baseline is recorded).
./target/release/targeted_bench --smoke

echo "==> observability smoke test"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$targeted_dir"' EXIT
./target/release/genapp gpslogger "$smoke_dir/app.apk"
./target/release/nchecker --json --metrics "$smoke_dir/app.apk" > "$smoke_dir/report.json"
python3 - "$smoke_dir/report.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
metrics = doc["metrics"]
assert metrics["schema"] == 1, "metrics schema version changed"
assert "summary_cache" in metrics, "metrics lacks summary_cache"
assert metrics["counters"], "metrics lacks recorded counters"
assert doc["defects"], "smoke app produced no defects"
for defect in doc["defects"]:
    assert defect["provenance"], f"defect {defect['kind']} lacks provenance"
    assert defect["provenance"][0]["kind"] == "request"
print(f"smoke ok: {len(doc['defects'])} defects, "
      f"{len(metrics['counters'])} counters, provenance present")
EOF

echo "==> cache determinism tests"
# Cold/warm differential suite: whole-report hits, prefix replay after
# app updates, disk-tier restarts, no-cache mode, degraded bypass — all
# byte-identical to cold.
cargo test --package nck-svc --test determinism --quiet

echo "==> incremental re-analysis smoke test"
# Small corpus of updated bundles through the analysis service. The
# binary itself exits non-zero if any warm or hot report differs from
# cold; on top of that, require real cache traffic (hits and replay).
incr_out="$(./target/release/incremental_bench --apps 16 --bulk 8 --reps 1 --no-write)"
echo "$incr_out"
echo "$incr_out" | grep -q "byte-identical to cold" \
    || { echo "incremental smoke: missing report-identity line"; exit 1; }
echo "$incr_out" | grep -q "100% whole-report hits" \
    || { echo "incremental smoke: hot pass was not all cache hits"; exit 1; }
echo "$incr_out" | grep -Eq "warm:.* [1-9][0-9]*% classes replayed" \
    || { echo "incremental smoke: warm pass reported no class reuse"; exit 1; }

echo "CI green."
