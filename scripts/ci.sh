#!/usr/bin/env bash
# Repository CI gate: build, test, lint, format. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> corruption fuzz smoke test"
# 2000 seeds x 3 base apps = 6000 mutated bundles through the whole
# pipeline; exits non-zero on any panic or silently accepted corruption.
./target/release/fuzz_smoke 2000

echo "==> hot-path throughput smoke test"
# One measuring pass over the 285-app corpus; exits non-zero on any
# panic. Regression verdicts live in the bench_gate step below.
./target/release/hotpath_bench --smoke

echo "==> targeted-mode differential smoke test"
# The 16-app interprocedural accuracy suite through the CLI in both
# modes: the demand-driven (--targeted) pipeline must print the exact
# bytes the whole-app pipeline prints.
targeted_dir="$(mktemp -d)"
trap 'rm -rf "$targeted_dir"' EXIT
for i in $(seq 0 15); do
    ./target/release/genapp "suite:$i" "$targeted_dir/app$i.apk"
done
./target/release/nchecker --json --no-cache "$targeted_dir"/app*.apk \
    > "$targeted_dir/full.json"
./target/release/nchecker --json --no-cache --targeted "$targeted_dir"/app*.apk \
    > "$targeted_dir/targeted.json"
diff -u "$targeted_dir/full.json" "$targeted_dir/targeted.json" \
    || { echo "targeted smoke: reports diverge between modes"; exit 1; }
echo "targeted smoke ok: 16 apps byte-identical across modes"

echo "==> targeted throughput smoke test"
# Small clean-heavy corpus, both modes, in-bench byte-diff gate; exits
# non-zero when the modes disagree. Throughput verdicts come from
# bench_gate below.
./target/release/targeted_bench --smoke

echo "==> bench regression gate"
# One declarative check of the recorded BENCH_pipeline.json against the
# committed BENCH_baseline.json tolerances (replaces the old per-bench
# --smoke floors). --smoke tolerates sections a partial bench run did
# not regenerate; out-of-tolerance values still fail.
./target/release/bench_gate --smoke

echo "==> observability smoke test"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$targeted_dir"' EXIT
./target/release/genapp gpslogger "$smoke_dir/app.apk"
./target/release/nchecker --json --metrics "$smoke_dir/app.apk" > "$smoke_dir/report.json"
python3 - "$smoke_dir/report.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
metrics = doc["metrics"]
assert metrics["schema"] == 1, "metrics schema version changed"
assert "summary_cache" in metrics, "metrics lacks summary_cache"
assert metrics["counters"], "metrics lacks recorded counters"
assert doc["defects"], "smoke app produced no defects"
for defect in doc["defects"]:
    assert defect["provenance"], f"defect {defect['kind']} lacks provenance"
    assert defect["provenance"][0]["kind"] == "request"
print(f"smoke ok: {len(doc['defects'])} defects, "
      f"{len(metrics['counters'])} counters, provenance present")
EOF

echo "==> telemetry export smoke test"
# Chrome trace + JSONL sinks and the --doctor snapshot, validated for
# shape and the properties the exporters promise: per-lane monotonic
# trace timestamps, typed JSONL records, and byte-identical doctor
# output across --jobs on an unchanged cache directory.
tele_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$targeted_dir" "$tele_dir"' EXIT
for i in $(seq 0 3); do
    ./target/release/genapp "suite:$i" "$tele_dir/app$i.apk"
done
./target/release/nchecker --quiet --summary --cache-dir "$tele_dir/cache" \
    --trace-out "$tele_dir/trace.json" --log-json "$tele_dir/log.jsonl" \
    "$tele_dir"/app*.apk > /dev/null
python3 - "$tele_dir/trace.json" "$tele_dir/log.jsonl" <<'EOF'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
meta = [e for e in events if e["ph"] == "M"]
assert spans, "trace has no duration events"
assert any(m["name"] == "process_name" for m in meta), "missing process_name"
assert any(m["name"] == "thread_name" for m in meta), "missing worker lanes"
for e in spans:
    assert e["dur"] >= 0 and e["ts"] >= 0, f"negative time in {e}"
lanes = defaultdict(list)
for e in spans:
    lanes[e["tid"]].append(e["ts"])
for tid, ts in lanes.items():
    assert ts == sorted(ts), f"lane {tid} timestamps not monotonic"

types = set()
with open(sys.argv[2]) as f:
    for line in f:
        rec = json.loads(line)
        types.add(rec["t"])
assert {"app", "cache", "funnel", "run"} <= types, f"missing record types: {types}"
print(f"telemetry ok: {len(spans)} spans over {len(lanes)} lanes, "
      f"record types {sorted(types)}")
EOF
# Doctor determinism: same snapshot bytes regardless of parallelism,
# run twice against the cache directory the run above warmed.
./target/release/nchecker --quiet --doctor --jobs 1 --cache-dir "$tele_dir/cache" \
    "$tele_dir"/app*.apk > "$tele_dir/doctor1.json"
./target/release/nchecker --quiet --doctor --jobs 8 --cache-dir "$tele_dir/cache" \
    "$tele_dir"/app*.apk > "$tele_dir/doctor8.json"
cmp "$tele_dir/doctor1.json" "$tele_dir/doctor8.json" \
    || { echo "doctor snapshot differs across --jobs"; exit 1; }
python3 - "$tele_dir/doctor1.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("schema", "build", "config", "cache", "funnel", "last_run"):
    assert key in doc, f"doctor snapshot missing {key}"
assert doc["schema"] == 1
assert doc["cache"]["disk"]["configured"] is True
assert doc["cache"]["hit"] + doc["cache"]["miss"] >= 4, "no cache traffic recorded"
print(f"doctor ok: {doc['cache']['disk']['entries']} cache entries, "
      f"{doc['last_run']['apps']} apps, byte-identical across --jobs")
EOF

echo "==> daemon smoke test"
# The persistent daemon (`nchecker serve`) over --stdio: submit a suite
# app, poll status, fetch the report and require it byte-identical to
# the one-shot --json output, fetch the doctor snapshot (canonical
# document + queue section), exercise a typed protocol error, and shut
# down cleanly with exit 0.
daemon_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$targeted_dir" "$tele_dir" "$daemon_dir"' EXIT
./target/release/genapp "suite:0" "$daemon_dir/app.apk"
./target/release/nchecker --json --no-cache "$daemon_dir/app.apk" \
    > "$daemon_dir/oneshot.json"
python3 - "$daemon_dir" <<'EOF'
import json, os, subprocess, sys, time

d = sys.argv[1]
proc = subprocess.Popen(
    ["./target/release/nchecker", "serve", "--stdio", "--quiet"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

def rpc(req):
    proc.stdin.write(json.dumps(req) + "\n")
    proc.stdin.flush()
    return json.loads(proc.stdout.readline())

r = rpc({"verb": "submit", "path": os.path.join(d, "app.apk")})
assert r["ok"], r
job = r["id"]
state = None
for _ in range(500):
    s = rpc({"verb": "status", "id": job})
    state = s["state"]
    if state in ("done", "failed"):
        break
    time.sleep(0.01)
assert state == "done", f"job never finished: {state}"
rep = rpc({"verb": "report", "id": job})
with open(os.path.join(d, "oneshot.json")) as f:
    oneshot = f.read()
assert rep["report"] == oneshot, "daemon report differs from one-shot --json"
doc = rpc({"verb": "doctor"})
snap = json.loads(doc["doctor"])
for key in ("schema", "build", "config", "cache", "funnel", "queue"):
    assert key in snap, f"daemon doctor missing {key}"
assert snap["queue"]["completed"] == 1, snap["queue"]
bad = rpc({"verb": "frobnicate"})
assert not bad["ok"] and bad["error"]["code"] == "unknown-verb", bad
sd = rpc({"verb": "shutdown"})
assert sd["ok"], sd
proc.stdin.close()
assert proc.wait(timeout=120) == 0, "daemon must exit 0 after clean shutdown"
print("daemon ok: report byte-identical over the wire, "
      "doctor + queue served, typed errors, clean shutdown")
EOF

echo "==> cache determinism tests"
# Cold/warm differential suite: whole-report hits, prefix replay after
# app updates, disk-tier restarts, no-cache mode, degraded bypass — all
# byte-identical to cold.
cargo test --package nck-svc --test determinism --quiet

echo "==> incremental re-analysis smoke test"
# Small corpus of updated bundles through the analysis service. The
# binary itself exits non-zero if any warm or hot report differs from
# cold; on top of that, require real cache traffic (hits and replay).
incr_out="$(./target/release/incremental_bench --apps 16 --bulk 8 --reps 1 --no-write)"
echo "$incr_out"
echo "$incr_out" | grep -q "byte-identical to cold" \
    || { echo "incremental smoke: missing report-identity line"; exit 1; }
echo "$incr_out" | grep -q "100% whole-report hits" \
    || { echo "incremental smoke: hot pass was not all cache hits"; exit 1; }
echo "$incr_out" | grep -Eq "warm:.* [1-9][0-9]*% classes replayed" \
    || { echo "incremental smoke: warm pass reported no class reuse"; exit 1; }

echo "==> store-scale vetting smoke test"
# A small sharded corpus through the multi-process orchestrator: vet
# output must be byte-identical to the single-process --json run; a
# version-churn rerun over the same cache must emit well-formed report
# deltas; and an explicit GC pass must respect a tight byte budget.
vet_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$targeted_dir" "$tele_dir" "$daemon_dir" "$vet_dir"' EXIT
./target/release/genapp corpus --seed 7 --count 40 --shards 8 "$vet_dir/corpus"
./target/release/nchecker --json --no-cache \
    $(find "$vet_dir/corpus" -name '*.apk' | sort) > "$vet_dir/oneshot.json"
./target/release/nchecker vet --workers 2 --corpus-dir "$vet_dir/corpus" \
    --cache-dir "$vet_dir/cache" --quiet > "$vet_dir/vet.json"
cmp "$vet_dir/oneshot.json" "$vet_dir/vet.json" \
    || { echo "vet smoke: multi-process output differs from one-shot"; exit 1; }
echo "vet smoke ok: 40 apps byte-identical across 2 worker processes"
./target/release/genapp corpus --seed 7 --count 40 --shards 8 --version 1 \
    "$vet_dir/corpus"
# Keep the summary on stderr this time: the clean path must spawn the
# worker fleet exactly once (one process per shard, zero respawns).
./target/release/nchecker vet --workers 2 --corpus-dir "$vet_dir/corpus" \
    --cache-dir "$vet_dir/cache" --delta-out "$vet_dir/deltas.jsonl" \
    --summary 2> "$vet_dir/vet-churn.log"
grep -q "0 restart(s), 2 spawned, 0 reused" "$vet_dir/vet-churn.log" \
    || { echo "vet smoke: worker fleet was not spawned exactly once"; \
         cat "$vet_dir/vet-churn.log"; exit 1; }
echo "vet fleet ok: 2 workers spawned once, 0 respawns on the clean path"
python3 - "$vet_dir/deltas.jsonl" <<'EOF'
import json, sys

deltas = [json.loads(line) for line in open(sys.argv[1])]
assert deltas, "version churn produced no deltas"
for d in deltas:
    assert d["t"] == "delta", d
    for key in ("key", "prev_fp", "new_fp", "added", "fixed", "unchanged"):
        assert key in d, f"delta missing {key}: {d}"
    assert len(d["prev_fp"]) == 16 and len(d["new_fp"]) == 16, d
    assert isinstance(d["added"], list) and isinstance(d["fixed"], list), d
changed = sum(1 for d in deltas if d["added"] or d["fixed"])
print(f"delta smoke ok: {len(deltas)} deltas, {changed} with defect churn")
EOF
./target/release/nchecker cache-gc --cache-dir "$vet_dir/cache" --cache-budget 64K \
    | grep -q "evicted" || { echo "cache-gc smoke: no stats line"; exit 1; }
./target/release/store_scale_bench --smoke --apps 1000 --waves 2

echo "CI green."
